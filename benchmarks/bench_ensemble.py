"""Batch-of-runs ensemble engine vs per-run kernel execution.

One measurement, one ``BENCH_runtime.json`` section (``ensemble``): an
8-seed failure-dense ``booster`` ensemble on the 64-macro reference geometry
(the ``stress@64`` synthetic fill), resolved two ways from a *cold* start —
per-run kernel execution (one :class:`~repro.sim.runtime.PIMRuntime` per
seed) and the batched :func:`~repro.sim.ensemble.run_ensemble` pass.  Cold
means both the level cache and the flip-matrix memo are cleared before every
timed iteration: this is the first-sight sweep regime the ensemble engine
targets, where AR(1) activity generation and per-level physics dominate and
batching amortizes them across the seed ensemble.

The bar: ensemble ≥ 1.5x over per-run kernel execution
(``REPRO_BENCH_ENSEMBLE_BAR_MIN`` overrides), with bit-for-bit record
equivalence between the two paths asserted in the same run.
"""

import gc
import os
import time

import pytest

from repro.analysis import format_ratio, format_table
from repro.core.ir_booster import BoosterMode
from repro.sim import RuntimeConfig, clear_level_cache, run_ensemble
from repro.sim.runtime import PIMRuntime
from repro.sweep import build_compiled_workload, run_seed
from repro.workloads.generator import clear_flip_cache

from common import SMOKE, stress_workload_spec, update_bench_runtime

pytestmark = pytest.mark.perf

#: The failure-dense ensemble operating point (matches the ``kernels``
#: section's stress regime so the two ledgers describe one scenario family).
ENSEMBLE_SEEDS = 2 if SMOKE else 8
ENSEMBLE_CYCLES = 800 if SMOKE else 8000
ENSEMBLE_FLIP_MEAN = 0.9
ENSEMBLE_MONITOR_NOISE = 0.035
#: Frontier jump per selected failure.  32 keeps every member deep in the
#: failure-dense regime (>7000 failures per member at the reference chip)
#: while leaving the boost ladder's level dwells sparse enough that the
#: ensemble's windowed streams — not the inherently sequential span walk —
#: decide the matchup.
ENSEMBLE_RECOMPUTE = 32

#: Ensemble-speedup bar over per-run kernel execution; overridable from the
#: environment so the hosted-runner configuration can be tuned without a
#: code change.
ENSEMBLE_BAR_MIN = float(os.environ.get("REPRO_BENCH_ENSEMBLE_BAR_MIN", "1.5"))


def _configs():
    """The seed ensemble: identical physics knobs, per-seed RNG streams."""
    return [RuntimeConfig(cycles=ENSEMBLE_CYCLES, controller="booster",
                          mode=BoosterMode.LOW_POWER, beta=5,
                          recompute_cycles=ENSEMBLE_RECOMPUTE,
                          flip_mean=ENSEMBLE_FLIP_MEAN,
                          monitor_noise=ENSEMBLE_MONITOR_NOISE,
                          seed=run_seed(0, 0, index), traces="none")
            for index in range(ENSEMBLE_SEEDS)]


def _cold():
    """First-sight state: no memoized physics, no memoized flip matrices."""
    clear_level_cache()
    clear_flip_cache()


def _per_run(compiled):
    return [PIMRuntime(compiled, config).run() for config in _configs()]


def _batched(compiled):
    return run_ensemble(compiled, _configs())


def _interleaved_best_of_cold(fns, repeats: int = 5):
    """Per-function best cold wall time over ``repeats`` rounds, GC parked.

    The functions are timed back to back *within* each round, and the order
    alternates between rounds: on a shared machine the throughput drifts on
    a seconds timescale, and sequential per-function phases let that drift
    land entirely on one side of the ratio, while a fixed within-round
    order still biases whichever slot catches the fast moments.
    Alternation over enough rounds gives every function its share of the
    same machine moments before the bests are compared.  The caches are
    cleared *outside* the clock: the measurement is the simulation work
    from a cold start, not the cost of forgetting."""
    bests = [float("inf")] * len(fns)
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for r in range(repeats):
            order = range(len(fns)) if r % 2 == 0 \
                else range(len(fns) - 1, -1, -1)
            for i in order:
                _cold()
                start = time.perf_counter()
                fns[i]()
                bests[i] = min(bests[i], time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return bests


def _assert_bit_identical(per_run, batched) -> None:
    """The ensemble equivalence contract on scalar records: every field of
    every member, bit for bit (the two paths execute identical float
    arithmetic in identical order, so even the reductions match exactly)."""
    assert len(per_run) == len(batched)
    for ref, ens in zip(per_run, batched):
        assert ref.total_failures == ens.total_failures
        assert ref.total_stall_cycles == ens.total_stall_cycles
        for a, b in zip(ref.macro_results, ens.macro_results):
            assert (a.macro_index, a.failures, a.stall_cycles) == \
                (b.macro_index, b.failures, b.stall_cycles)
            assert a.worst_drop == b.worst_drop
            assert a.peak_rtog == b.peak_rtog
            assert a.mean_rtog == b.mean_rtog
            assert a.mean_drop == b.mean_drop
            assert a.energy.dynamic_energy == b.energy.dynamic_energy
            assert a.energy.static_energy == b.energy.static_energy
            assert a.energy.elapsed_time == b.energy.elapsed_time
            assert a.energy.completed_macs == b.energy.completed_macs
        for a, b in zip(ref.group_results, ens.group_results):
            assert (a.group_id, a.safe_level, a.final_level, a.failures) == \
                (b.group_id, b.safe_level, b.final_level, b.failures)
            assert a.mean_level == b.mean_level


def test_ensemble_engine_speedup(benchmark):
    compiled = build_compiled_workload(stress_workload_spec())

    def run():
        # Equivalence first, outside the timed region, in the same run.
        _cold()
        reference = _per_run(compiled)
        _cold()
        batched = _batched(compiled)
        _assert_bit_identical(reference, batched)

        per_run_seconds, ensemble_seconds = _interleaved_best_of_cold(
            [lambda: _per_run(compiled), lambda: _batched(compiled)])
        return {
            "scenario": {
                "workload": "stress@64 (synthetic, 2-macro sets, sequential)",
                "controller": "booster",
                "n_seeds": ENSEMBLE_SEEDS,
                "cycles": ENSEMBLE_CYCLES,
                "flip_mean": ENSEMBLE_FLIP_MEAN,
                "monitor_noise": ENSEMBLE_MONITOR_NOISE,
                "recompute_cycles": ENSEMBLE_RECOMPUTE,
                "traces": "none",
            },
            "failures_per_member": [r.total_failures for r in batched],
            "per_run_cold_seconds": per_run_seconds,
            "ensemble_cold_seconds": ensemble_seconds,
            "speedup_ensemble_vs_per_run": per_run_seconds / ensemble_seconds,
            "equivalence_asserted": True,
        }

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    update_bench_runtime({"ensemble": report})

    print()
    print(format_table(
        ["seeds", "cycles", "per-run s", "ensemble s", "speedup",
         "identical"],
        [[str(ENSEMBLE_SEEDS), str(ENSEMBLE_CYCLES),
          f"{report['per_run_cold_seconds']:.3f}",
          f"{report['ensemble_cold_seconds']:.3f}",
          format_ratio(report["speedup_ensemble_vs_per_run"]),
          str(report["equivalence_asserted"])]],
        title="Batch-of-runs ensemble engine, cold start "
              "(BENCH_runtime.json: ensemble)"))

    assert report["equivalence_asserted"]
    assert min(report["failures_per_member"]) > (100 if SMOKE else 1000)
    if not SMOKE:
        assert report["speedup_ensemble_vs_per_run"] >= ENSEMBLE_BAR_MIN, \
            report
