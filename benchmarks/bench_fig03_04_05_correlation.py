"""Figures 3, 4 and 5: workload IR-drop vs. signoff, Rtog/IR-drop correlation,
and the Rtog distribution with and without HR optimization.

Expected shapes (paper):
* Fig. 3 — each workload's worst IR-drop sits well below the signoff worst case
  (50–65 % of it), and fluctuates during processing;
* Fig. 4 — per-macro IR-drop correlates linearly with per-macro Rtog (r ~ 0.98);
* Fig. 5 — observed peak Rtog never exceeds HR, and HR optimization shifts the
  whole Rtog distribution (and its peak) down.
"""

import numpy as np

from repro.analysis import format_series, pearson_correlation
from repro.core.ir_booster import BoosterMode
from repro.sim.trace import profile_task_rtog
from common import BENCH_CHIP, HW_WORKLOADS, baseline_simulation, compiled_workload


def test_fig03_workload_irdrop_vs_signoff(benchmark):
    def run():
        results = {}
        for model in HW_WORKLOADS:
            sim = baseline_simulation(model)
            results[model] = sim.worst_ir_drop / BENCH_CHIP.signoff_ir_drop
        return results

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_series("Fig 3: workload worst IR-drop / signoff worst-case", ratios))
    for model, ratio in ratios.items():
        assert 0.2 < ratio < 1.0, f"{model} worst drop should be below signoff"


def test_fig04_rtog_irdrop_correlation(benchmark):
    def run():
        sim = baseline_simulation("resnet18")
        peak_rtog = [m.peak_rtog for m in sim.macro_results]
        peak_drop = [m.worst_drop for m in sim.macro_results]
        mean_rtog = [m.mean_rtog for m in sim.macro_results]
        mean_drop = [m.mean_drop for m in sim.macro_results]
        return (pearson_correlation(peak_rtog, peak_drop),
                pearson_correlation(mean_rtog, mean_drop))

    peak_corr, mean_corr = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"Fig 4: per-macro Rtog vs IR-drop correlation: peak={peak_corr:.3f} "
          f"mean={mean_corr:.3f} (paper: 0.977 DPIM)")
    assert peak_corr > 0.9
    assert mean_corr > 0.9


def test_fig05_rtog_distribution_bounded_by_hr(benchmark):
    def run():
        results = {}
        for lhr in (False, True):
            compiled = compiled_workload("resnet18", lhr=lhr, wds_delta=None,
                                         mapping="sequential")
            task = compiled.tasks[min(2, len(compiled.tasks) - 1)]
            profile = profile_task_rtog(task, BENCH_CHIP.macro, waves=48, seed=5)
            results["hr_opt" if lhr else "baseline"] = (
                profile.hamming_rate, profile.peak_rtog, profile.mean_rtog)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for label, (hr, peak, mean) in results.items():
        print(f"Fig 5 [{label}]: HR={hr:.3f} peak Rtog={peak:.3f} mean Rtog={mean:.3f}")
    for hr, peak, _ in results.values():
        assert peak <= hr + 1e-9            # Eq. 4: peak never exceeds HR
    assert results["hr_opt"][0] < results["baseline"][0]      # HR-opt lowers HR
