"""Figures 7, 12 and 13: weight distribution under LHR, per-layer HR, HR vs accuracy.

Expected shapes (paper):
* Fig. 7  — with LHR the quantized weights pile up on low-HR codes (0, +-8, ...),
  so the average HR of the distribution drops;
* Fig. 12 — per-layer HR of ResNet18 falls for every layer with +LHR and falls
  further with +WDS(16); HR is fairly uniform across layers;
* Fig. 13 — across all six workloads the HR drops (a)->(d) while the task metric
  stays close to the baseline.
"""

import numpy as np

from repro.analysis import format_series, format_table
from repro.core.lhr import integer_hamming_table
from repro.core.wds import plan_wds
from repro.models import get_model_spec
from common import SW_WORKLOADS, qat_result


def test_fig07_weight_distribution_aligns_with_low_hr_codes(benchmark):
    def run():
        table = integer_hamming_table(8)
        stats = {}
        for lhr in (False, True):
            result = qat_result("resnet18", lhr=lhr)
            codes = np.concatenate([c.reshape(-1) for c in result.weight_codes().values()])
            mean_code_hr = float(table[codes - (-128)].mean())
            at_minima = float(np.isin(codes, [0, 8, -8, 16, -16]).mean())
            stats["lhr" if lhr else "baseline"] = (mean_code_hr, at_minima)
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for label, (hr, frac) in stats.items():
        print(f"Fig 7 [{label}]: mean per-code HR={hr:.3f}, "
              f"fraction at local HR minima={frac:.3f}")
    assert stats["lhr"][0] < stats["baseline"][0]
    assert stats["lhr"][1] > stats["baseline"][1]


def test_fig12_layerwise_hr(benchmark):
    def run():
        baseline = qat_result("resnet18", lhr=False)
        lhr = qat_result("resnet18", lhr=True)
        wds = plan_wds(lhr.weight_codes(), bits=8, delta=16)
        return baseline.layer_hr, lhr.layer_hr, wds.hr_after

    base_hr, lhr_hr, wds_hr = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_series("Fig 12 baseline HR (mean/max)",
                        {"mean": np.mean(list(base_hr.values())),
                         "max": np.max(list(base_hr.values()))}))
    print(format_series("Fig 12 +LHR HR (mean/max)",
                        {"mean": np.mean(list(lhr_hr.values())),
                         "max": np.max(list(lhr_hr.values()))}))
    print(format_series("Fig 12 +LHR+WDS(16) HR (mean/max)",
                        {"mean": np.mean(list(wds_hr.values())),
                         "max": np.max(list(wds_hr.values()))}))
    reduced = sum(lhr_hr[layer] < base_hr[layer] for layer in base_hr)
    assert reduced >= 0.8 * len(base_hr)                 # nearly every layer improves
    assert np.mean(list(wds_hr.values())) < np.mean(list(lhr_hr.values()))


def test_fig13_hr_vs_accuracy(benchmark):
    def run():
        rows = {}
        for model in SW_WORKLOADS:
            base = qat_result(model, lhr=False)
            lhr = qat_result(model, lhr=True)
            wds16 = plan_wds(lhr.weight_codes(), bits=8, delta=16)
            rows[model] = {
                "baseline_hr": base.hr_average, "baseline_metric": base.metric,
                "lhr_hr": lhr.hr_average, "lhr_metric": lhr.metric,
                "wds16_hr": wds16.mean_hr_after,
                "metric_name": base.metric_name,
                "higher_better": get_model_spec(model).higher_is_better,
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table_rows = []
    for model, r in rows.items():
        table_rows.append([model, f"{r['baseline_hr']:.3f}", f"{r['lhr_hr']:.3f}",
                           f"{r['wds16_hr']:.3f}", f"{r['baseline_metric']:.2f}",
                           f"{r['lhr_metric']:.2f}", r["metric_name"]])
    print()
    print(format_table(["model", "HR base", "HR +LHR", "HR +WDS16", "metric base",
                        "metric +LHR", "metric"], table_rows,
                       title="Fig 13: HR decrease vs task metric"))
    for model, r in rows.items():
        assert r["lhr_hr"] < r["baseline_hr"], model
        assert r["wds16_hr"] < r["lhr_hr"] + 1e-9, model
