"""Figures 16 and 17: chip IR-drop heat map and current/voltage traces before vs after AIM.

Expected shapes (paper):
* Fig. 16 — IR-drop hotspots concentrate on the active PIM macros; after AIM the
  hotspot magnitudes shrink while the spatial pattern stays similar;
* Fig. 17 — demanded drive current and bump current fall after AIM, and the bump
  voltage sits closer to the ideal supply (less droop).
"""

import numpy as np

from repro.analysis import format_series
from repro.power import IRDropModel, PowerDeliveryNetwork, chip_ir_drop_map
from repro.pim.chip import PIMChip
from common import BENCH_CHIP, BENCH_TABLE, aim_simulation, baseline_simulation


def _macro_positions():
    chip = PIMChip(BENCH_CHIP)
    return [chip.macro_position(i) for i in range(BENCH_CHIP.total_macros)], chip.grid_shape


def _solve_map(simulation, pair_voltage, pair_frequency):
    positions, (rows, cols) = _macro_positions()
    model = IRDropModel(supply_voltage=BENCH_CHIP.nominal_voltage,
                        signoff_drop=BENCH_CHIP.signoff_ir_drop,
                        nominal_frequency=BENCH_CHIP.nominal_frequency)
    pdn = PowerDeliveryNetwork(rows, cols, supply_voltage=BENCH_CHIP.nominal_voltage)
    rtog = np.zeros(BENCH_CHIP.total_macros)
    for macro in simulation.macro_results:
        rtog[macro.macro_index] = macro.mean_rtog
    used_positions = [positions[i] for i in range(BENCH_CHIP.total_macros)]
    return chip_ir_drop_map(model, pdn, rtog, used_positions,
                            voltages=[pair_voltage] * len(rtog),
                            frequencies=[pair_frequency] * len(rtog))


def test_fig16_layout_heatmap(benchmark):
    def run():
        baseline = baseline_simulation("resnet18")
        aim = aim_simulation("resnet18")
        nominal = BENCH_TABLE.nominal_dvfs_pair()
        improved = BENCH_TABLE.select_pair(35, "low_power")
        before = _solve_map(baseline, nominal.voltage, nominal.frequency)
        after = _solve_map(aim, improved.voltage, improved.frequency)
        return before, after

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_series("Fig 16 before AIM", {"worst_drop_mV": before.worst_drop * 1e3,
                                              "mean_drop_mV": before.mean_drop * 1e3}))
    print(format_series("Fig 16 after AIM", {"worst_drop_mV": after.worst_drop * 1e3,
                                             "mean_drop_mV": after.mean_drop * 1e3}))
    assert after.worst_drop < before.worst_drop
    assert after.mean_drop < before.mean_drop


def test_fig17_current_and_bump_traces(benchmark):
    def run():
        baseline = baseline_simulation("resnet18")
        aim = aim_simulation("resnet18")
        model = IRDropModel(supply_voltage=BENCH_CHIP.nominal_voltage,
                            signoff_drop=BENCH_CHIP.signoff_ir_drop,
                            nominal_frequency=BENCH_CHIP.nominal_frequency)
        nominal = BENCH_TABLE.nominal_dvfs_pair()
        improved = BENCH_TABLE.select_pair(35, "low_power")

        def demand(sim, pair):
            return np.array([
                model.macro_current(m.mean_rtog, pair.voltage, pair.frequency)
                for m in sim.macro_results
            ])

        before = demand(baseline, nominal)
        after = demand(aim, improved)
        positions, (rows, cols) = _macro_positions()
        pdn = PowerDeliveryNetwork(rows, cols, supply_voltage=BENCH_CHIP.nominal_voltage)
        used = [positions[m.macro_index] for m in baseline.macro_results]
        bump_before = pdn.solve_for_macros(before, used)
        used_after = [positions[m.macro_index] for m in aim.macro_results]
        bump_after = pdn.solve_for_macros(after, used_after)
        return before, after, bump_before, bump_after

    before, after, bump_before, bump_after = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_series("Fig 17 demanded drive current (A)",
                        {"before": before.sum(), "after": after.sum()}))
    print(format_series("Fig 17 peak bump current (A)",
                        {"before": bump_before.bump_current.max(),
                         "after": bump_after.bump_current.max()}))
    print(format_series("Fig 17 worst bump-side droop (mV)",
                        {"before": bump_before.worst_drop * 1e3,
                         "after": bump_after.worst_drop * 1e3}))
    assert after.sum() < before.sum()
    assert bump_after.bump_current.max() < bump_before.bump_current.max()
    assert bump_after.worst_drop < bump_before.worst_drop
