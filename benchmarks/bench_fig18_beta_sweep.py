"""Figure 18: the beta trade-off — IR-drop mitigation ability vs. delay cycles.

Expected shape (paper): a smaller beta (tighter Algorithm-2 windows) yields more
aggressive operation and therefore more IR-drop mitigation, but also more
IRFailures and hence more recompute/delay cycles; a larger beta is the opposite.
Results are normalized against IR-Booster running at the safe level only.

Rebased onto the :mod:`repro.sweep` runner: the beta grid and the safe-only
reference run as one declarative sweep over the paper-scale 64-macro reference
chip, with an ``N_SEEDS`` ensemble per point (mean +- bootstrap CI) instead of
a single seed.

Seeds are *shared* across grid points (``seed_mode="shared"``, common random
numbers): every beta — and the safe-only reference — sees the same activity
and monitor-noise realizations, so cross-point comparisons cancel the seed
variance and the engine's level cache reuses one set of physics across the
whole grid.  This is a deliberate re-baseline over the PR-2/PR-3
``per_point`` records (noted in CHANGES.md); the paper-shape assertions are
unchanged.
"""

import pytest

from repro.analysis import format_series
from repro.core.ir_booster import BoosterMode
from repro.sweep import SweepSpec, run_sweeps

from common import (
    N_SEEDS,
    SIM_CYCLES,
    SWEEP_MASTER_SEED,
    assert_traces_equivalent,
    reference_workload_spec,
    smoke_grid,
    sweep_executor,
)

pytestmark = pytest.mark.sweep

BETAS = smoke_grid((10, 30, 50, 70, 90))


def test_fig18_beta_sweep(benchmark):
    workload = reference_workload_spec("vit", mode=BoosterMode.SPRINT,
                                       label="vit@64")
    betas_spec = SweepSpec(
        name="fig18-betas", workloads=(workload,), controllers=("booster",),
        modes=(BoosterMode.SPRINT,), betas=BETAS, cycles=SIM_CYCLES,
        seeds=N_SEEDS, master_seed=SWEEP_MASTER_SEED, seed_mode="shared")
    safe_spec = SweepSpec(
        name="fig18-safe", workloads=(workload,), controllers=("booster_safe",),
        modes=(BoosterMode.SPRINT,), betas=(BETAS[0],), cycles=SIM_CYCLES,
        seeds=N_SEEDS, master_seed=SWEEP_MASTER_SEED, seed_mode="shared")

    def run():
        return run_sweeps([betas_spec, safe_spec], executor=sweep_executor())

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    # The sweeps run on the scalar fast path (SweepSpec defaults to
    # traces="none"); assert record equivalence against the full-trace
    # oracle path on the cheapest spec — outside the timed region, so the
    # recorded sweep timings stay comparable across PRs.
    assert_traces_equivalent(safe_spec)
    safe = results["fig18-safe"].aggregate()[0]
    safe_stalls = safe.stats["total_stall_cycles"].mean
    safe_drop = safe.stats["mean_ir_drop"].mean

    sweep = {}
    for point in results["fig18-betas"].aggregate():
        beta = point.axes["beta"]
        drop = point.stats["mean_ir_drop"]
        sweep[beta] = {
            "normalized_delay": (point.stats["total_stall_cycles"].mean + 1)
            / (safe_stalls + 1),
            "failures": point.stats["total_failures"].mean,
            "failures_ci": (point.stats["total_failures"].ci_low,
                            point.stats["total_failures"].ci_high),
            "extra_mitigation": (safe_drop - drop.mean) / max(safe_drop, 1e-12),
        }

    print()
    print(format_series("Fig 18 delay (normalized)",
                        {b: sweep[b]["normalized_delay"] for b in BETAS}))
    print(format_series("Fig 18 IRFailures (ensemble mean)",
                        {b: float(sweep[b]["failures"]) for b in BETAS}))
    print(format_series("Fig 18 extra mitigation vs safe-only",
                        {b: sweep[b]["extra_mitigation"] for b in BETAS}))

    # Smaller beta -> at least as many failures/delay as the largest beta.
    assert sweep[BETAS[0]]["failures"] >= sweep[BETAS[-1]]["failures"]
    assert sweep[BETAS[0]]["normalized_delay"] >= \
        sweep[BETAS[-1]]["normalized_delay"] - 1e-9
    # Aggressive adjustment never *increases* the mean drop vs safe-only by much.
    assert all(s["extra_mitigation"] > -0.25 for s in sweep.values())
