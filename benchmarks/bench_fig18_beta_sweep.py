"""Figure 18: the beta trade-off — IR-drop mitigation ability vs. delay cycles.

Expected shape (paper): a smaller beta (tighter Algorithm-2 windows) yields more
aggressive operation and therefore more IR-drop mitigation, but also more
IRFailures and hence more recompute/delay cycles; a larger beta is the opposite.
Results are normalized against IR-Booster running at the safe level only.
"""

import numpy as np

from repro.analysis import format_series
from repro.core.ir_booster import BoosterMode
from common import compiled_workload, run_sim

BETAS = (10, 30, 50, 70, 90)


def test_fig18_beta_sweep(benchmark):
    def run():
        compiled = compiled_workload("vit", lhr=True, wds_delta=16, mapping="hr_aware",
                                     mode=BoosterMode.SPRINT)
        reference = run_sim(compiled, controller="booster_safe", mode=BoosterMode.SPRINT,
                            cycles=500)
        sweep = {}
        for beta in BETAS:
            result = run_sim(compiled, controller="booster", mode=BoosterMode.SPRINT,
                             beta=beta, cycles=500)
            mitigation = (reference.mean_ir_drop - result.mean_ir_drop) \
                / max(reference.mean_ir_drop, 1e-12)
            sweep[beta] = {
                "normalized_delay": (result.total_stall_cycles + 1)
                / (reference.total_stall_cycles + 1),
                "failures": result.total_failures,
                "extra_mitigation": mitigation,
            }
        return sweep

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_series("Fig 18 delay (normalized)",
                        {b: sweep[b]["normalized_delay"] for b in BETAS}))
    print(format_series("Fig 18 IRFailures", {b: float(sweep[b]["failures"]) for b in BETAS}))
    print(format_series("Fig 18 extra mitigation vs safe-only",
                        {b: sweep[b]["extra_mitigation"] for b in BETAS}))

    # Smaller beta -> at least as many failures/delay as the largest beta.
    assert sweep[10]["failures"] >= sweep[90]["failures"]
    assert sweep[10]["normalized_delay"] >= sweep[90]["normalized_delay"] - 1e-9
    # Aggressive adjustment never *increases* the mean drop vs safe-only by much.
    assert all(s["extra_mitigation"] > -0.25 for s in sweep.values())
