"""Figures 19 and 20: component ablation and energy-efficiency stacking.

Expected shapes (paper):
* Fig. 19 — every added component (LHR -> +WDS -> +IR-Booster) improves IR-drop,
  power and effective TOPS over the baseline; conv workloads gain relatively
  more from LHR/WDS while transformer workloads lean on IR-Booster (their
  attention matmuls are input-determined);
* Fig. 20 — IR-Booster alone already improves energy efficiency (1.5-2.1x in the
  paper); adding LHR and then WDS increases the gain further.
"""

import numpy as np

from repro.analysis import format_ratio, format_table
from repro.core.ir_booster import BoosterMode
from common import BENCH_CHIP, HW_WORKLOADS, compiled_workload, run_sim

#: Ablation steps: (label, lhr, wds_delta, mapping, controller)
STEPS = (
    ("baseline", False, None, "sequential", "dvfs"),
    ("+LHR", True, None, "sequential", "booster_safe"),
    ("+WDS(16)", True, 16, "sequential", "booster_safe"),
    ("+IR-Booster", True, 16, "hr_aware", "booster"),
)


def ablation(model: str, mode: str):
    rows = {}
    for label, lhr, wds, mapping, controller in STEPS:
        compiled = compiled_workload(model, lhr=lhr, wds_delta=wds, mapping=mapping,
                                     mode=mode)
        result = run_sim(compiled, controller=controller, mode=mode)
        rows[label] = result
    return rows


def test_fig19_ablation(benchmark):
    def run():
        return {model: ablation(model, BoosterMode.LOW_POWER) for model in HW_WORKLOADS}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for model, rows in data.items():
        table_rows = []
        for label, result in rows.items():
            table_rows.append([label, f"{result.worst_ir_drop * 1e3:.1f}",
                               f"{result.average_macro_power_mw:.3f}",
                               f"{result.effective_tops:.3f}"])
        print(format_table(["configuration", "worst IR-drop (mV)", "macro power (mW)",
                            "effective TOPS"], table_rows,
                           title=f"Fig 19 ablation — {model} (low-power mode)"))

    for model, rows in data.items():
        baseline = rows["baseline"]
        full = rows["+IR-Booster"]
        # Each metric improves end to end.
        assert full.worst_ir_drop < baseline.worst_ir_drop, model
        assert full.average_macro_power_mw < baseline.average_macro_power_mw, model
        # LHR/WDS monotonically reduce the drop among the software-only steps.
        assert rows["+WDS(16)"].worst_ir_drop <= rows["+LHR"].worst_ir_drop + 1e-6, model


def test_fig20_energy_efficiency_stacking(benchmark):
    def run():
        gains = {}
        for model in HW_WORKLOADS:
            baseline = run_sim(compiled_workload(model, False, None, "sequential"),
                               controller="dvfs", mode=BoosterMode.LOW_POWER)
            booster_only = run_sim(compiled_workload(model, False, None, "sequential"),
                                   controller="booster", mode=BoosterMode.LOW_POWER)
            booster_lhr = run_sim(compiled_workload(model, True, None, "sequential"),
                                  controller="booster", mode=BoosterMode.LOW_POWER)
            booster_lhr_wds = run_sim(compiled_workload(model, True, 16, "sequential"),
                                      controller="booster", mode=BoosterMode.LOW_POWER)
            gains[model] = {
                "IR-Booster": booster_only.efficiency_gain_vs(baseline),
                "IR-Booster+LHR": booster_lhr.efficiency_gain_vs(baseline),
                "IR-Booster+LHR+WDS": booster_lhr_wds.efficiency_gain_vs(baseline),
            }
        return gains

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["model", "IR-Booster", "+LHR", "+LHR+WDS"],
        [[m, format_ratio(g["IR-Booster"]), format_ratio(g["IR-Booster+LHR"]),
          format_ratio(g["IR-Booster+LHR+WDS"])] for m, g in gains.items()],
        title="Fig 20: energy-efficiency improvement over DVFS baseline"))
    for model, g in gains.items():
        assert g["IR-Booster"] > 1.0, model
        assert g["IR-Booster+LHR+WDS"] >= g["IR-Booster"] - 0.05, model
