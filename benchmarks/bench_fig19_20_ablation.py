"""Figures 19 and 20: component ablation and energy-efficiency stacking.

Expected shapes (paper):
* Fig. 19 — every added component (LHR -> +WDS -> +IR-Booster) improves IR-drop,
  power and effective TOPS over the baseline; conv workloads gain relatively
  more from LHR/WDS while transformer workloads lean on IR-Booster (their
  attention matmuls are input-determined);
* Fig. 20 — IR-Booster alone already improves energy efficiency (1.5-2.1x in the
  paper); adding LHR and then WDS increases the gain further.

Rebased onto the :mod:`repro.sweep` runner on the 64-macro reference chip: each
ablation step is one coupled sweep (compile variant paired with its
controller), every point an ``N_SEEDS`` ensemble.  Workload compiles are shared
between steps through the per-process builder cache.

Seeds are *shared* across ablation steps (``seed_mode="shared"``, common
random numbers): every step of a stack sees the same stochastic inputs, so
the step-to-step deltas the figures assert are differences of configuration,
not of seed draw — a deliberate re-baseline over the PR-2/PR-3 ``per_point``
records (noted in CHANGES.md).
"""

import pytest

from repro.analysis import format_ratio, format_table
from repro.core.ir_booster import BoosterMode
from repro.sweep import SweepSpec, run_sweeps

from common import (
    HW_WORKLOADS,
    N_SEEDS,
    SIM_CYCLES,
    SWEEP_MASTER_SEED,
    assert_traces_equivalent,
    reference_workload_spec,
    sweep_executor,
)

pytestmark = pytest.mark.sweep

#: Ablation steps: (label, lhr, wds_delta, mapping, controller)
STEPS = (
    ("baseline", False, None, "sequential", "dvfs"),
    ("+LHR", True, None, "sequential", "booster_safe"),
    ("+WDS(16)", True, 16, "sequential", "booster_safe"),
    ("+IR-Booster", True, 16, "hr_aware", "booster"),
)

#: Fig. 20 stacking: (label, lhr, wds_delta) — all run under the booster.
STACKING = (
    ("IR-Booster", False, None),
    ("IR-Booster+LHR", True, None),
    ("IR-Booster+LHR+WDS", True, 16),
)

MODE = BoosterMode.LOW_POWER


def _step_spec(name: str, lhr, wds, mapping, controller) -> SweepSpec:
    workloads = tuple(
        reference_workload_spec(model, lhr=lhr, wds_delta=wds, mapping=mapping,
                                mode=MODE, label=model)
        for model in HW_WORKLOADS)
    return SweepSpec(name=name, workloads=workloads, controllers=(controller,),
                     modes=(MODE,), betas=(50,), cycles=SIM_CYCLES,
                     seeds=N_SEEDS, master_seed=SWEEP_MASTER_SEED,
                     seed_mode="shared")


def test_fig19_ablation(benchmark):
    specs = [_step_spec(f"fig19/{label}", lhr, wds, mapping, controller)
             for label, lhr, wds, mapping, controller in STEPS]

    def run():
        results = run_sweeps(specs, executor=sweep_executor())
        data = {}
        for model in HW_WORKLOADS:
            data[model] = {
                label: results[f"fig19/{label}"].point(workload=model).stats
                for label, *_ in STEPS}
        return data

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    # Scalar fast path (traces="none" by default): record equivalence
    # against the full-trace path, asserted on the baseline step outside
    # the timed region.
    assert_traces_equivalent(specs[0])
    print()
    for model, rows in data.items():
        table_rows = []
        for label, stats in rows.items():
            table_rows.append([label, f"{stats['worst_ir_drop'].mean * 1e3:.1f}",
                               f"{stats['average_macro_power_mw'].mean:.3f}",
                               f"{stats['effective_tops'].mean:.3f}"])
        print(format_table(["configuration", "worst IR-drop (mV)", "macro power (mW)",
                            "effective TOPS"], table_rows,
                           title=f"Fig 19 ablation — {model} @64-macro chip "
                                 "(low-power mode, ensemble means)"))

    for model, rows in data.items():
        baseline = rows["baseline"]
        full = rows["+IR-Booster"]
        # Each metric improves end to end.
        assert full["worst_ir_drop"].mean < baseline["worst_ir_drop"].mean, model
        assert full["average_macro_power_mw"].mean < \
            baseline["average_macro_power_mw"].mean, model
        # LHR/WDS monotonically reduce the drop among the software-only steps.
        assert rows["+WDS(16)"]["worst_ir_drop"].mean <= \
            rows["+LHR"]["worst_ir_drop"].mean + 1e-6, model


def test_fig20_energy_efficiency_stacking(benchmark):
    specs = [_step_spec("fig20/dvfs-baseline", False, None, "sequential", "dvfs")]
    specs += [_step_spec(f"fig20/{label}", lhr, wds, "sequential", "booster")
              for label, lhr, wds in STACKING]

    def run():
        results = run_sweeps(specs, executor=sweep_executor())
        gains = {}
        for model in HW_WORKLOADS:
            base_power = results["fig20/dvfs-baseline"].point(workload=model) \
                .stats["average_macro_power_mw"].mean
            gains[model] = {
                label: base_power / results[f"fig20/{label}"].point(workload=model)
                .stats["average_macro_power_mw"].mean
                for label, *_ in STACKING}
        return gains

    gains = benchmark.pedantic(run, rounds=1, iterations=1)
    # Scalar fast path: record equivalence on the DVFS baseline sweep,
    # outside the timed region.
    assert_traces_equivalent(specs[0])
    print()
    print(format_table(
        ["model", "IR-Booster", "+LHR", "+LHR+WDS"],
        [[m, format_ratio(g["IR-Booster"]), format_ratio(g["IR-Booster+LHR"]),
          format_ratio(g["IR-Booster+LHR+WDS"])] for m, g in gains.items()],
        title="Fig 20: energy-efficiency improvement over DVFS baseline "
              "@64-macro chip"))
    for model, g in gains.items():
        assert g["IR-Booster"] > 1.0, model
        assert g["IR-Booster+LHR+WDS"] >= g["IR-Booster"] - 0.05, model
