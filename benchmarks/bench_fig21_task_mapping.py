"""Figure 21: HR-aware task mapping vs sequential / random / zigzag mapping.

Expected shape (paper): on mixed-operator workloads (conv + attention matmuls
with very different HR), HR-aware mapping yields lower power in low-power mode
and higher effective TOPS in sprint mode than the naive mappings, because it
avoids grouping tasks with incompatible HR/safe levels.
"""

import numpy as np

from repro.analysis import format_table
from repro.core.ir_booster import BoosterMode
from repro.sim import CompilerConfig, RuntimeConfig, compile_workload, simulate
from repro.workloads import MIXED_OPERATOR_COMBOS, mixed_operator_workload
from common import BENCH_CHIP, BENCH_TABLE, workload_profile

STRATEGIES = ("sequential", "random", "zigzag", "hr_aware")


def evaluate_combo(combo: str, mode: str):
    conv_profile = workload_profile("resnet18", lhr=True)
    transformer_profile = workload_profile("vit", lhr=True)
    mixed = mixed_operator_workload(combo, conv_profile, transformer_profile,
                                    operators_per_kind=2)
    results = {}
    for strategy in STRATEGIES:
        compiled = compile_workload(
            mixed, BENCH_CHIP, BENCH_TABLE,
            CompilerConfig(bits=8, wds_delta=16, mapping_strategy=strategy, mode=mode,
                           max_tasks_per_operator=2, seed=0))
        sim = simulate(compiled, RuntimeConfig(cycles=400, controller="booster",
                                               mode=mode, seed=0), table=BENCH_TABLE)
        results[strategy] = sim
    return results


def test_fig21_low_power_mode(benchmark):
    def run():
        return {combo: evaluate_combo(combo, BoosterMode.LOW_POWER)
                for combo in MIXED_OPERATOR_COMBOS}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    rows = []
    for combo, results in data.items():
        rows.append([combo] + [f"{results[s].average_macro_power_mw:.3f}"
                               for s in STRATEGIES])
    print(format_table(["workload"] + list(STRATEGIES), rows,
                       title="Fig 21 (low-power): per-macro power in mW"))
    for combo, results in data.items():
        naive_best = min(results[s].average_macro_power_mw
                         for s in ("sequential", "random", "zigzag"))
        assert results["hr_aware"].average_macro_power_mw <= naive_best * 1.05, combo


def test_fig21_sprint_mode(benchmark):
    def run():
        return {combo: evaluate_combo(combo, BoosterMode.SPRINT)
                for combo in ("conv+qkt", "sv+linear")}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    rows = []
    for combo, results in data.items():
        rows.append([combo] + [f"{results[s].effective_tops:.3f}" for s in STRATEGIES])
    print(format_table(["workload"] + list(STRATEGIES), rows,
                       title="Fig 21 (sprint): effective TOPS"))
    # Sprint-mode throughput on the small benchmark chip is noisier than the
    # paper's 64-macro design: the mapping evaluator models latency but not the
    # stochastic IRFailure stalls, and a single failure shifts TOPS by several
    # percent over a 400-cycle window.  The check is therefore that HR-aware
    # mapping stays within 20 % of the best naive mapping (the low-power-mode
    # benchmark above carries the strict ordering assertion).
    for combo, results in data.items():
        naive = [results[s].effective_tops for s in ("sequential", "random", "zigzag")]
        assert results["hr_aware"].effective_tops >= max(naive) * 0.8, combo
