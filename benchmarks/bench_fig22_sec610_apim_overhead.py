"""Figure 22 and Section 6.10: AIM on an APIM macro / pure adder tree, and overheads.

Expected shapes (paper):
* Fig. 22-(a) — applying AIM's HR optimization to a 28nm APIM macro still yields
  roughly half of the IR-drop reduction seen on DPIM;
* Fig. 22-(b) — the bit-serial adder tree on its own also benefits (its switching
  activity follows the same Rtog statistics);
* Sec. 6.10 — the added hardware (shift compensator, IR monitor, controller)
  costs well under 1 % area and a few tenths of a percent power.
"""

import numpy as np

from repro.analysis import format_percent, format_series
from repro.pim import AdderTree, BankConfig, MacroConfig, PIMMacro, ShiftCompensator
from repro.power import IRDropModel, IRMonitor, OverheadReport
from repro.workloads import ActivationStreamGenerator
from common import qat_result


APIM_CONFIG = MacroConfig(banks=8, bank=BankConfig(rows=32, weight_bits=8, input_bits=4),
                          is_analog=True, adc_bits=8)


def _macro_drop(codes: np.ndarray, analog: bool, sensitivity: float) -> float:
    """Mean Eq.-2 drop of a macro running the given weight tile.

    ``sensitivity`` scales the dynamic component: analog macros are less
    sensitive to activity-driven mitigation (paper Sec. 7), modelled as a larger
    activity-independent floor.
    """
    config = APIM_CONFIG if analog else MacroConfig(
        banks=8, bank=BankConfig(rows=32, weight_bits=8, input_bits=4))
    macro = PIMMacro(config)
    macro.load_weight_matrix(codes[:config.rows, :config.banks])
    generator = ActivationStreamGenerator(rows=config.rows, input_bits=4, seed=0)
    execution = macro.execute(generator.generate(24))
    model = IRDropModel(static_fraction=0.10 + (0.25 if analog else 0.0))
    return float(model.drop_array(
        np.clip(execution.rtog_mean_trace * sensitivity, 0, 1)).mean())


def test_fig22_apim_and_adder_tree(benchmark):
    def run():
        baseline_matrix = _first_tile(qat_result("vit", lhr=False))
        optimized_matrix = _first_tile(qat_result("vit", lhr=True))
        results = {}
        for label, analog in (("dpim", False), ("apim", True)):
            before = _macro_drop(baseline_matrix, analog, sensitivity=1.0)
            after = _macro_drop(optimized_matrix, analog, sensitivity=1.0)
            results[label] = 1.0 - after / before
        # Pure adder tree: switching activity scales with the number of non-zero
        # product bits, so lower HR directly lowers tree activity.
        tree = AdderTree(leaves=32, operand_bits=8)
        rng = np.random.default_rng(0)
        dense = rng.integers(-64, 64, size=32)
        sparse = dense * (rng.random(32) < 0.5)
        results["adder_tree"] = 1.0 - (tree.activity(sparse).total_activity /
                                       tree.activity(dense).total_activity)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_series("Fig 22 normalized IR-drop reduction",
                        {k: v for k, v in results.items()}))
    assert results["dpim"] > 0.0
    assert results["apim"] > 0.0
    # Analog macros benefit less than digital ones (paper: ~50 % vs 58-69 %).
    assert results["apim"] <= results["dpim"] + 1e-9
    assert results["adder_tree"] > 0.0


def _first_tile(result):
    name = max(result.weight_codes(), key=lambda k: result.weight_codes()[k].size)
    codes = result.weight_codes()[name]
    matrix = codes.reshape(codes.shape[0], -1).T if codes.ndim > 2 else codes.T
    return matrix


def test_sec610_overhead(benchmark):
    def run():
        compensator = ShiftCompensator(delta=16, banks=64)
        monitor = IRMonitor()
        report = OverheadReport(
            shift_compensator_area=compensator.overhead.area_fraction,
            shift_compensator_power=compensator.overhead.power_fraction,
            ir_monitor_area=monitor.overhead_area_fraction,
            ir_monitor_power=monitor.overhead_power_fraction)
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_series("Sec 6.10 overhead fractions", {
        "SC area": report.shift_compensator_area,
        "SC power": report.shift_compensator_power,
        "monitor area": report.ir_monitor_area,
        "monitor power": report.ir_monitor_power,
        "total area": report.total_area_fraction,
        "total power": report.total_power_fraction,
    }))
    # Paper bounds: SC < 0.2 % area / < 1 % power; monitor < 0.1 % / < 0.5 %.
    assert report.shift_compensator_area < 0.002
    assert report.shift_compensator_power < 0.01
    assert report.ir_monitor_area <= 0.001
    assert report.ir_monitor_power <= 0.005
    assert report.total_area_fraction < 0.01
