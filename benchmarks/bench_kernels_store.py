"""Closed-form timeline kernels + cross-worker shared physics store.

Two measurements, two ``BENCH_runtime.json`` sections (merge-preserving —
``bench_runtime_perf`` and ``bench_stress_failures`` own the others):

* ``kernels`` — a failure-dense no-level-change scenario (``booster_safe`` on
  the 64-macro reference geometry, elevated activity and monitor noise, a
  recompute window squeezed to 2 cycles so tens of thousands of failures are
  *selected*, not merely suppressed).  Contenders: the closed-form timeline
  kernel (:mod:`repro.sim.kernels`, warm level cache — the steady state of a
  sweep), the PR-3 batched engine (per-member ``bisect`` pointers,
  ``run_vectorized(kernel=False)``) and the reference oracle; the same three
  on ``dvfs`` and full ``booster`` for the record.  The bar: kernel ≥ 2x
  over the PR-3 batched engine on the ``booster_safe`` scenario, with oracle
  equivalence asserted in the same run.  Runs under whichever kernel
  implementation is active (``REPRO_KERNEL=numpy|numba``), recorded in the
  section.

* ``shared_store`` — the same shared-seed beta grid executed through a
  two-worker :class:`~repro.sweep.runner.PoolExecutor` three times: once with
  private per-worker caches, then twice over one ``shared_cache_dir`` (the
  first fleet populates the store, the second — fresh worker pids — must
  serve its physics from it: cross-worker reuse by construction, not by
  scheduling luck).  All three record sets must be bit-identical and the
  store must show cross-worker hits.
"""

import gc
import os
import shutil
import tempfile
import time

import numpy as np
import pytest

from repro.analysis import format_ratio, format_table
from repro.core.ir_booster import BoosterMode
from repro.sim import RuntimeConfig, clear_level_cache
from repro.sim.engine import run_vectorized
from repro.sim.kernels import active_kernel
from repro.sim.runtime import PIMRuntime
from repro.sim.shared_store import SharedPhysicsStore
from repro.sweep import (
    PoolExecutor,
    SweepRunner,
    SweepSpec,
    WorkloadSpec,
    build_compiled_workload,
)

from common import (
    QAT_EPOCHS,
    SMOKE,
    smoke_grid,
    stress_workload_spec,
    update_bench_runtime,
)

pytestmark = pytest.mark.perf

#: The failure-dense no-level-change operating point (see module docstring).
KERNEL_CYCLES = 800 if SMOKE else 8000
KERNEL_FLIP_MEAN = 0.9
KERNEL_MONITOR_NOISE = 0.035
KERNEL_RECOMPUTE = 2
KERNEL_SEED = 3

#: The shared-store pool sweep: a shared-seed beta grid, two workers.
STORE_BETAS = smoke_grid((4, 5, 6, 8))
STORE_CYCLES = KERNEL_CYCLES // 2
STORE_PROCESSES = 2

#: Kernel-speedup bar on the ``booster_safe`` scenario; overridable from the
#: environment so the hosted-runner configuration can be tuned without a
#: code change.
KERNEL_BAR_MIN = float(os.environ.get("REPRO_BENCH_KERNEL_BAR_MIN", "2.0"))
#: Same for the booster span-kernel leg (batched safe-run resolution through
#: ``IRBoosterController.apply_failures_at_cycles``).
BOOSTER_BAR_MIN = float(os.environ.get("REPRO_BENCH_BOOSTER_BAR_MIN", "1.5"))


def _config(controller: str, engine: str = "vectorized") -> RuntimeConfig:
    return RuntimeConfig(cycles=KERNEL_CYCLES, controller=controller,
                         mode=BoosterMode.LOW_POWER, beta=5,
                         recompute_cycles=KERNEL_RECOMPUTE,
                         flip_mean=KERNEL_FLIP_MEAN,
                         monitor_noise=KERNEL_MONITOR_NOISE,
                         seed=KERNEL_SEED, engine=engine)


def _assert_equivalent(reference, candidate, label: str) -> None:
    """The discrete-outcome slice of the engine-equivalence contract."""
    assert reference.total_failures == candidate.total_failures, label
    assert reference.total_stall_cycles == candidate.total_stall_cycles, label
    assert np.array_equal(reference.chip_drop_trace,
                          candidate.chip_drop_trace), label
    for ref, cand in zip(reference.macro_results, candidate.macro_results):
        assert ref.failures == cand.failures, label
        assert ref.stall_cycles == cand.stall_cycles, label
        assert np.array_equal(ref.drop_trace, cand.drop_trace), label
    for ref, cand in zip(reference.group_results, candidate.group_results):
        assert np.array_equal(ref.level_trace, cand.level_trace), label
        assert ref.final_level == cand.final_level, label


def _best_of(fn, repeats: int = 5) -> float:
    """Best wall time over ``repeats``, with the GC parked.

    The kernel timings run in the same process as the other harnesses, whose
    caches keep millions of objects alive; a generational collection landing
    inside a timed region would charge their bookkeeping to this measurement.
    """
    best = float("inf")
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return best


def _measure_controller(compiled, controller: str) -> dict:
    runtime = PIMRuntime(compiled, _config(controller))
    reference = PIMRuntime(compiled, _config(controller, "reference")).run()
    clear_level_cache()
    kernel = run_vectorized(runtime, kernel=True)
    pre_kernel = run_vectorized(runtime, kernel=False)
    _assert_equivalent(reference, kernel, f"{controller}/kernel")
    _assert_equivalent(reference, pre_kernel, f"{controller}/pre-kernel")

    # Warm level cache on both sides: the steady state of any sweep, so the
    # comparison isolates the event path the kernels replace.
    start = time.perf_counter()
    PIMRuntime(compiled, _config(controller, "reference")).run()
    reference_seconds = time.perf_counter() - start
    kernel_seconds = _best_of(lambda: run_vectorized(runtime, kernel=True))
    pre_kernel_seconds = _best_of(
        lambda: run_vectorized(runtime, kernel=False))
    return {
        "failures": kernel.total_failures,
        "stall_cycles": kernel.total_stall_cycles,
        "reference_seconds": reference_seconds,
        "pre_kernel_seconds": pre_kernel_seconds,
        "kernel_seconds": kernel_seconds,
        "speedup_kernel_vs_pre_kernel": pre_kernel_seconds / kernel_seconds,
        "speedup_vs_reference": reference_seconds / kernel_seconds,
        "equivalence_asserted": True,
    }


def test_kernel_timeline_speedup(benchmark):
    compiled = build_compiled_workload(stress_workload_spec())

    def run():
        report = {
            "scenario": {
                "workload": "stress@64 (synthetic, 2-macro sets, sequential)",
                "cycles": KERNEL_CYCLES,
                "flip_mean": KERNEL_FLIP_MEAN,
                "monitor_noise": KERNEL_MONITOR_NOISE,
                "recompute_cycles": KERNEL_RECOMPUTE,
                "seed": KERNEL_SEED,
            },
            "kernel_impl": active_kernel(),
            "controllers": {
                controller: _measure_controller(compiled, controller)
                for controller in ("booster_safe", "dvfs", "booster")},
        }
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    update_bench_runtime({"kernels": report})

    print()
    rows = []
    for controller, data in report["controllers"].items():
        rows.append([controller, str(data["failures"]),
                     f"{data['pre_kernel_seconds']:.3f}",
                     f"{data['kernel_seconds']:.3f}",
                     format_ratio(data["speedup_kernel_vs_pre_kernel"]),
                     format_ratio(data["speedup_vs_reference"])])
    print(format_table(
        ["controller", "failures", "PR-3 batched s", "kernel s",
         "kernel vs PR-3", "vs reference"], rows,
        title=f"Closed-form timeline kernels ({report['kernel_impl']}) — "
              f"{KERNEL_CYCLES} cycles x 64 macros "
              "(BENCH_runtime.json: kernels)"))

    safe = report["controllers"]["booster_safe"]
    booster = report["controllers"]["booster"]
    assert safe["equivalence_asserted"]
    assert safe["failures"] > (1000 if SMOKE else 10000)   # failure-dense
    if not SMOKE:
        # The acceptance bars: the no-level-change kernel at >= 2x over the
        # PR-3 batched engine, and the booster span kernel at >= 1.5x (its
        # safe-level failure runs resolve in closed form with one
        # ``apply_failures_at_cycles`` controller call per run).
        assert safe["speedup_kernel_vs_pre_kernel"] >= KERNEL_BAR_MIN, safe
        assert booster["speedup_kernel_vs_pre_kernel"] >= BOOSTER_BAR_MIN, \
            booster


def _pool_sweep(spec, shared_dir):
    clear_level_cache()
    executor = PoolExecutor(processes=STORE_PROCESSES,
                            shared_cache_dir=shared_dir)
    start = time.perf_counter()
    result = SweepRunner(spec, executor).run()
    return result, time.perf_counter() - start


def _model_store_fleet():
    """A small ``"model"`` (QAT) workload fleet over one shared store.

    Covers the compiled-chip *activity* sharing: the workload's realized-Rtog
    traces carry the spec's content-derived fingerprint, so they publish into
    the store and are served to workers that never derived them.  A beta pair
    under shared seeds means the whole fleet needs exactly one activity
    derivation.
    """
    workload = WorkloadSpec(builder="model", model="resnet18",
                            qat_epochs=QAT_EPOCHS, groups=8,
                            macros_per_group=2, banks=4, rows=32,
                            label="resnet18@model-store")
    spec = SweepSpec(name="store-model", workloads=(workload,),
                     controllers=("booster",), modes=(BoosterMode.LOW_POWER,),
                     betas=smoke_grid((40, 60)), cycles=STORE_CYCLES // 2,
                     seeds=1, master_seed=0, seed_mode="shared")
    build_compiled_workload(workload)   # parent-side QAT (forked workers inherit)
    private, _ = _pool_sweep(spec, None)
    shared_dir = tempfile.mkdtemp(prefix="repro-bench-model-store-")
    try:
        populate, _ = _pool_sweep(spec, shared_dir)
        warm, _ = _pool_sweep(spec, shared_dir)
        store = SharedPhysicsStore(shared_dir)
        kinds = store.kind_counts()
        cross_hits = store.cross_worker_hits()
    finally:
        shutil.rmtree(shared_dir, ignore_errors=True)
    records = [r.to_json_dict() for r in private.sorted_records()]
    identical = (records == [r.to_json_dict()
                             for r in populate.sorted_records()]
                 and records == [r.to_json_dict()
                                 for r in warm.sorted_records()])
    return {
        "workload": workload.label,
        "n_runs": spec.n_runs,
        "activity_entries": kinds.get("activity", 0),
        "level_entries": kinds.get("level", 0),
        "cross_worker_hits": cross_hits,
        "records_identical": identical,
    }


def test_shared_store_cross_worker_reuse(benchmark):
    workload = stress_workload_spec(label="store-sweep@64")
    spec = SweepSpec(name="store-beta", workloads=(workload,),
                     controllers=("booster",), modes=(BoosterMode.LOW_POWER,),
                     betas=STORE_BETAS, cycles=STORE_CYCLES,
                     flip_means=(KERNEL_FLIP_MEAN,),
                     monitor_noises=(KERNEL_MONITOR_NOISE,), seeds=1,
                     master_seed=0, seed_mode="shared")
    build_compiled_workload(workload)   # exclude compile cost

    def run():
        private, private_seconds = _pool_sweep(spec, None)
        shared_dir = tempfile.mkdtemp(prefix="repro-bench-store-")
        try:
            # Two fleets over one store: the first populates it, the second
            # (fresh worker pids) must serve its physics from the first's
            # entries — cross-worker reuse by construction, not by race.
            shared, populate_seconds = _pool_sweep(spec, shared_dir)
            again, warm_seconds = _pool_sweep(spec, shared_dir)
            store = SharedPhysicsStore(shared_dir)
            stats = store.stats()
            cross_hits = store.cross_worker_hits()
        finally:
            shutil.rmtree(shared_dir, ignore_errors=True)
        records = [r.to_json_dict() for r in private.sorted_records()]
        identical = (records == [r.to_json_dict()
                                 for r in shared.sorted_records()]
                     and records == [r.to_json_dict()
                                     for r in again.sorted_records()])
        return {
            "betas": list(STORE_BETAS),
            "cycles": STORE_CYCLES,
            "n_runs": spec.n_runs,
            "seed_mode": spec.seed_mode,
            "pool_processes": STORE_PROCESSES,
            "private_cache_seconds": private_seconds,
            "shared_store_populate_seconds": populate_seconds,
            "shared_store_warm_seconds": warm_seconds,
            "store_entries": stats["entries"],
            "cross_worker_hits": cross_hits,
            "records_identical": identical,
            "model_builder": _model_store_fleet(),
        }

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    update_bench_runtime({"shared_store": report})

    print()
    print(format_table(
        ["beta grid", "private s", "populate s", "warm s", "entries",
         "x-worker hits", "identical"],
        [[f"{len(report['betas'])} betas @{report['cycles']}",
          f"{report['private_cache_seconds']:.3f}",
          f"{report['shared_store_populate_seconds']:.3f}",
          f"{report['shared_store_warm_seconds']:.3f}",
          str(report["store_entries"]), str(report["cross_worker_hits"]),
          str(report["records_identical"])]],
        title="Cross-worker shared physics store, 2-worker pool "
              "(BENCH_runtime.json: shared_store)"))

    model = report["model_builder"]
    print(format_table(
        ["model fleet", "runs", "activity entries", "level entries",
         "x-worker hits", "identical"],
        [[model["workload"], str(model["n_runs"]),
          str(model["activity_entries"]), str(model["level_entries"]),
          str(model["cross_worker_hits"]), str(model["records_identical"])]],
        title="QAT-workload activity sharing through the store "
              "(BENCH_runtime.json: shared_store.model_builder)"))

    assert report["records_identical"]
    assert report["store_entries"] > 0
    assert report["cross_worker_hits"] > 0
    # The "model" builder's compiled-chip activity crosses the store too.
    assert model["records_identical"]
    assert model["activity_entries"] > 0
    assert model["cross_worker_hits"] > 0
