"""Runtime-engine performance: vectorized vs. reference simulation speed.

This harness starts the repo's performance trajectory for the cycle-level
runtime.  It times both engines on

* the ``bench_sec66_headline`` configuration — the exact simulate() calls the
  Sec. 6.6 headline makes (DVFS baseline + full-AIM booster, low-power and
  sprint, both HW workloads) at the benchmark's 600-cycle horizon;
* a long 5000-cycle horizon (the reference loop's cost grows linearly, the
  vectorized engine's event cost stays sparse);
* the paper-scale 64-macro reference chip, which only became benchable with
  the vectorized engine;
* the :mod:`repro.sweep` runner: serial vs. ``multiprocessing.Pool`` executors
  over a beta x seed grid on the reference chip (the sweeps themselves are
  embarrassingly parallel, so pool throughput tracks the core count).

Results (cycles/second per engine, speedups, sweep throughput, and the
equivalence of the aggregate failure counts) are written to
``BENCH_runtime.json`` at the repo root so future PRs can track the trajectory.
"""

import os
import time

import pytest

from repro.analysis import format_ratio, format_table
from repro.core.ir_booster import BoosterMode
from repro.sweep import (
    PoolExecutor,
    RetryPolicy,
    SerialExecutor,
    SweepRunner,
    SweepSpec,
    build_compiled_workload,
)

from common import (
    HW_WORKLOADS,
    REFERENCE_CHIP,
    REFERENCE_TABLE,
    SIM_CYCLES,
    SMOKE,
    SWEEP_MASTER_SEED,
    assert_records_equivalent,
    compiled_workload,
    reference_chip_workload,
    reference_workload_spec,
    run_sim,
    smoke_grid,
    update_bench_runtime,
)

pytestmark = pytest.mark.perf

#: The sweep-throughput grid: >= 8 points (beta x seed) on the 64-macro chip.
SWEEP_BETAS = smoke_grid((10, 30, 50, 70))
SWEEP_SEEDS = 2 if len(SWEEP_BETAS) < 4 else 4
#: ``REPRO_BENCH_POOL_BAR=1`` arms the wall-clock pool-speedup assertion even
#: in smoke mode (the multicore-CI configuration): the sweep keeps the long
#: horizon so one run stays a meaningful unit of pool work, and the
#: cpu_count-tiered bars below are enforced.
POOL_BAR = os.environ.get("REPRO_BENCH_POOL_BAR", "").lower() in \
    ("1", "true", "yes")
#: Long horizon so one run is a meaningful unit of pool work.
SWEEP_CYCLES = SIM_CYCLES if SMOKE and not POOL_BAR else max(SIM_CYCLES, 5000)

#: Materialization benchmark: the scalar-record fast path (traces="none") vs
#: full-trace materialization on the reference chip.  Long horizon so the
#: per-run trace work dominates over setup.
MAT_CYCLES = SIM_CYCLES if SMOKE else 8000
MAT_SEEDS = 1 if SMOKE else 3

#: Smoke bars, overridable from the environment so the hosted-runner
#: configuration can be tuned without a code change.
POOL_BAR_MIN = os.environ.get("REPRO_BENCH_POOL_BAR_MIN")
#: Ceiling on the supervised pool's fault-free overhead vs. the plain pool
#: (fractional: 0.05 == 5%).  Overridable for noisy shared runners.
SUPERVISED_MAX_OVERHEAD = float(
    os.environ.get("REPRO_BENCH_SUPERVISED_MAX_OVERHEAD", "0.05"))


def _materialization_spec(controller: str, traces: str) -> SweepSpec:
    workload = reference_workload_spec("vit", mode=BoosterMode.LOW_POWER,
                                       label="vit@64")
    return SweepSpec(name=f"mat-{controller}", workloads=(workload,),
                     controllers=(controller,),
                     modes=(BoosterMode.LOW_POWER,), betas=(50,),
                     cycles=MAT_CYCLES, seeds=MAT_SEEDS,
                     master_seed=SWEEP_MASTER_SEED, traces=traces)


def _time_materialization():
    """Full-trace vs scalar-record sweep wall time on the reference chip.

    ``booster_safe`` is the materialization-dominated scenario (its failure
    timeline resolves through one closed-form kernel call per Set, so trace
    gathers and stall-mask rebuilds dominate the full-trace run); ``dvfs``
    (no failures at all — pure materialization) and ``booster`` (event-path
    heavy, so the ratio is smaller) are recorded alongside.  Record
    equivalence between the two modes is asserted in the same run: discrete
    metrics bit-identical, float metrics <= 1e-9 rtol.
    """
    build_compiled_workload(
        reference_workload_spec("vit", mode=BoosterMode.LOW_POWER,
                                label="vit@64"))
    report = {"cycles": MAT_CYCLES, "seeds": MAT_SEEDS, "workload": "vit@64",
              "controllers": {}}
    for controller in ("booster_safe", "dvfs", "booster"):
        spec_full = _materialization_spec(controller, "full")
        spec_none = _materialization_spec(controller, "none")
        # Warm pass: populate the level cache and activity aggregates (the
        # steady state of any sweep), and assert record equivalence.
        full_result = SweepRunner(spec_full, SerialExecutor()).run()
        none_result = SweepRunner(spec_none, SerialExecutor()).run()
        assert_records_equivalent(full_result, none_result)

        full_seconds = min(
            _timed(lambda: SweepRunner(spec_full, SerialExecutor()).run())
            for _ in range(3))
        none_seconds = min(
            _timed(lambda: SweepRunner(spec_none, SerialExecutor()).run())
            for _ in range(3))
        report["controllers"][controller] = {
            "n_runs": spec_full.n_runs,
            "full_seconds": full_seconds,
            "none_seconds": none_seconds,
            "speedup": full_seconds / none_seconds,
            "records_equivalent": True,
        }
    return report


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _time_sweep_executors():
    """Serial vs. pool wall time on the beta x seed grid (records must match)."""
    workload = reference_workload_spec("vit", mode=BoosterMode.LOW_POWER,
                                       label="vit@64")
    spec = SweepSpec(name="perf-sweep", workloads=(workload,),
                     controllers=("booster",), modes=(BoosterMode.LOW_POWER,),
                     betas=SWEEP_BETAS, cycles=SWEEP_CYCLES, seeds=SWEEP_SEEDS,
                     master_seed=SWEEP_MASTER_SEED)
    # Warm the per-process workload cache: the serial pass then measures pure
    # simulation, and fork-started pool workers inherit the compiled image.
    build_compiled_workload(workload)

    start = time.perf_counter()
    serial_result = SweepRunner(spec, SerialExecutor()).run()
    serial_time = time.perf_counter() - start

    processes = os.cpu_count() or 1
    start = time.perf_counter()
    pool_result = SweepRunner(spec, PoolExecutor(processes=processes)).run()
    pool_time = time.perf_counter() - start

    # The supervised pool path (retry policy + deadline watchdog) on the same
    # fault-free scenario: its bookkeeping must stay in the noise relative to
    # the unsupervised fast path.
    supervised = PoolExecutor(processes=processes,
                              retry_policy=RetryPolicy(max_attempts=3),
                              run_timeout=300.0)
    start = time.perf_counter()
    supervised_result = SweepRunner(spec, supervised).run()
    supervised_time = time.perf_counter() - start

    serial_dicts = [r.to_json_dict() for r in serial_result.sorted_records()]
    identical = serial_dicts == \
        [r.to_json_dict() for r in pool_result.sorted_records()]
    supervised_identical = serial_dicts == \
        [r.to_json_dict() for r in supervised_result.sorted_records()]
    return {
        "n_points": spec.n_points,
        "n_runs": spec.n_runs,
        "cycles": SWEEP_CYCLES,
        "serial_seconds": serial_time,
        "pool_seconds": pool_time,
        "speedup": serial_time / pool_time,
        "serial_runs_per_sec": spec.n_runs / serial_time,
        "pool_runs_per_sec": spec.n_runs / pool_time,
        "supervised_seconds": supervised_time,
        "supervised_overhead": supervised_time / pool_time - 1.0,
        "supervised_records_identical": supervised_identical,
        "cpu_count": os.cpu_count(),
        "pool_processes": processes,
        "records_identical": identical,
    }

#: (label, controller, lhr, wds, mapping) — the headline's four simulate()
#: calls per model (baseline = DVFS on the unoptimized compile, AIM = booster
#: on the full-AIM compile), for both modes.
HEADLINE_RUNS = [
    ("baseline", "dvfs", False, None, "sequential"),
    ("aim", "booster", True, 16, "hr_aware"),
]


def _time_portfolio(engine: str, cycles: int, repeats: int = 3):
    """Best-of-N wall time + aggregate outcome checksum for one engine."""
    best = float("inf")
    checksum = None
    for _ in range(repeats):
        total = 0.0
        failures = 0
        stalls = 0
        macro_cycles = 0
        for model in HW_WORKLOADS:
            for _, controller, lhr, wds, mapping in HEADLINE_RUNS:
                for mode in (BoosterMode.LOW_POWER, BoosterMode.SPRINT):
                    compiled = compiled_workload(model, lhr=lhr, wds_delta=wds,
                                                 mapping=mapping, mode=mode)
                    start = time.perf_counter()
                    result = run_sim(compiled, controller=controller, mode=mode,
                                     cycles=cycles, engine=engine)
                    total += time.perf_counter() - start
                    failures += result.total_failures
                    stalls += result.total_stall_cycles
                    macro_cycles += cycles * len(result.macro_results)
        best = min(best, total)
        checksum = (failures, stalls)
    return best, checksum, macro_cycles


def test_runtime_engine_speedup(benchmark):
    def run():
        report = {"sim_cycles": SIM_CYCLES, "horizons": {}}
        for cycles in (SIM_CYCLES, 5000):
            ref_time, ref_checksum, macro_cycles = _time_portfolio("reference", cycles)
            vec_time, vec_checksum, _ = _time_portfolio("vectorized", cycles)
            assert ref_checksum == vec_checksum, \
                "engines disagree on failures/stalls"
            report["horizons"][str(cycles)] = {
                "reference_seconds": ref_time,
                "vectorized_seconds": vec_time,
                "speedup": ref_time / vec_time,
                "reference_macro_cycles_per_sec": macro_cycles / ref_time,
                "vectorized_macro_cycles_per_sec": macro_cycles / vec_time,
                "failures": ref_checksum[0],
                "stall_cycles": ref_checksum[1],
            }

        # Paper-scale 64-macro chip, vectorized engine only for the trajectory
        # (plus one reference timing so the speedup there is on record too).
        compiled = reference_chip_workload("resnet18")
        start = time.perf_counter()
        result = run_sim(compiled, controller="booster", mode=BoosterMode.LOW_POWER,
                         cycles=SIM_CYCLES, engine="vectorized",
                         table=REFERENCE_TABLE)
        vec_time = time.perf_counter() - start
        start = time.perf_counter()
        ref_result = run_sim(compiled, controller="booster",
                             mode=BoosterMode.LOW_POWER, cycles=SIM_CYCLES,
                             engine="reference", table=REFERENCE_TABLE)
        ref_time = time.perf_counter() - start
        assert ref_result.total_failures == result.total_failures
        report["reference_chip"] = {
            "total_macros": REFERENCE_CHIP.total_macros,
            "loaded_macros": len(result.macro_results),
            "vectorized_seconds": vec_time,
            "reference_seconds": ref_time,
            "speedup": ref_time / vec_time,
            "macro_cycles_per_sec": SIM_CYCLES * len(result.macro_results) / vec_time,
        }

        report["sweep_throughput"] = _time_sweep_executors()
        report["materialization"] = _time_materialization()
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)

    # Merge-preserve: other harnesses own their own sections (e.g. the
    # ``stress`` section written by bench_stress_failures).
    update_bench_runtime(report)

    headline = report["horizons"][str(SIM_CYCLES)]
    long_run = report["horizons"]["5000"]
    print()
    print(format_table(
        ["configuration", "ref s", "vec s", "speedup", "vec macro-cyc/s"],
        [[f"headline @{SIM_CYCLES}", f"{headline['reference_seconds']:.3f}",
          f"{headline['vectorized_seconds']:.3f}",
          format_ratio(headline["speedup"]),
          f"{headline['vectorized_macro_cycles_per_sec']:.2e}"],
         ["portfolio @5000", f"{long_run['reference_seconds']:.3f}",
          f"{long_run['vectorized_seconds']:.3f}",
          format_ratio(long_run["speedup"]),
          f"{long_run['vectorized_macro_cycles_per_sec']:.2e}"],
         [f"64-macro chip @{SIM_CYCLES}",
          f"{report['reference_chip']['reference_seconds']:.3f}",
          f"{report['reference_chip']['vectorized_seconds']:.3f}",
          format_ratio(report["reference_chip"]["speedup"]),
          f"{report['reference_chip']['macro_cycles_per_sec']:.2e}"]],
        title="Runtime engine performance (BENCH_runtime.json)"))

    sweep = report["sweep_throughput"]
    print(format_table(
        ["sweep grid", "serial s", "pool s", "speedup", "superv s",
         "superv ovh", "cores"],
        [[f"{sweep['n_points']} pts x {sweep['n_runs'] // sweep['n_points']} seeds"
          f" @{sweep['cycles']}",
          f"{sweep['serial_seconds']:.3f}", f"{sweep['pool_seconds']:.3f}",
          format_ratio(sweep["speedup"]), f"{sweep['supervised_seconds']:.3f}",
          f"{sweep['supervised_overhead']:+.1%}",
          f"{sweep['cpu_count']}"]],
        title="Sweep-runner executor throughput (BENCH_runtime.json)"))

    mat = report["materialization"]
    print(format_table(
        ["controller", "runs", "full s", "none s", "speedup"],
        [[controller, str(data["n_runs"]), f"{data['full_seconds']:.3f}",
          f"{data['none_seconds']:.3f}", format_ratio(data["speedup"])]
         for controller, data in mat["controllers"].items()],
        title=f"Scalar-record fast path, vit@64 x {mat['cycles']} cycles "
              "(BENCH_runtime.json: materialization)"))

    # The tentpole acceptance bar: >= 20x on the Sec. 6.6 headline settings.
    # Smoke mode shrinks the horizon (less to amortize), so only the full
    # configuration enforces the perf bars; correctness bars always hold.
    assert sweep["records_identical"]
    assert sweep["supervised_records_identical"]
    # Supervised execution (retries + deadline watchdog) must not tax the
    # fault-free path: <= 5% overhead vs. the plain pool, with a small
    # absolute grace so scheduler jitter on sub-second smoke sweeps cannot
    # fail the relative bar (the full configuration's long horizon makes the
    # relative term dominant).
    overhead_budget = SUPERVISED_MAX_OVERHEAD * sweep["pool_seconds"] + \
        (0.25 if SMOKE else 0.0)
    assert sweep["supervised_seconds"] - sweep["pool_seconds"] \
        <= overhead_budget, sweep
    if not SMOKE:
        assert headline["speedup"] >= 20.0, headline
        assert long_run["speedup"] >= 20.0, long_run
        assert report["reference_chip"]["speedup"] >= 10.0
        # The scalar-record fast path must clear 1.5x on the
        # materialization-dominated scenario (equivalence asserted in-run).
        assert mat["controllers"]["booster_safe"]["speedup"] >= 1.5, mat

    # Wall-clock pool speedup is only a meaningful bar when the machine has
    # cores to use (the records equality above always is).  Armed outside
    # smoke mode, or in smoke with REPRO_BENCH_POOL_BAR=1 — the multicore-CI
    # configuration.  The thresholds default to the values below and are
    # overridable with REPRO_BENCH_POOL_BAR_MIN, so the first green
    # hosted-runner run can be tuned without a code change (shared CI
    # runners are noisy).
    if not SMOKE or POOL_BAR:
        if (sweep["cpu_count"] or 1) >= 4:
            default_bar = 1.5 if (POOL_BAR and SMOKE) else 2.0
            bar = float(POOL_BAR_MIN) if POOL_BAR_MIN else default_bar
            assert sweep["speedup"] > bar, sweep
        elif (sweep["cpu_count"] or 1) >= 2:
            bar = float(POOL_BAR_MIN) if POOL_BAR_MIN else 1.15
            assert sweep["speedup"] > bar, sweep
