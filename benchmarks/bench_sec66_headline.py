"""Section 6.6 headline results: IR-drop mitigation, energy efficiency, speedup.

Expected shape (paper): on the 7nm 256-TOPS design AIM reduces the macro
IR-drop from the 140 mV signoff worst case to 43-58 mV (58.5-69.2 % mitigation),
improves per-macro energy efficiency by 1.91-2.29x, and raises effective
throughput by 1.129-1.152x.  The behavioural chip here is smaller, so the
absolute numbers differ, but AIM must mitigate IR-drop well below signoff,
cut per-macro power by roughly 2x in low-power mode, and gain >1x throughput in
sprint mode.
"""

from repro.analysis import format_percent, format_ratio, format_table
from repro.core.ir_booster import BoosterMode
from common import BENCH_CHIP, HW_WORKLOADS, aim_simulation, baseline_simulation


def test_sec66_headline(benchmark):
    def run():
        rows = {}
        for model in HW_WORKLOADS:
            baseline_lp = baseline_simulation(model, mode=BoosterMode.LOW_POWER)
            aim_lp = aim_simulation(model, mode=BoosterMode.LOW_POWER)
            baseline_sp = baseline_simulation(model, mode=BoosterMode.SPRINT)
            aim_sp = aim_simulation(model, mode=BoosterMode.SPRINT)
            rows[model] = {
                "mitigation_lp": 1.0 - aim_lp.worst_ir_drop / BENCH_CHIP.signoff_ir_drop,
                "mitigation_sp": 1.0 - aim_sp.worst_ir_drop / BENCH_CHIP.signoff_ir_drop,
                "efficiency": aim_lp.efficiency_gain_vs(baseline_lp),
                "speedup": aim_sp.speedup_vs(baseline_sp),
                "baseline_power_mw": baseline_lp.average_macro_power_mw,
                "aim_power_mw": aim_lp.average_macro_power_mw,
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["model", "IR mitigation (LP)", "IR mitigation (sprint)", "energy eff.",
         "speedup", "macro mW base", "macro mW AIM"],
        [[m, format_percent(r["mitigation_lp"]), format_percent(r["mitigation_sp"]),
          format_ratio(r["efficiency"]), format_ratio(r["speedup"]),
          f"{r['baseline_power_mw']:.3f}", f"{r['aim_power_mw']:.3f}"]
         for m, r in rows.items()],
        title="Sec 6.6 headline (paper: 58.5-69.2% mitigation, 1.91-2.29x, 1.129-1.152x)"))

    for model, r in rows.items():
        assert r["mitigation_lp"] > 0.4, model          # large mitigation vs signoff
        assert r["efficiency"] > 1.5, model             # ~2x energy efficiency
        assert r["speedup"] > 1.05, model               # >1.05x sprint-mode speedup
