"""Section 6.6 headline results: IR-drop mitigation, energy efficiency, speedup.

Expected shape (paper): on the 7nm 256-TOPS design AIM reduces the macro
IR-drop from the 140 mV signoff worst case to 43-58 mV (58.5-69.2 % mitigation),
improves per-macro energy efficiency by 1.91-2.29x, and raises effective
throughput by 1.129-1.152x.  The behavioural chip here is smaller, so the
absolute numbers differ, but AIM must mitigate IR-drop well below signoff,
cut per-macro power by roughly 2x in low-power mode, and gain >1x throughput in
sprint mode.

Rebased onto the :mod:`repro.sweep` runner and promoted to the paper-scale
64-macro reference chip: the portfolio (2 models x {baseline, AIM} x
{low-power, sprint}) is two coupled sweeps — the baseline compile is paired
with the DVFS controller and the full-AIM compile with the booster — each grid
point simulated over an ``N_SEEDS`` ensemble.
"""

import pytest

from repro.analysis import format_percent, format_ratio, format_table
from repro.core.ir_booster import BoosterMode
from repro.sweep import SweepSpec, run_sweeps

from common import (
    HW_WORKLOADS,
    N_SEEDS,
    REFERENCE_CHIP,
    SIM_CYCLES,
    SWEEP_MASTER_SEED,
    assert_traces_equivalent,
    reference_workload_spec,
    sweep_executor,
)

pytestmark = pytest.mark.sweep

MODES = (BoosterMode.LOW_POWER, BoosterMode.SPRINT)


def _portfolio_specs():
    """One baseline sweep + one AIM sweep per mode (compile mode follows)."""
    specs = []
    for mode in MODES:
        baseline_workloads = tuple(
            reference_workload_spec(model, lhr=False, wds_delta=None,
                                    mapping="sequential", mode=mode,
                                    label=f"{model}:base")
            for model in HW_WORKLOADS)
        aim_workloads = tuple(
            reference_workload_spec(model, lhr=True, wds_delta=16,
                                    mapping="hr_aware", mode=mode,
                                    label=f"{model}:aim")
            for model in HW_WORKLOADS)
        common_axes = dict(modes=(mode,), betas=(50,), cycles=SIM_CYCLES,
                           seeds=N_SEEDS, master_seed=SWEEP_MASTER_SEED)
        specs.append(SweepSpec(name=f"sec66-base-{mode}",
                               workloads=baseline_workloads,
                               controllers=("dvfs",), **common_axes))
        specs.append(SweepSpec(name=f"sec66-aim-{mode}",
                               workloads=aim_workloads,
                               controllers=("booster",), **common_axes))
    return specs


def test_sec66_headline(benchmark):
    specs = _portfolio_specs()

    def run():
        results = run_sweeps(specs, executor=sweep_executor())
        rows = {}
        for model in HW_WORKLOADS:
            lp, sp = MODES
            base_lp = results[f"sec66-base-{lp}"].point(workload=f"{model}:base")
            aim_lp = results[f"sec66-aim-{lp}"].point(workload=f"{model}:aim")
            base_sp = results[f"sec66-base-{sp}"].point(workload=f"{model}:base")
            aim_sp = results[f"sec66-aim-{sp}"].point(workload=f"{model}:aim")
            signoff = REFERENCE_CHIP.signoff_ir_drop
            rows[model] = {
                "mitigation_lp":
                    1.0 - aim_lp.stats["worst_ir_drop"].mean / signoff,
                "mitigation_sp":
                    1.0 - aim_sp.stats["worst_ir_drop"].mean / signoff,
                "efficiency": base_lp.stats["average_macro_power_mw"].mean
                    / aim_lp.stats["average_macro_power_mw"].mean,
                "speedup": aim_sp.stats["effective_tops"].mean
                    / base_sp.stats["effective_tops"].mean,
                "baseline_power_mw": base_lp.stats["average_macro_power_mw"].mean,
                "aim_power_mw": aim_lp.stats["average_macro_power_mw"].mean,
                "aim_power_ci": (aim_lp.stats["average_macro_power_mw"].ci_low,
                                 aim_lp.stats["average_macro_power_mw"].ci_high),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    # Scalar fast path (traces="none" by default): record equivalence
    # against the full-trace path, asserted on the baseline portfolio
    # outside the timed region.
    assert_traces_equivalent(specs[0])
    print()
    print(format_table(
        ["model", "IR mitigation (LP)", "IR mitigation (sprint)", "energy eff.",
         "speedup", "macro mW base", "macro mW AIM (95% CI)"],
        [[m, format_percent(r["mitigation_lp"]), format_percent(r["mitigation_sp"]),
          format_ratio(r["efficiency"]), format_ratio(r["speedup"]),
          f"{r['baseline_power_mw']:.3f}",
          f"{r['aim_power_mw']:.3f} [{r['aim_power_ci'][0]:.3f}, "
          f"{r['aim_power_ci'][1]:.3f}]"]
         for m, r in rows.items()],
        title="Sec 6.6 headline on the 64-macro chip "
              "(paper: 58.5-69.2% mitigation, 1.91-2.29x, 1.129-1.152x)"))

    for model, r in rows.items():
        assert r["mitigation_lp"] > 0.4, model          # large mitigation vs signoff
        assert r["efficiency"] > 1.5, model             # ~2x energy efficiency
        assert r["speedup"] > 1.05, model               # >1.05x sprint-mode speedup
