"""Fair-share latency of the multi-job sweep service.

One measurement, one ``BENCH_runtime.json`` section (``service``): a long
sweep job and a short one are submitted back-to-back to a single daemon
(the short one *second*, the unfavourable order), and the harness stamps
when each reaches ``done``.  Under the round-based fair-share scheduler
the short job's work units interleave with the long job's from the first
round, so its completion time is a small fraction of the long job's; under
FIFO job scheduling it would have waited for the entire long sweep and the
ratio would be ~1.0.

The bar, env-overridable for runner tuning:

* ``REPRO_BENCH_SERVICE_FAIR_MAX`` (default 0.75) — the short job's
  completion time divided by the long job's must stay below it.  The grids
  are sized so the expected ratio is ~0.45 in smoke mode and ~0.25 in the
  full run; the bar exists to catch a regression to head-of-line blocking,
  not to measure the scheduler finely.

The same pass asserts correctness alongside the timing: the short job's
records are bit-identical to an uninterrupted serial run of its spec, and
the daemon ends healthy (not degraded).
"""

import os
import time

import pytest

from repro.analysis import format_table
from repro.service import SweepService
from repro.sweep import SerialExecutor, SweepResult, SweepRunner, SweepSpec, \
    WorkloadSpec

from common import SMOKE, update_bench_runtime

pytestmark = [pytest.mark.perf, pytest.mark.sweep]

TINY = WorkloadSpec(builder="synthetic", groups=2, macros_per_group=2,
                    banks=4, rows=8, n_operators=4, label="tiny")
#: The long job: enough fair-share rounds for head-of-line blocking to show.
LONG_SPEC = SweepSpec(
    name="bench-long", workloads=(TINY,), controllers=("booster",),
    betas=(10, 20, 30) if SMOKE else (10, 20, 30, 40, 50, 60),
    cycles=120, seeds=4, master_seed=7)
#: The short job: one fair-share quantum's worth of work.
SHORT_SPEC = SweepSpec(
    name="bench-short", workloads=(TINY,), controllers=("booster",),
    betas=(15, 55), cycles=120, seeds=1, master_seed=11)

FAIR_MAX = float(os.environ.get("REPRO_BENCH_SERVICE_FAIR_MAX", "0.75"))

_TERMINAL = ("done", "failed", "cancelled")


def _wait_done(service, job_id: str, deadline: float) -> float:
    """Poll until ``job_id`` is terminal; return the completion stamp."""
    while True:
        status = service.status(job_id)
        if status["state"] in _TERMINAL:
            assert status["state"] == "done", status
            return time.monotonic()
        if time.monotonic() > deadline:
            raise TimeoutError(f"job {job_id} still {status['state']}")
        time.sleep(0.005)


def test_short_job_is_not_blocked_by_long_job(tmp_path):
    baseline = SweepRunner(SHORT_SPEC, SerialExecutor()).run()

    service = SweepService(str(tmp_path / "svc"), checkpoint_every=4,
                           attach_store=False).start()
    try:
        start = time.monotonic()
        long_job, _ = service.submit(LONG_SPEC.to_json_dict(),
                                     job_key="bench-long")
        short_job, _ = service.submit(SHORT_SPEC.to_json_dict(),
                                      job_key="bench-short")
        deadline = start + 600.0
        t_short = _wait_done(service, short_job.job_id, deadline) - start
        t_long = _wait_done(service, long_job.job_id, deadline) - start

        stored = SweepResult.load_resumable(
            service.store_path(short_job.job_id))
        assert ([r.to_json_dict() for r in stored.sorted_records()]
                == [r.to_json_dict() for r in baseline.sorted_records()])
        health = service.health()
        assert not health["degraded"], health
    finally:
        service.shutdown(timeout=60)

    ratio = t_short / t_long if t_long > 0 else float("inf")
    long_runs = LONG_SPEC.n_runs
    short_runs = SHORT_SPEC.n_runs

    print()
    print(format_table(
        ["job", "runs", "done at (s)"],
        [["long", str(long_runs), f"{t_long:.2f}"],
         ["short (submitted 2nd)", str(short_runs), f"{t_short:.2f}"]],
        title="fair-share completion latency"))
    print(f"short/long completion ratio: {ratio:.2f} (bar <{FAIR_MAX:.2f}; "
          f"FIFO would be ~1.0)")

    update_bench_runtime({"service": {
        "long_runs": long_runs, "short_runs": short_runs,
        "t_long_s": t_long, "t_short_s": t_short, "ratio": ratio,
        "bars": {"fair_max": FAIR_MAX},
        "smoke": SMOKE,
    }})

    assert ratio < FAIR_MAX, (
        f"short job finished at {ratio:.2f} of the long job's completion "
        f"time (bar <{FAIR_MAX:.2f}) — fair-share interleaving has "
        "regressed toward head-of-line blocking")
