"""Per-checkpoint persistence cost: sharded record store vs legacy JSON.

One measurement, one ``BENCH_runtime.json`` section (``store``): N synthetic
records appended one at a time with a ``flush()`` — one durable checkpoint —
after each.  The legacy adapter rewrites (and ``.bak``-rotates) the whole
single-JSON blob per flush, so its per-checkpoint cost grows linearly with
the record count; the sharded store appends one digested line and fsyncs,
so its cost stays flat no matter how many records came before.

The bars, both env-overridable for runner tuning:

* ``REPRO_BENCH_STORE_FLAT_MAX`` (default 3.0) — the sharded store's
  late-window / early-window per-checkpoint cost ratio must stay below it
  (flat, modulo fsync noise);
* ``REPRO_BENCH_STORE_SPEEDUP_MIN`` (default 2.0) — in the late window the
  sharded checkpoint must beat the legacy rewrite by at least this factor.

The same pass asserts correctness alongside the timing: both stores read
back bit-identical record sets and the sharded store audits clean.
"""

import json
import os
import time

import pytest

from repro.analysis import format_table
from repro.store import LegacyJSONRecordStore, ShardedRecordStore, audit_store
from repro.sweep import METRIC_NAMES, RunRecord

from common import SMOKE, update_bench_runtime

pytestmark = pytest.mark.perf

#: Checkpoints per contender; enough for the legacy rewrite's linear growth
#: to dominate its constant costs.
N_RECORDS = 150 if SMOKE else 1500
#: Early/late measurement windows (fractions of the append stream).
WINDOW = 0.2

FLAT_MAX = float(os.environ.get("REPRO_BENCH_STORE_FLAT_MAX", "3.0"))
SPEEDUP_MIN = float(os.environ.get("REPRO_BENCH_STORE_SPEEDUP_MIN", "2.0"))


def _record(index: int) -> RunRecord:
    point, seed = divmod(index, 4)
    return RunRecord(
        run_id=f"bench/p{point:04d}/s{seed:03d}", point_index=point,
        seed_index=seed, seed=index,
        point_key=(("workload", "bench"), ("beta", point)),
        metrics={name: float(index) + i / 8.0
                 for i, name in enumerate(METRIC_NAMES)})


def _checkpoint_costs(store) -> list:
    """Append ``N_RECORDS`` one checkpoint at a time; per-checkpoint seconds."""
    costs = []
    for index in range(N_RECORDS):
        record = _record(index)
        start = time.perf_counter()
        store.append(record)
        store.flush()
        costs.append(time.perf_counter() - start)
    return costs


def _window_ms(costs: list) -> dict:
    """Median per-checkpoint cost (ms) of the early and late windows."""
    span = max(1, int(len(costs) * WINDOW))
    def median(window):
        ordered = sorted(window)
        return ordered[len(ordered) // 2]
    early = median(costs[:span]) * 1e3
    late = median(costs[-span:]) * 1e3
    return {"early_ms": early, "late_ms": late,
            "growth": late / early if early > 0 else float("inf")}


def test_store_checkpoint_cost_flat_vs_legacy(tmp_path):
    sharded = ShardedRecordStore(str(tmp_path / "store"))
    sharded_costs = _checkpoint_costs(sharded)
    sharded_records = [r.to_json_dict() for r in sharded.iter_records()]
    sharded.close()

    legacy = LegacyJSONRecordStore(str(tmp_path / "legacy.json"))
    legacy_costs = _checkpoint_costs(legacy)
    legacy_records = [r.to_json_dict() for r in legacy.iter_records()]
    legacy.close()

    # Same durability semantics, same data — the timing comparison is fair.
    assert json.dumps(sharded_records) == json.dumps(legacy_records)
    assert len(sharded_records) == N_RECORDS
    report = audit_store(str(tmp_path / "store"))
    assert report["clean"], report

    sharded_win = _window_ms(sharded_costs)
    legacy_win = _window_ms(legacy_costs)
    speedup_late = legacy_win["late_ms"] / sharded_win["late_ms"] \
        if sharded_win["late_ms"] > 0 else float("inf")

    print()
    print(format_table(
        ["store", "early ms/ckpt", "late ms/ckpt", "late/early"],
        [["sharded", f"{sharded_win['early_ms']:.3f}",
          f"{sharded_win['late_ms']:.3f}", f"{sharded_win['growth']:.2f}x"],
         ["legacy", f"{legacy_win['early_ms']:.3f}",
          f"{legacy_win['late_ms']:.3f}", f"{legacy_win['growth']:.2f}x"]],
        title=f"per-checkpoint persistence cost ({N_RECORDS} records)"))
    print(f"late-window speedup sharded over legacy: {speedup_late:.1f}x "
          f"(bar {SPEEDUP_MIN:.1f}x); sharded growth "
          f"{sharded_win['growth']:.2f}x (bar <{FLAT_MAX:.1f}x)")

    update_bench_runtime({"store": {
        "n_records": N_RECORDS,
        "sharded": sharded_win,
        "legacy": legacy_win,
        "speedup_late": speedup_late,
        "bars": {"flat_max": FLAT_MAX, "speedup_min": SPEEDUP_MIN},
        "smoke": SMOKE,
    }})

    assert sharded_win["growth"] < FLAT_MAX, (
        f"sharded per-checkpoint cost grew {sharded_win['growth']:.2f}x "
        f"from early to late window (bar <{FLAT_MAX:.1f}x) — appends are "
        "no longer O(1)")
    assert speedup_late >= SPEEDUP_MIN, (
        f"late-window sharded checkpoint only {speedup_late:.2f}x faster "
        f"than the legacy rewrite (bar {SPEEDUP_MIN:.1f}x)")
