"""High-failure-rate stress benchmark: the batched failure-path event engine.

The paper's Algorithm-2 evaluation leans on exactly the regime where event
processing dominates the vectorized engine: aggressive a-levels, small beta
windows, elevated activity and monitor noise (the Fig. 18/19/20 stress
points).  This harness pins that regime down as a benchmark:

* **Scenario** — the 64-macro reference geometry filled with a synthetic
  two-macro-Set workload (``common.stress_workload_spec``), run with elevated
  ``flip_mean``/``monitor_noise`` and a small beta so IRFailures arrive every
  few cycles per group (tens of thousands over the horizon).
* **Contenders** — the batched engine (per-group failure runs — since PR 4
  driven by the closed-form timeline kernels of :mod:`repro.sim.kernels` —
  plus the heap scheduler, warm process-level level cache: the steady state
  of any sweep), the same engine cold (cache disabled), the pre-batching
  event loop of PR 1/2 (``run_vectorized(..., batched=False)`` with the
  cache disabled — exactly the per-run behaviour PR 3 replaced), and the
  reference oracle.  (``bench_kernels_store.py`` isolates kernel-on vs
  kernel-off; here the batched contender is simply the engine default.)
* **Contract** — all engines must agree bit-for-bit on failures, stalls, drop
  traces and level traces *in this same run*; the speedup bar
  (``>= 3x`` batched-warm vs. pre-batching) only counts because of it.
* **Cross-run cache reuse** — a shared-seed beta grid through ``SweepRunner``
  (``seed_mode="shared"``: one (workload, seed) across every beta point) runs
  once with the level cache disabled and once enabled; records must be
  bit-identical and the enabled pass must report cache hits.

Results are written to the ``stress`` section of ``BENCH_runtime.json``
(merge-preserving — ``bench_runtime_perf`` owns the other sections).
"""

import time

import numpy as np
import pytest

from repro.analysis import format_ratio, format_table
from repro.core.ir_booster import BoosterMode
from repro.sim import (
    RuntimeConfig,
    clear_level_cache,
    level_cache_stats,
    set_level_cache_budget,
)
from repro.sim.engine import run_vectorized
from repro.sim.runtime import PIMRuntime
from repro.sweep import (
    SerialExecutor,
    SweepRunner,
    SweepSpec,
    build_compiled_workload,
)

from common import SMOKE, smoke_grid, stress_workload_spec, update_bench_runtime

pytestmark = pytest.mark.perf

#: The high-failure-rate operating point (see module docstring).
STRESS_CYCLES = 800 if SMOKE else 8000
STRESS_BETA = 5
STRESS_FLIP_MEAN = 0.78
STRESS_MONITOR_NOISE = 0.010
STRESS_SEED = 3

#: The shared-seed beta grid of the cache-reuse measurement.
CACHE_SWEEP_BETAS = smoke_grid((4, 5, 6, 8))
CACHE_SWEEP_CYCLES = STRESS_CYCLES // 2


def _stress_config(engine: str = "vectorized") -> RuntimeConfig:
    return RuntimeConfig(cycles=STRESS_CYCLES, controller="booster",
                         mode=BoosterMode.LOW_POWER, beta=STRESS_BETA,
                         flip_mean=STRESS_FLIP_MEAN,
                         monitor_noise=STRESS_MONITOR_NOISE,
                         seed=STRESS_SEED, engine=engine)


def _assert_equivalent(reference, candidate, label: str) -> None:
    """The discrete-outcome slice of the engine-equivalence contract."""
    assert reference.total_failures == candidate.total_failures, label
    assert reference.total_stall_cycles == candidate.total_stall_cycles, label
    assert np.array_equal(reference.chip_drop_trace,
                          candidate.chip_drop_trace), label
    for ref, cand in zip(reference.macro_results, candidate.macro_results):
        assert ref.failures == cand.failures, label
        assert ref.stall_cycles == cand.stall_cycles, label
        assert np.array_equal(ref.drop_trace, cand.drop_trace), label
    for ref, cand in zip(reference.group_results, candidate.group_results):
        assert np.array_equal(ref.level_trace, cand.level_trace), label
        assert ref.final_level == cand.final_level, label


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _sweep_cache_reuse() -> dict:
    """Shared-seed beta grid: disabled-cache vs. enabled-cache serial sweeps."""
    workload = stress_workload_spec(label="stress-sweep@64")
    spec = SweepSpec(name="stress-beta", workloads=(workload,),
                     controllers=("booster",), modes=(BoosterMode.LOW_POWER,),
                     betas=CACHE_SWEEP_BETAS, cycles=CACHE_SWEEP_CYCLES,
                     flip_means=(STRESS_FLIP_MEAN,),
                     monitor_noises=(STRESS_MONITOR_NOISE,), seeds=1,
                     master_seed=0, seed_mode="shared")
    build_compiled_workload(workload)   # exclude compile cost from both passes

    old_budget = set_level_cache_budget(0)
    try:
        # Discarded warm-up: fills the (independent) flip_factor_matrix memo
        # and any lazy one-time state, so the two timed passes differ only in
        # the level cache under measurement.
        SweepRunner(spec, SerialExecutor()).run()
        start = time.perf_counter()
        disabled = SweepRunner(spec, SerialExecutor()).run()
        disabled_seconds = time.perf_counter() - start
    finally:
        set_level_cache_budget(old_budget)

    clear_level_cache()
    start = time.perf_counter()
    enabled = SweepRunner(spec, SerialExecutor()).run()
    enabled_seconds = time.perf_counter() - start
    stats = level_cache_stats()

    identical = [r.to_json_dict() for r in disabled.sorted_records()] == \
        [r.to_json_dict() for r in enabled.sorted_records()]
    return {
        "betas": list(CACHE_SWEEP_BETAS),
        "cycles": CACHE_SWEEP_CYCLES,
        "n_runs": spec.n_runs,
        "seed_mode": spec.seed_mode,
        "cache_disabled_seconds": disabled_seconds,
        "cache_enabled_seconds": enabled_seconds,
        "speedup": disabled_seconds / enabled_seconds,
        "cache_hits": stats["hits"],
        "cache_misses": stats["misses"],
        "cache_entries": stats["entries"],
        "cache_bytes": stats["bytes"],
        "records_identical": identical,
    }


def test_stress_failure_path(benchmark):
    compiled = build_compiled_workload(stress_workload_spec())

    def run():
        runtime = PIMRuntime(compiled, _stress_config())

        # Correctness first: all three implementations against the oracle,
        # on exactly the benchmarked scenario.
        reference = PIMRuntime(compiled, _stress_config("reference")).run()
        clear_level_cache()
        batched = run_vectorized(runtime, batched=True)
        prebatch = run_vectorized(runtime, batched=False)
        _assert_equivalent(reference, batched, "batched")
        _assert_equivalent(reference, prebatch, "pre-batching")

        # Timings.  The level cache is warm after the runs above, so
        # ``batched_warm`` measures the steady state of a sweep; the two
        # ``cold`` figures disable the cache — ``prebatch_cold`` is the
        # engine exactly as PR 1/2 shipped it.
        start = time.perf_counter()
        PIMRuntime(compiled, _stress_config("reference")).run()
        reference_seconds = time.perf_counter() - start
        batched_warm = _best_of(lambda: run_vectorized(runtime, batched=True))
        old_budget = set_level_cache_budget(0)
        try:
            batched_cold = _best_of(lambda: run_vectorized(runtime, batched=True))
            prebatch_cold = _best_of(lambda: run_vectorized(runtime, batched=False))
        finally:
            set_level_cache_budget(old_budget)

        macro_cycles = STRESS_CYCLES * len(batched.macro_results)
        return {
            "scenario": {
                "workload": "stress@64 (synthetic, 2-macro sets, sequential)",
                "loaded_macros": len(batched.macro_results),
                "cycles": STRESS_CYCLES,
                "beta": STRESS_BETA,
                "flip_mean": STRESS_FLIP_MEAN,
                "monitor_noise": STRESS_MONITOR_NOISE,
                "seed": STRESS_SEED,
                "failures": batched.total_failures,
                "stall_cycles": batched.total_stall_cycles,
            },
            "reference_seconds": reference_seconds,
            "prebatch_cold_seconds": prebatch_cold,
            "batched_cold_seconds": batched_cold,
            "batched_warm_seconds": batched_warm,
            "speedup_batched_vs_prebatch": prebatch_cold / batched_warm,
            "speedup_event_engine_only": prebatch_cold / batched_cold,
            "speedup_vs_reference": reference_seconds / batched_warm,
            "batched_macro_cycles_per_sec": macro_cycles / batched_warm,
            "equivalence_asserted": True,
            "sweep_cache": _sweep_cache_reuse(),
        }

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    update_bench_runtime({"stress": report})

    scenario = report["scenario"]
    print()
    print(format_table(
        ["engine", "seconds", "vs pre-batching"],
        [["reference loop", f"{report['reference_seconds']:.3f}",
          format_ratio(report["reference_seconds"] / report["prebatch_cold_seconds"])],
         ["pre-batching (PR 2)", f"{report['prebatch_cold_seconds']:.3f}", "1.00x"],
         ["batched, cold cache", f"{report['batched_cold_seconds']:.3f}",
          format_ratio(1.0 / report["speedup_event_engine_only"])],
         ["batched, warm cache", f"{report['batched_warm_seconds']:.3f}",
          format_ratio(1.0 / report["speedup_batched_vs_prebatch"])]],
        title=f"Stress scenario: {scenario['failures']} failures over "
              f"{scenario['cycles']} cycles x {scenario['loaded_macros']} macros "
              "(BENCH_runtime.json: stress)"))
    cache = report["sweep_cache"]
    print(format_table(
        ["beta grid", "no-cache s", "cached s", "speedup", "hits", "identical"],
        [[f"{len(cache['betas'])} betas @{cache['cycles']}",
          f"{cache['cache_disabled_seconds']:.3f}",
          f"{cache['cache_enabled_seconds']:.3f}",
          format_ratio(cache["speedup"]), str(cache["cache_hits"]),
          str(cache["records_identical"])]],
        title="Shared-seed beta-grid sweep: cross-run level-cache reuse"))

    # Correctness bars hold in every mode; the perf bars only in the full
    # configuration (smoke horizons have too little failure work to amortize).
    assert report["equivalence_asserted"]
    assert cache["records_identical"]
    assert cache["cache_hits"] > 0
    if not SMOKE:
        assert report["speedup_batched_vs_prebatch"] >= 3.0, report
        assert report["speedup_event_engine_only"] >= 1.5, report
        assert cache["speedup"] > 1.0, cache
