"""Table 1 and Figure 9: the safe-level -> a-level profile and the V-f pair grid.

Expected shapes (paper):
* Table 1 — higher safe levels leave more headroom, so their initial aggressive
  levels sit further below them; a-levels never exceed the booster range 20-60 %;
* Fig. 9  — within the V-f grid, a lower Rtog level permits either a lower
  voltage at the same frequency or a higher frequency at the same voltage,
  whereas the 100 % DVFS row is the most conservative everywhere.
"""

from repro.analysis import format_table
from repro.core.ir_booster import A_LEVEL_INIT, initial_aggressive_level, safe_level_from_hr
from common import BENCH_TABLE


def test_table1_alevel_profile(benchmark):
    def run():
        rows = []
        for safe in sorted(A_LEVEL_INIT, reverse=True):
            a_level = initial_aggressive_level(safe, BENCH_TABLE)
            rows.append((safe, a_level))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(["safe level (%)", "initial a-level (%)"],
                       [[s, a] for s, a in rows],
                       title="Table 1: safe level -> initial aggressive level"))
    booster_levels = BENCH_TABLE.booster_levels()
    for safe, a_level in rows:
        assert a_level in booster_levels
        if safe != 100:
            assert a_level <= safe
    # Headroom grows with the safe level.
    gaps = {safe: safe - a for safe, a in rows if safe != 100}
    assert gaps[60] >= gaps[30] >= gaps[20]


def test_fig09_vf_grid_properties(benchmark):
    def run():
        return BENCH_TABLE.as_grid()

    grid = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    rows = []
    for level in sorted(grid):
        pairs = grid[level]
        rows.append([level] + [f"{p.voltage:.3f}V@{p.frequency/1e9:.2f}GHz" for p in pairs])
    print(format_table(["level"] + [f"f{i}" for i in range(len(BENCH_TABLE.frequencies))],
                       rows, title="Fig 9: IR-Booster V-f pair grid"))

    # At every frequency step, voltage decreases monotonically with the level.
    for step in range(len(BENCH_TABLE.frequencies)):
        voltages = [grid[level][step].voltage for level in sorted(grid) if level != 100]
        assert all(a <= b + 1e-12 for a, b in zip(voltages, voltages[1:]))
        assert grid[100][step].voltage >= voltages[-1]
    # Safe-level mapping example from the paper: HRG 47.5 % -> level 50.
    assert safe_level_from_hr(0.475, BENCH_TABLE) == 50
