"""Table 2: HRaverage / HRmax reduction of +LHR, +WDS(8), +WDS(16) over baseline QAT.

Expected shape (paper): every workload's HR drops with +LHR and drops further
with +WDS; delta = 16 beats delta = 8; reductions land in the tens of percent.
"""

import numpy as np

from repro.analysis import format_percent, format_table
from repro.core.wds import plan_wds
from common import SW_WORKLOADS, qat_result


def hr_for_variant(model: str, variant: str) -> tuple:
    """(HRaverage, HRmax) for baseline / +LHR / +WDS(8) / +WDS(16)."""
    if variant == "baseline":
        result = qat_result(model, lhr=False)
        return result.hr_average, result.hr_max
    result = qat_result(model, lhr=True)
    if variant == "lhr":
        return result.hr_average, result.hr_max
    delta = 8 if variant == "wds8" else 16
    plan = plan_wds(result.weight_codes(), bits=8, delta=delta)
    return plan.mean_hr_after, plan.max_hr_after


def build_table2() -> dict:
    rows = {}
    for model in SW_WORKLOADS:
        base_avg, base_max = hr_for_variant(model, "baseline")
        rows[model] = {}
        for variant in ("lhr", "wds8", "wds16"):
            avg, peak = hr_for_variant(model, variant)
            rows[model][variant] = {
                "hr_aver_reduction": 1.0 - avg / base_avg if base_avg else 0.0,
                "hr_max_reduction": 1.0 - peak / base_max if base_max else 0.0,
            }
    return rows


def test_table2_hr_reduction(benchmark):
    rows = benchmark.pedantic(build_table2, rounds=1, iterations=1)
    table_rows = []
    for model, variants in rows.items():
        table_rows.append([
            model,
            format_percent(variants["lhr"]["hr_aver_reduction"]),
            format_percent(variants["wds8"]["hr_aver_reduction"]),
            format_percent(variants["wds16"]["hr_aver_reduction"]),
            format_percent(variants["lhr"]["hr_max_reduction"]),
            format_percent(variants["wds16"]["hr_max_reduction"]),
        ])
    print()
    print(format_table(
        ["model", "HRaver +LHR", "HRaver +WDS(8)", "HRaver +WDS(16)",
         "HRmax +LHR", "HRmax +WDS(16)"],
        table_rows, title="Table 2: HR reduction over baseline QAT"))

    # Shape assertions: LHR reduces HR everywhere; WDS(16) reduces it the most.
    for model, variants in rows.items():
        assert variants["lhr"]["hr_aver_reduction"] > 0.0, model
        assert variants["wds16"]["hr_aver_reduction"] >= \
            variants["wds8"]["hr_aver_reduction"] - 0.02, model
        assert variants["wds16"]["hr_aver_reduction"] > \
            variants["lhr"]["hr_aver_reduction"], model
