"""Table 3, Figure 14 and Figure 15: PTQ+LHR, the WDS delta sweep, and pruning.

Expected shapes (paper):
* Table 3 — adding LHR to OmniQuant-/BRECQ-style PTQ lowers HRaver with only a
  marginal change of perplexity / accuracy (smaller HR gains than QAT);
* Fig. 14 — normalized HR vs delta: only the recommended power-of-two deltas
  (8 and 16 for INT8) reduce HR, other deltas increase it;
* Fig. 15 — pruning alone reduces HR at an accuracy cost; LHR/WDS are orthogonal
  and can be combined with pruning for further HR reduction.
"""

import numpy as np

from repro.analysis import format_series, format_table
from repro.core.wds import plan_wds
from repro.models import get_model_spec
from repro.quant import (
    PruningConfig,
    PTQConfig,
    gradual_magnitude_prune,
    ptq_brecq_like,
    ptq_omniquant_like,
)
from common import qat_result


def test_table3_ptq_with_lhr(benchmark):
    def run():
        rows = {}
        for model, method, label in (("gpt2", ptq_omniquant_like, "OmniQuant-like"),
                                     ("llama3", ptq_omniquant_like, "OmniQuant-like"),
                                     ("resnet18", ptq_brecq_like, "BRECQ-like"),
                                     ("mobilenetv2", ptq_brecq_like, "BRECQ-like")):
            spec = get_model_spec(model)
            base = method(spec, PTQConfig(bits=8, use_lhr=False))
            lhr = method(spec, PTQConfig(bits=8, use_lhr=True))
            rows[f"{label}/{model}"] = (base.hr_average, lhr.hr_average,
                                        base.metric, lhr.metric)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["PTQ/model", "HR w/o LHR", "HR w LHR", "metric w/o", "metric w"],
        [[k, f"{a:.3f}", f"{b:.3f}", f"{c:.2f}", f"{d:.2f}"]
         for k, (a, b, c, d) in rows.items()],
        title="Table 3: PTQ + LHR"))
    for key, (base_hr, lhr_hr, _, _) in rows.items():
        assert lhr_hr < base_hr, key


def test_fig14_delta_sweep(benchmark):
    def run():
        lhr = qat_result("resnet18", lhr=True)
        codes = lhr.weight_codes()
        reference = plan_wds(codes, bits=8, delta=0, max_overflow=1.0).mean_hr_after
        sweep = {}
        for delta in range(0, 18):
            plan = plan_wds(codes, bits=8, delta=delta, max_overflow=1.0)
            sweep[delta] = plan.mean_hr_after / reference
        return sweep

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_series("Fig 14: normalized HR vs delta (ResNet18, INT8)", sweep))
    assert sweep[8] < 1.0 and sweep[16] < 1.0          # recommended deltas help
    assert sweep[16] <= sweep[8] + 1e-9                # 16 at least as good as 8
    bad_deltas = [sweep[d] for d in (1, 2, 3, 5, 6, 7)]
    assert all(v > 1.0 for v in bad_deltas)            # misaligned deltas hurt


def test_fig15_pruning_comparison(benchmark):
    def run():
        spec = get_model_spec("resnet18")
        results = {}
        lhr = qat_result("resnet18", lhr=True)
        results["lhr"] = (lhr.hr_average, lhr.metric)
        wds = plan_wds(lhr.weight_codes(), bits=8, delta=8)
        results["lhr+wds8"] = (wds.mean_hr_after, lhr.metric)
        for sparsity in (0.3, 0.5):
            pruned = gradual_magnitude_prune(
                spec, PruningConfig(target_sparsity=sparsity, steps=2, finetune_batches=3))
            results[f"prune{int(sparsity * 100)}"] = (pruned.hr_average, pruned.metric)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(["configuration", "HR", "accuracy"],
                       [[k, f"{hr:.3f}", f"{acc:.2f}"] for k, (hr, acc) in results.items()],
                       title="Fig 15: LHR/WDS vs pruning (ResNet18)"))
    # Pruning reduces HR below the un-pruned baseline ~0.5 and deeper sparsity
    # reduces it further; LHR+WDS achieves reductions without zeroing weights.
    assert results["prune50"][0] < results["prune30"][0]
    assert results["lhr+wds8"][0] < results["lhr"][0]
