"""Shared, cached building blocks for the benchmark harnesses.

Every benchmark regenerates one paper table or figure.  The expensive inputs
(QAT runs, compiled workloads) are cached at module level so that the full
``pytest benchmarks/ --benchmark-only`` sweep stays within a few minutes while
each harness still exercises the real code paths.
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone
from functools import lru_cache
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.ir_booster import BoosterMode
from repro.models import get_model_spec
from repro.pim.config import ChipConfig, small_chip_config
from repro.power.vf_table import VFTable
from repro.quant import QATConfig, QATResult, run_qat
from repro.sim import CompiledWorkload, CompilerConfig, RuntimeConfig, compile_workload, simulate
from repro.sim.results import SimulationResult
from repro.sweep import PoolExecutor, SerialExecutor, WorkloadSpec
from repro.workloads import WorkloadProfile, build_workload_profile

#: Models used by the hardware-facing experiments (one conv, one transformer),
#: matching the paper's choice of ResNet18 and ViT as representatives.
HW_WORKLOADS = ("resnet18", "vit")

#: All six workloads of the software experiments (Table 2, Fig. 13).
SW_WORKLOADS = ("resnet18", "mobilenetv2", "yolov5", "vit", "llama3", "gpt2")

#: Geometry used by the benchmark harnesses: smaller than the 64-macro reference
#: chip so sweeps finish quickly, but with the same group structure.
BENCH_CHIP: ChipConfig = small_chip_config(groups=8, macros_per_group=2, banks=4, rows=32)
BENCH_TABLE = VFTable(nominal_voltage=BENCH_CHIP.nominal_voltage,
                      nominal_frequency=BENCH_CHIP.nominal_frequency,
                      signoff_ir_drop=BENCH_CHIP.signoff_ir_drop)

#: The paper's 64-macro reference geometry (16 groups x 4 macros), benchable
#: with the vectorized engine (see bench_runtime_perf).
REFERENCE_CHIP: ChipConfig = small_chip_config(groups=16, macros_per_group=4,
                                               banks=4, rows=32)
REFERENCE_TABLE = VFTable(nominal_voltage=REFERENCE_CHIP.nominal_voltage,
                          nominal_frequency=REFERENCE_CHIP.nominal_frequency,
                          signoff_ir_drop=REFERENCE_CHIP.signoff_ir_drop)

#: Smoke mode (``pytest benchmarks/ --smoke`` or ``REPRO_BENCH_SMOKE=1``):
#: short horizons, single-seed ensembles, truncated sweep grids, so the whole
#: benchmark suite doubles as a quick CI sanity pass.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "").lower() in ("1", "true", "yes")

QAT_EPOCHS = 2
#: Simulation horizon of the paper-figure harnesses.  The vectorized engine
#: made long horizons cheap, so this sits well above the seed repo's 600.
SIM_CYCLES = 300 if SMOKE else 2000
#: Seed-ensemble size of the sweep-based harnesses (mean +- bootstrap CI).
N_SEEDS = 1 if SMOKE else 3
#: Master seed every benchmark sweep derives its per-run seeds from.
SWEEP_MASTER_SEED = 0


def smoke_grid(values: tuple) -> tuple:
    """Truncate a sweep axis to 2 points in smoke mode."""
    return values[:2] if SMOKE else values


#: The repo-root performance ledger shared by the perf harnesses.
BENCH_RUNTIME_PATH = os.path.join(os.path.dirname(__file__), os.pardir,
                                  "BENCH_runtime.json")


def _git_commit() -> Optional[str]:
    """Short HEAD hash, ``-dirty``-suffixed when the tree has local changes.

    The dirty marker matters for the ledger's provenance: benchmarks are
    typically run *before* committing the change that produced the numbers,
    and stamping the bare parent hash would attribute them to code that
    never contained the change.  Returns None outside a git checkout.
    """
    cwd = os.path.dirname(os.path.abspath(__file__))
    try:
        out = subprocess.run(["git", "rev-parse", "--short", "HEAD"], cwd=cwd,
                             capture_output=True, text=True, timeout=10)
        if out.returncode != 0 or not out.stdout.strip():
            return None
        commit = out.stdout.strip()
        status = subprocess.run(["git", "status", "--porcelain"], cwd=cwd,
                                capture_output=True, text=True, timeout=10)
        if status.returncode == 0 and status.stdout.strip():
            commit += "-dirty"
        return commit
    except (OSError, subprocess.SubprocessError):
        return None


def update_bench_runtime(sections: Dict[str, object]) -> Dict[str, object]:
    """Merge ``sections`` into ``BENCH_runtime.json`` (atomic replace).

    Several harnesses contribute to the ledger (``bench_runtime_perf`` owns
    the engine/sweep sections, ``bench_stress_failures`` the ``stress``
    section); merging instead of overwriting keeps every section current with
    its own harness.  Every write also stamps the top-level ``"recorded"``
    map with the producing git commit and an ISO-8601 UTC date per section
    (kept *outside* the section payloads, whose schemas stay untouched), so
    the ledger reads as a perf trajectory: each section says which commit
    produced it and when.  Smoke passes (short horizons, truncated grids)
    merge in memory but never persist — their numbers would overwrite the
    trajectory with meaningless values on every CI sanity run.  Returns the
    merged report.
    """
    try:
        with open(BENCH_RUNTIME_PATH) as handle:
            report = json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError):
        report = {}
    stamp = {
        "commit": _git_commit(),
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
    }
    recorded = report.setdefault("recorded", {})
    for name, section in sections.items():
        report[name] = section
        recorded[name] = stamp
    if SMOKE:
        return report
    tmp_path = BENCH_RUNTIME_PATH + ".tmp"
    with open(tmp_path, "w") as handle:
        json.dump(report, handle, indent=2)
    os.replace(tmp_path, BENCH_RUNTIME_PATH)
    return report


def assert_traces_equivalent(spec) -> None:
    """Run ``spec`` on both materialization paths and compare the records.

    Used by the figure harnesses *outside* their benchmark-timed regions:
    the sweeps themselves run on the scalar fast path, and this re-runs the
    (cheapest) spec serially with ``traces="none"`` and ``traces="full"`` to
    assert record equivalence in the same test run without inflating the
    recorded sweep timings.
    """
    from dataclasses import replace

    from repro.sweep import SerialExecutor, SweepRunner
    fast = SweepRunner(replace(spec, traces="none"), SerialExecutor()).run()
    full = SweepRunner(replace(spec, traces="full"), SerialExecutor()).run()
    assert_records_equivalent(full, fast)


def assert_records_equivalent(first, second, rtol: float = 1e-9) -> None:
    """Scalar-record equivalence between two sweep results.

    Discrete metrics (failures, stall cycles) must be bit-identical; float
    metrics equal to ``rtol`` (the trace-free fast path computes them
    closed-form per span, reassociating float reductions).
    """
    first_records = first.sorted_records()
    second_records = second.sorted_records()
    assert len(first_records) == len(second_records)
    for a, b in zip(first_records, second_records):
        assert a.run_id == b.run_id and a.seed == b.seed
        assert a.point_key == b.point_key
        for name, value in a.metrics.items():
            other = b.metrics[name]
            if name in ("total_failures", "total_stall_cycles"):
                assert value == other, (a.run_id, name, value, other)
            else:
                assert np.isclose(value, other, rtol=rtol, atol=0.0), \
                    (a.run_id, name, value, other)


def stress_workload_spec(label: str = "stress@64", **overrides) -> WorkloadSpec:
    """The high-failure-rate benchmark workload: a synthetic fill of the
    paper's 64-macro reference geometry (16 groups x 4 macros) with two-macro
    logical Sets, so IRFailures stall whole Sets without any QAT cost.
    """
    params = dict(builder="synthetic", groups=16, macros_per_group=4, banks=4,
                  rows=16, operator_rows=32, n_operators=32, code_spread=30.0,
                  mapping="sequential", label=label)
    params.update(overrides)
    return WorkloadSpec(**params)


def sweep_executor():
    """Pool executor when the machine has cores to use, serial otherwise."""
    cores = os.cpu_count() or 1
    if cores >= 2:
        return PoolExecutor(processes=min(cores, 8))
    return SerialExecutor()


def reference_workload_spec(model: str, lhr: bool = True,
                            wds_delta: Optional[int] = 16,
                            mapping: str = "hr_aware",
                            mode: str = BoosterMode.LOW_POWER,
                            label: str = "") -> WorkloadSpec:
    """Spec for the paper-scale 64-macro reference chip (16 groups x 4 macros).

    Mirrors :func:`reference_chip_workload`: no per-operator task cap, so the
    workload fills the chip.
    """
    return WorkloadSpec(builder="model", model=model, lhr=lhr,
                        wds_delta=wds_delta, mapping=mapping, mode=mode,
                        max_tasks_per_operator=None, qat_epochs=QAT_EPOCHS,
                        groups=16, macros_per_group=4, banks=4, rows=32,
                        label=label or f"{model}@64")


@lru_cache(maxsize=None)
def qat_result(model: str, lhr: bool) -> QATResult:
    """Cached QAT run (baseline or +LHR) for one workload."""
    spec = get_model_spec(model)
    config = QATConfig(bits=8, epochs=QAT_EPOCHS, learning_rate=3e-3,
                       lhr_lambda=2.0 if lhr else 0.0, seed=0)
    return run_qat(spec, config)


@lru_cache(maxsize=None)
def workload_profile(model: str, lhr: bool) -> WorkloadProfile:
    """Cached operator profile built from the (cached) QAT result."""
    result = qat_result(model, lhr)
    spec = get_model_spec(model)
    return build_workload_profile(result.model, name=model, family=spec.family,
                                  codes_by_layer=result.weight_codes(), bits=8,
                                  attention_seq_len=16, seed=0)


@lru_cache(maxsize=None)
def compiled_workload(model: str, lhr: bool, wds_delta: Optional[int],
                      mapping: str = "sequential",
                      mode: str = BoosterMode.LOW_POWER) -> CompiledWorkload:
    """Cached compilation of one workload variant onto the benchmark chip."""
    profile = workload_profile(model, lhr)
    config = CompilerConfig(bits=8, wds_delta=wds_delta, mapping_strategy=mapping,
                            mode=mode, max_tasks_per_operator=2, seed=0)
    return compile_workload(profile, BENCH_CHIP, BENCH_TABLE, config)


@lru_cache(maxsize=None)
def reference_chip_workload(model: str, lhr: bool = True,
                            wds_delta: Optional[int] = 16,
                            mapping: str = "hr_aware",
                            mode: str = BoosterMode.LOW_POWER) -> CompiledWorkload:
    """Cached compilation onto the paper-scale 64-macro reference chip.

    Operators are tiled without a per-operator cap so the workload fills the
    chip (the compiler downsamples to the 64-macro capacity).
    """
    profile = workload_profile(model, lhr)
    config = CompilerConfig(bits=8, wds_delta=wds_delta, mapping_strategy=mapping,
                            mode=mode, max_tasks_per_operator=None, seed=0)
    return compile_workload(profile, REFERENCE_CHIP, REFERENCE_TABLE, config)


def run_sim(compiled: CompiledWorkload, controller: str, mode: str,
            beta: int = 50, cycles: int = SIM_CYCLES, seed: int = 0,
            engine: str = "vectorized",
            table: Optional[VFTable] = None) -> SimulationResult:
    """One runtime simulation with the benchmark defaults."""
    config = RuntimeConfig(cycles=cycles, controller=controller, mode=mode, beta=beta,
                           seed=seed, engine=engine)
    return simulate(compiled, config, table=table or BENCH_TABLE)


def baseline_simulation(model: str, mode: str = BoosterMode.LOW_POWER,
                        cycles: int = SIM_CYCLES) -> SimulationResult:
    """The un-optimized reference: baseline QAT, no WDS, sequential mapping, DVFS."""
    compiled = compiled_workload(model, lhr=False, wds_delta=None, mapping="sequential")
    return run_sim(compiled, controller="dvfs", mode=mode, cycles=cycles)


def aim_simulation(model: str, mode: str = BoosterMode.LOW_POWER, beta: int = 50,
                   cycles: int = SIM_CYCLES) -> SimulationResult:
    """The full-AIM configuration: LHR + WDS(16) + HR-aware mapping + IR-Booster."""
    compiled = compiled_workload(model, lhr=True, wds_delta=16, mapping="hr_aware",
                                 mode=mode)
    return run_sim(compiled, controller="booster", mode=mode, beta=beta, cycles=cycles)
