"""Benchmark-suite configuration: shared imports, markers, and smoke mode.

* makes the shared ``common`` module importable from every harness;
* registers the ``sweep`` / ``perf`` markers so ``-m sweep`` selects the
  sweep-runner harnesses (and ``-m "not perf"`` skips the timing ones);
* adds ``--smoke``: short horizons, single-seed ensembles and 2-point grids
  (see ``common.SMOKE``), letting the whole figure suite run as a CI sanity
  pass in well under a minute.  ``REPRO_BENCH_SMOKE=1`` does the same from the
  environment.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def pytest_addoption(parser):
    parser.addoption("--smoke", action="store_true", default=False,
                     help="run benchmarks in smoke mode: short horizons, "
                          "single-seed ensembles, truncated sweep grids")


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "sweep: benchmark drives the repro.sweep runner")
    config.addinivalue_line(
        "markers", "perf: benchmark measures wall-clock performance")
    if config.getoption("--smoke"):
        # Set before any harness imports ``common`` (collection happens later).
        os.environ["REPRO_BENCH_SMOKE"] = "1"
