"""Autonomous-driving style workload: conv perception networks with LHR + WDS.

The paper motivates AIM with edge scenarios (autonomous driving chips such as
Houmo's) that run a small, fixed set of conv-heavy perception models.  This
example quantizes two such models (a ResNet classifier and a YOLO-style
detector) with and without the LHR regularizer, plans WDS per layer, and
reports the per-layer HR picture a deployment engineer would look at before
choosing IR-Booster levels.

Run with:  python examples/autonomous_driving_pipeline.py
"""

import numpy as np

from repro.analysis import format_percent, format_table
from repro.core.wds import plan_wds
from repro.models import get_model_spec
from repro.quant import QATConfig, run_qat


def optimize(model_name: str) -> None:
    spec = get_model_spec(model_name)
    baseline = run_qat(spec, QATConfig(bits=8, epochs=2, learning_rate=3e-3,
                                       lhr_lambda=0.0, seed=0))
    optimized = run_qat(spec, QATConfig(bits=8, epochs=2, learning_rate=3e-3,
                                        lhr_lambda=2.0, seed=0))
    wds_plan = plan_wds(optimized.weight_codes(), bits=8, delta=None)

    print(f"\n=== {model_name} ({spec.metric_name}) ===")
    rows = []
    for layer in baseline.layer_hr:
        rows.append([
            layer,
            f"{baseline.layer_hr[layer]:.3f}",
            f"{optimized.layer_hr[layer]:.3f}",
            f"{wds_plan.hr_after[layer]:.3f}",
            wds_plan.deltas[layer],
        ])
    print(format_table(["layer", "HR baseline", "HR +LHR", "HR +LHR+WDS", "delta"],
                       rows[:12] + ([["...", "", "", "", ""]] if len(rows) > 12 else [])))
    print(f"HR average: {baseline.hr_average:.3f} -> {optimized.hr_average:.3f} "
          f"-> {wds_plan.mean_hr_after:.3f} "
          f"({format_percent(1 - wds_plan.mean_hr_after / baseline.hr_average)} reduction)")
    print(f"Task metric: {baseline.metric:.2f} -> {optimized.metric:.2f}")
    print(f"Worst overflow from WDS clamping: "
          f"{format_percent(max(wds_plan.overflow.values() or [0.0]), decimals=2)} of weights")


def main() -> None:
    for model_name in ("resnet18", "yolov5"):
        optimize(model_name)


if __name__ == "__main__":
    main()
