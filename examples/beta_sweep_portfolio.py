"""Parallel multi-seed beta sweep: Fig. 18 in miniature, via ``repro.sweep``.

Sweeps the Algorithm-2 beta window for IR-Booster on a QAT-trained ViT,
simulating every grid point over a seed ensemble, in parallel across CPU
cores, and prints each point's mean and bootstrap 95 % confidence interval.
Also demonstrates checkpoint/resume: the sweep is saved to JSON and re-run —
the second invocation executes nothing and aggregates identically.

Run with:  python examples/beta_sweep_portfolio.py
"""

import os
import tempfile

from repro.sweep import PoolExecutor, SerialExecutor, SweepRunner, SweepSpec, WorkloadSpec


def main() -> None:
    # The full paper flow per worker: QAT (+LHR), WDS(16), HR-aware mapping,
    # compiled onto a reduced 16-macro chip so the example stays quick.
    workload = WorkloadSpec(builder="model", model="vit", lhr=True,
                            wds_delta=16, mapping="hr_aware",
                            groups=8, macros_per_group=2, banks=4, rows=32,
                            label="vit")

    spec = SweepSpec(name="beta-sweep", workloads=(workload,),
                     controllers=("booster",), modes=("sprint",),
                     betas=(10, 30, 50, 70, 90), cycles=1000,
                     seeds=3, master_seed=0)

    cores = os.cpu_count() or 1
    executor = PoolExecutor() if cores >= 2 else SerialExecutor()
    print(f"{spec.n_runs} runs ({spec.n_points} grid points x {spec.seeds} seeds) "
          f"on {cores} core(s) ...")

    checkpoint = os.path.join(tempfile.gettempdir(), "beta_sweep.json")
    result = SweepRunner(spec, executor).run(save_path=checkpoint)

    print(f"\n{'beta':>6} | {'IRFailures (mean [95% CI])':>30} | "
          f"{'stall cycles':>12} | {'mean IR-drop (mV)':>18}")
    for point in result.aggregate():
        failures = point.stats["total_failures"]
        stalls = point.stats["total_stall_cycles"]
        drop = point.stats["mean_ir_drop"]
        print(f"{point.axes['beta']:>6} | "
              f"{failures.mean:8.1f} [{failures.ci_low:6.1f}, {failures.ci_high:6.1f}] | "
              f"{stalls.mean:12.1f} | {drop.mean * 1e3:18.2f}")

    # Resume: every record already exists in the checkpoint, so this executes
    # zero simulations and aggregates bit-identically.
    resumed = SweepRunner(spec, SerialExecutor()).run(resume_from=checkpoint)
    assert [r.run_id for r in resumed.sorted_records()] == \
        [r.run_id for r in result.sorted_records()]
    print(f"\nResumed from {checkpoint}: {len(resumed.records)} records, "
          "0 re-executed.")


if __name__ == "__main__":
    main()
