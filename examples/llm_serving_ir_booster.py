"""LLM-serving style workload: a transformer under IR-Booster, sprint vs low-power.

Transformer inference mixes weight-stationary operators (Q/K/V generation, MLP,
projections) with input-determined attention matmuls (QK^T, SV) whose HR cannot
be known offline.  This example compiles a GPT-2-style model onto the PIM chip
and compares three runtime policies — the DVFS baseline, IR-Booster pinned to
its software safe levels, and full IR-Booster with Algorithm-2 adjustment — in
both operating modes, reporting power, throughput and IRFailure counts.

Run with:  python examples/llm_serving_ir_booster.py
"""

from repro.analysis import format_table
from repro.core.ir_booster import BoosterMode
from repro.models import get_model_spec
from repro.pim.config import small_chip_config
from repro.power.vf_table import VFTable
from repro.quant import QATConfig, run_qat
from repro.sim import CompilerConfig, RuntimeConfig, compile_workload, simulate
from repro.workloads import build_workload_profile


def main() -> None:
    chip = small_chip_config(groups=8, macros_per_group=2, banks=4, rows=32)
    table = VFTable(nominal_voltage=chip.nominal_voltage,
                    nominal_frequency=chip.nominal_frequency,
                    signoff_ir_drop=chip.signoff_ir_drop)

    spec = get_model_spec("gpt2")
    qat = run_qat(spec, QATConfig(bits=8, epochs=2, lhr_lambda=2.0, seed=0))
    profile = build_workload_profile(qat.model, name="gpt2", family="transformer",
                                     codes_by_layer=qat.weight_codes(), bits=8,
                                     attention_seq_len=16)
    print(f"Operators: {len(profile.operators)} "
          f"({len(profile.input_determined_operators)} input-determined)")
    print(f"HR average {profile.mean_hamming_rate:.3f}, max {profile.max_hamming_rate:.3f}")

    for mode in (BoosterMode.LOW_POWER, BoosterMode.SPRINT):
        compiled = compile_workload(profile, chip, table, CompilerConfig(
            bits=8, wds_delta=16, mapping_strategy="hr_aware", mode=mode,
            max_tasks_per_operator=2))
        rows = []
        for controller in ("dvfs", "booster_safe", "booster"):
            result = simulate(compiled, RuntimeConfig(cycles=800, controller=controller,
                                                      mode=mode, beta=50, seed=0),
                              table=table)
            rows.append([controller,
                         f"{result.average_macro_power_mw:.3f}",
                         f"{result.effective_tops:.3f}",
                         f"{result.worst_ir_drop * 1e3:.1f}",
                         result.total_failures,
                         result.total_stall_cycles])
        print()
        print(format_table(
            ["controller", "macro mW", "TOPS", "worst drop (mV)", "IRFailures", "stalls"],
            rows, title=f"GPT-2 serving under {mode} mode"))


if __name__ == "__main__":
    main()
