"""Task-mapping exploration: how much does HR-aware mapping buy on mixed workloads?

Complex applications (the paper cites UniAD / BEVFormer / TransFuse) mix conv
and attention operators with very different HR on the same chip.  This example
builds one of the paper's Fig.-21 mixed workloads, maps it with each strategy
(sequential, random, zigzag, HR-aware simulated annealing) and compares the
resulting group levels, power and throughput.

Run with:  python examples/mapping_exploration.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core.ir_booster import BoosterMode
from repro.core.task_mapping import MAPPING_STRATEGIES
from repro.models import get_model_spec
from repro.pim.config import small_chip_config
from repro.power.vf_table import VFTable
from repro.quant import QATConfig, run_qat
from repro.sim import CompilerConfig, RuntimeConfig, compile_workload, simulate
from repro.workloads import build_workload_profile, mixed_operator_workload


def main() -> None:
    chip = small_chip_config(groups=8, macros_per_group=2, banks=4, rows=32)
    table = VFTable(nominal_voltage=chip.nominal_voltage,
                    nominal_frequency=chip.nominal_frequency,
                    signoff_ir_drop=chip.signoff_ir_drop)

    conv_qat = run_qat(get_model_spec("resnet18"),
                       QATConfig(bits=8, epochs=2, lhr_lambda=2.0, seed=0))
    vit_qat = run_qat(get_model_spec("vit"),
                      QATConfig(bits=8, epochs=2, lhr_lambda=2.0, seed=0))
    conv_profile = build_workload_profile(conv_qat.model, "resnet18", "conv",
                                          codes_by_layer=conv_qat.weight_codes())
    vit_profile = build_workload_profile(vit_qat.model, "vit", "transformer",
                                         codes_by_layer=vit_qat.weight_codes())
    mixed = mixed_operator_workload("conv+qkt", conv_profile, vit_profile,
                                    operators_per_kind=2)
    print(f"Mixed workload 'conv+qkt': {[op.name for op in mixed.operators]}")

    rows = []
    for strategy in MAPPING_STRATEGIES:
        compiled = compile_workload(mixed, chip, table, CompilerConfig(
            bits=8, wds_delta=16, mapping_strategy=strategy,
            mode=BoosterMode.LOW_POWER, max_tasks_per_operator=2))
        result = simulate(compiled, RuntimeConfig(cycles=600, controller="booster",
                                                  mode=BoosterMode.LOW_POWER, seed=0),
                          table=table)
        levels = sorted(compiled.group_safe_levels.values())
        rows.append([strategy,
                     f"{result.average_macro_power_mw:.3f}",
                     f"{result.effective_tops:.3f}",
                     f"{result.worst_ir_drop * 1e3:.1f}",
                     str(levels)])
    print()
    print(format_table(["strategy", "macro mW", "TOPS", "worst drop (mV)",
                        "group safe levels"], rows,
                       title="Mapping strategies on the conv+qkt workload (low-power)"))


if __name__ == "__main__":
    main()
