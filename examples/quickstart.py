"""Quickstart: run the full AIM pipeline on one workload and print the headline numbers.

This walks the same path as the paper's end-to-end example (Sec. 5.2.2):
LHR-regularized quantization-aware training, WDS, HR-aware task mapping,
and a cycle-level simulation with IR-Booster — compared against the
un-optimized DVFS baseline.

Run with:  python examples/quickstart.py
"""

from repro.core import AIMConfig, AIMPipeline
from repro.core.ir_booster import BoosterMode
from repro.pim.config import small_chip_config


def main() -> None:
    # A reduced chip keeps the example under a minute; swap in
    # repro.pim.default_chip_config() for the paper-scale 64-macro design.
    chip = small_chip_config(groups=8, macros_per_group=2, banks=4, rows=32)

    config = AIMConfig(
        bits=8,
        use_lhr=True, lhr_lambda=2.0, qat_epochs=2,
        wds_delta=16,
        mapping_strategy="hr_aware",
        controller="booster", mode=BoosterMode.LOW_POWER,
        beta=50, cycles=800,
        max_tasks_per_operator=2,
    )

    pipeline = AIMPipeline("resnet18", chip_config=chip, config=config)
    outcome = pipeline.execute(compare_against_baseline=True)

    print(f"Workload: {outcome.workload}")
    print(f"  HR average (after LHR+WDS planning): {outcome.hr_average:.3f}")
    print(f"  Task metric ({outcome.qat_result.metric_name}): "
          f"{outcome.qat_result.metric:.2f}")
    print(f"  Worst macro IR-drop: {outcome.simulation.worst_ir_drop * 1e3:.1f} mV "
          f"(signoff worst case: {chip.signoff_ir_drop * 1e3:.0f} mV)")
    print(f"  IR-drop mitigation vs signoff: {outcome.ir_drop_mitigation * 100:.1f}%")
    print(f"  Per-macro power: {outcome.simulation.average_macro_power_mw:.3f} mW "
          f"(baseline {outcome.baseline_simulation.average_macro_power_mw:.3f} mW)")
    print(f"  Energy-efficiency gain: {outcome.energy_efficiency_gain:.2f}x")
    print(f"  Effective throughput: {outcome.simulation.effective_tops:.3f} TOPS")


if __name__ == "__main__":
    main()
