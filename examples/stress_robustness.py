"""Stress-axis robustness harness: IR-Booster under drifting activity stats.

IR-Booster's safe and aggressive levels are derived from *profiling-time*
assumptions about activity (the AR(1) flip-factor statistics of Sec. 5.2) and
about the monitors' sensing noise.  This harness sweeps the stress axes that
are first-class in :class:`~repro.sweep.SweepSpec` — ``flip_means``,
``flip_stds`` and ``monitor_noises`` — and shows, paper-style, how the
mitigation degrades as the runtime drifts away from those assumptions: the
IRFailure rate climbs, recompute stalls eat into effective TOPS, and the
energy-efficiency advantage over the DVFS baseline narrows.

The sweep uses ``seed_mode="shared"`` (common random numbers): every grid
point sees the same activity realization per ensemble member, so cross-point
comparisons isolate the drift itself — and the engine's process-level level
cache reuses the per-(group, level) physics across the whole controller
comparison at each (flip, noise) point.

Run with:  python examples/stress_robustness.py
"""

from repro.sim import level_cache_stats
from repro.sweep import SerialExecutor, SweepRunner, SweepSpec, WorkloadSpec

#: Profiling assumption (left column of the table) and drifted operating
#: points: activity running hotter and noisier than profiled.
FLIP_MEANS = (0.5, 0.6, 0.7, 0.8)
FLIP_STDS = (0.15, 0.25)
MONITOR_NOISES = (0.003, 0.008)


def main() -> None:
    workload = WorkloadSpec(builder="synthetic", groups=8, macros_per_group=2,
                            banks=4, rows=16, operator_rows=32, n_operators=8,
                            code_spread=25.0, mapping="sequential",
                            label="stress-robustness")

    spec = SweepSpec(name="stress-axes", workloads=(workload,),
                     controllers=("dvfs", "booster"), modes=("low_power",),
                     betas=(30,), cycles=1500,
                     flip_means=FLIP_MEANS, flip_stds=FLIP_STDS,
                     monitor_noises=MONITOR_NOISES,
                     seeds=2, master_seed=0, seed_mode="shared")

    print(f"{spec.n_runs} runs ({spec.n_points} grid points x {spec.seeds} "
          "shared-seed ensemble members), serial ...")
    result = SweepRunner(spec, SerialExecutor()).run()
    points = result.aggregate()

    print(f"\n{'flip mean':>9} | {'flip std':>8} | {'noise (mV)':>10} | "
          f"{'IRFailures':>10} | {'stall frac':>10} | {'TOPS vs DVFS':>12} | "
          f"{'eff. vs DVFS':>12}")
    for noise in MONITOR_NOISES:
        for std in FLIP_STDS:
            for mean in FLIP_MEANS:
                axes = dict(flip_mean=mean, flip_std=std, monitor_noise=noise)
                booster = next(p for p in points
                               if p.matches(controller="booster", **axes))
                dvfs = next(p for p in points
                            if p.matches(controller="dvfs", **axes))
                failures = booster.stats["total_failures"].mean
                stall_fraction = booster.stats["total_stall_cycles"].mean / (
                    spec.cycles * 16)          # 16 loaded macros
                tops_ratio = booster.stats["effective_tops"].mean / \
                    max(dvfs.stats["effective_tops"].mean, 1e-12)
                eff_ratio = \
                    booster.stats["energy_efficiency_tops_per_watt"].mean / \
                    max(dvfs.stats["energy_efficiency_tops_per_watt"].mean, 1e-12)
                print(f"{mean:>9.2f} | {std:>8.2f} | {noise * 1e3:>10.1f} | "
                      f"{failures:>10.1f} | {stall_fraction:>10.3f} | "
                      f"{tops_ratio:>11.2f}x | {eff_ratio:>11.2f}x")

    stats = level_cache_stats()
    print(f"\nLevel-cache reuse across the sweep: {stats['hits']} hits / "
          f"{stats['misses']} misses ({stats['bytes'] / 1e6:.1f} MB held).")
    print("Reading guide: as flip_mean/flip_std drift above the profiling "
          "assumption (0.6/0.15) and sensing noise grows, IRFailures and the "
          "stall fraction rise, and IR-Booster's efficiency edge over DVFS "
          "narrows — the paper's robustness argument, quantified.")


if __name__ == "__main__":
    main()
