"""Crash-safe sweep service: submit, kill -9 the daemon, restart, recover.

The demo walks the whole robustness story of :mod:`repro.service`:

1. start a sweep daemon over a data directory and submit *two* beta-sweep
   jobs through the REST client (idempotently — resubmitting the same job
   key attaches instead of recomputing); the fair-share scheduler
   interleaves their work units onto one resident fleet;
2. ``kill -9`` the daemon at the nastiest instant — between a durable sweep
   checkpoint and its journal commit — via the deterministic fault registry;
3. restart the daemon over the same data directory: the lease left by the
   dead holder is taken over immediately, the journal replays, both
   interrupted jobs are re-admitted and resumed from their own sharded
   record stores to records **bit-identical** to uninterrupted serial runs;
4. run the store audit doctor (``python -m repro.store.audit``) over every
   per-job record store and assert each is durable-clean;
5. along the way, exercise backpressure (bounded admission queue), the
   health endpoint, and graceful shutdown.

Run with:  python examples/sweep_service_demo.py
CI runs ``python examples/sweep_service_demo.py --smoke`` as its service
smoke leg — same flow, asserting instead of narrating.
"""

import multiprocessing
import os
import sys
import tempfile

from repro.service import (
    Backpressure,
    InProcessClient,
    JobJournal,
    JobRegistry,
    ServiceAPI,
    SweepService,
)
from repro.store.audit import main as audit_main
from repro.sweep import (
    FaultSpec,
    SerialExecutor,
    SweepResult,
    SweepRunner,
    SweepSpec,
    WorkloadSpec,
    faults,
)

TINY = WorkloadSpec(builder="synthetic", groups=2, macros_per_group=2,
                    banks=4, rows=8, n_operators=4, label="tiny")
SPEC = SweepSpec(name="service-demo", workloads=(TINY,),
                 controllers=("booster",), betas=(10, 50), cycles=120,
                 seeds=2, master_seed=7)
SPEC_B = SweepSpec(name="service-demo-b", workloads=(TINY,),
                   controllers=("booster",), betas=(20, 70), cycles=120,
                   seeds=2, master_seed=11)
JOB_KEY = "beta-window-demo"
#: Both jobs run *concurrently* on the shared fleet, fair-share interleaved.
JOBS = ((JOB_KEY, SPEC), ("beta-window-demo-b", SPEC_B))


def daemon_pass(data_dir: str, kill_between_checkpoint_and_commit: bool):
    """One daemon lifetime: start, submit (or re-attach), wait, shut down."""
    faults.disarm_faults()
    if kill_between_checkpoint_and_commit:
        faults.arm_faults(FaultSpec(kind="daemon_kill",
                                    match="daemon:post_checkpoint"))
    service = SweepService(data_dir, checkpoint_every=1,
                           attach_store=False).start()
    job_ids = []
    for job_key, spec in JOBS:
        job, created = service.submit(spec.to_json_dict(), job_key=job_key)
        print(f"  submitted {job.job_id} (created={created}, "
              f"state={job.state}, recoveries={job.recoveries})")
        job_ids.append(job.job_id)
    for job_id in job_ids:
        service.wait_for(job_id, timeout=120)
    service.shutdown(timeout=60)
    os._exit(0)


def run_daemon(data_dir: str, kill: bool) -> int:
    context = multiprocessing.get_context("fork")
    child = context.Process(target=daemon_pass, args=(data_dir, kill))
    child.start()
    child.join(timeout=180)
    if child.is_alive():
        child.kill()
        child.join()
        raise RuntimeError("daemon pass wedged")
    return child.exitcode


def show_backpressure(data_dir: str) -> int:
    """A scheduler-less service fills its queue, then rejects politely."""
    service = SweepService(data_dir, max_queue=2)     # scheduler not started
    client = InProcessClient(ServiceAPI(service))
    client.submit(SPEC, job_key="storm-a")
    client.submit(SPEC, job_key="storm-b")
    rejected = 0
    try:
        service.submit(SPEC.to_json_dict(), job_key="storm-c")
    except Backpressure as error:
        rejected += 1
        print(f"  third submission rejected: retry after "
              f"{error.retry_after:.1f}s (429 over HTTP)")
    health = client.health()
    print(f"  health: queue {health['queue_depth']}/{health['max_queue']}, "
          f"journal {health['journal']['appended']} event(s) appended")
    service.journal.close()
    return rejected


def main() -> int:
    smoke = "--smoke" in sys.argv
    baselines = {job_key: SweepRunner(spec, SerialExecutor()).run()
                 for job_key, spec in JOBS}

    with tempfile.TemporaryDirectory() as tmp:
        data_dir = os.path.join(tmp, "svc")

        print("== pass 1: daemon killed between checkpoint and journal "
              "commit ==")
        code = run_daemon(data_dir, kill=True)
        print(f"  daemon exited with status {code} "
              f"(expected {faults.KILL_EXIT_CODE} - SIGKILL site fired)")
        assert code == faults.KILL_EXIT_CODE

        print("== pass 2: restart over the same data dir ==")
        code = run_daemon(data_dir, kill=False)
        assert code == 0

        journal = JobJournal(os.path.join(data_dir, "journal.jsonl"))
        registry = JobRegistry.open(journal)
        store_dirs = []
        for job_key, spec in JOBS:
            job = registry.find_by_key(job_key)
            print(f"  {job.job_id}: state={job.state}, "
                  f"records={job.records_done}/{job.total_runs}, "
                  f"checkpoints={job.checkpoints}, "
                  f"recoveries={job.recoveries}")
            assert job.state == "done" and job.recoveries == 1

            store_dir = os.path.join(data_dir, "jobs", job.job_id, "records")
            store_dirs.append(store_dir)
            stored = SweepResult.load_resumable(store_dir)
            expected = baselines[job_key]
            identical = (
                [r.to_json_dict() for r in stored.sorted_records()]
                == [r.to_json_dict() for r in expected.sorted_records()])
            print(f"  records bit-identical to uninterrupted serial run: "
                  f"{identical}")
            assert identical
        journal.close()

        print("== store audit doctor (every per-job store) ==")
        for store_dir in store_dirs:
            assert audit_main([store_dir]) == 0, \
                f"record store {store_dir} failed its audit"

        print("== admission control ==")
        assert show_backpressure(os.path.join(tmp, "storm")) == 1

    print("OK" if smoke else "\nAll recovered. kill -9 is survivable.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
