"""Crash-safe sweep service: submit, kill -9 the daemon, restart, recover.

The demo walks the whole robustness story of :mod:`repro.service`:

1. start a sweep daemon over a data directory and submit a beta-sweep job
   through the REST client (idempotently — resubmitting the same job key
   attaches instead of recomputing);
2. ``kill -9`` the daemon at the nastiest instant — between a durable sweep
   checkpoint and its journal commit — via the deterministic fault registry;
3. restart the daemon over the same data directory: the journal replays, the
   interrupted job is re-admitted and resumed from its sharded record store
   to records **bit-identical** to an uninterrupted serial run;
4. run the store audit doctor (``python -m repro.store.audit``) over the
   job's record store and assert it is durable-clean;
5. along the way, exercise backpressure (bounded admission queue), the
   health endpoint, and graceful shutdown.

Run with:  python examples/sweep_service_demo.py
CI runs ``python examples/sweep_service_demo.py --smoke`` as its service
smoke leg — same flow, asserting instead of narrating.
"""

import multiprocessing
import os
import sys
import tempfile

from repro.service import (
    Backpressure,
    InProcessClient,
    JobJournal,
    JobRegistry,
    ServiceAPI,
    SweepService,
)
from repro.store.audit import main as audit_main
from repro.sweep import (
    FaultSpec,
    SerialExecutor,
    SweepResult,
    SweepRunner,
    SweepSpec,
    WorkloadSpec,
    faults,
)

TINY = WorkloadSpec(builder="synthetic", groups=2, macros_per_group=2,
                    banks=4, rows=8, n_operators=4, label="tiny")
SPEC = SweepSpec(name="service-demo", workloads=(TINY,),
                 controllers=("booster",), betas=(10, 50), cycles=120,
                 seeds=2, master_seed=7)
JOB_KEY = "beta-window-demo"


def daemon_pass(data_dir: str, kill_between_checkpoint_and_commit: bool):
    """One daemon lifetime: start, submit (or re-attach), wait, shut down."""
    faults.disarm_faults()
    if kill_between_checkpoint_and_commit:
        faults.arm_faults(FaultSpec(kind="daemon_kill",
                                    match="daemon:post_checkpoint"))
    service = SweepService(data_dir, checkpoint_every=1,
                           attach_store=False).start()
    job, created = service.submit(SPEC.to_json_dict(), job_key=JOB_KEY)
    print(f"  submitted {job.job_id} (created={created}, "
          f"state={job.state}, recoveries={job.recoveries})")
    service.wait_for(job.job_id, timeout=120)
    service.shutdown(timeout=60)
    os._exit(0)


def run_daemon(data_dir: str, kill: bool) -> int:
    context = multiprocessing.get_context("fork")
    child = context.Process(target=daemon_pass, args=(data_dir, kill))
    child.start()
    child.join(timeout=180)
    if child.is_alive():
        child.kill()
        child.join()
        raise RuntimeError("daemon pass wedged")
    return child.exitcode


def show_backpressure(data_dir: str) -> int:
    """A scheduler-less service fills its queue, then rejects politely."""
    service = SweepService(data_dir, max_queue=2)     # scheduler not started
    client = InProcessClient(ServiceAPI(service))
    client.submit(SPEC, job_key="storm-a")
    client.submit(SPEC, job_key="storm-b")
    rejected = 0
    try:
        service.submit(SPEC.to_json_dict(), job_key="storm-c")
    except Backpressure as error:
        rejected += 1
        print(f"  third submission rejected: retry after "
              f"{error.retry_after:.1f}s (429 over HTTP)")
    health = client.health()
    print(f"  health: queue {health['queue_depth']}/{health['max_queue']}, "
          f"journal {health['journal']['appended']} event(s) appended")
    service.journal.close()
    return rejected


def main() -> int:
    smoke = "--smoke" in sys.argv
    baseline = SweepRunner(SPEC, SerialExecutor()).run()

    with tempfile.TemporaryDirectory() as tmp:
        data_dir = os.path.join(tmp, "svc")

        print("== pass 1: daemon killed between checkpoint and journal "
              "commit ==")
        code = run_daemon(data_dir, kill=True)
        print(f"  daemon exited with status {code} "
              f"(expected {faults.KILL_EXIT_CODE} - SIGKILL site fired)")
        assert code == faults.KILL_EXIT_CODE

        print("== pass 2: restart over the same data dir ==")
        code = run_daemon(data_dir, kill=False)
        assert code == 0

        journal = JobJournal(os.path.join(data_dir, "journal.jsonl"))
        registry = JobRegistry.open(journal)
        job = registry.find_by_key(JOB_KEY)
        print(f"  {job.job_id}: state={job.state}, "
              f"records={job.records_done}/{job.total_runs}, "
              f"checkpoints={job.checkpoints}, recoveries={job.recoveries}")
        assert job.state == "done" and job.recoveries == 1

        store_dir = os.path.join(data_dir, "jobs", job.job_id, "records")
        stored = SweepResult.load_resumable(store_dir)
        identical = ([r.to_json_dict() for r in stored.sorted_records()]
                     == [r.to_json_dict() for r in baseline.sorted_records()])
        print(f"  records bit-identical to uninterrupted serial run: "
              f"{identical}")
        assert identical
        journal.close()

        print("== store audit doctor ==")
        assert audit_main([store_dir]) == 0, "record store failed its audit"

        print("== admission control ==")
        assert show_backpressure(os.path.join(tmp, "storm")) == 1

    print("OK" if smoke else "\nAll recovered. kill -9 is survivable.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
