"""repro — a reproduction of "AIM: Software and Hardware Co-design for
Architecture-level IR-drop Mitigation in High-performance PIM" (ISCA 2025).

Package layout
--------------
* :mod:`repro.core`      — the paper's contribution: Rtog/HR metrics, LHR, WDS,
  IR-Booster, HR-aware task mapping, and the end-to-end pipeline.
* :mod:`repro.nn`        — numpy autograd NN framework (training substrate).
* :mod:`repro.models`    — scaled-down ResNet18 / MobileNetV2 / YOLOv5 / ViT /
  GPT-2 / Llama model zoo.
* :mod:`repro.quant`     — QAT, PTQ and pruning flows.
* :mod:`repro.pim`       — behavioural SRAM-PIM chip model (banks → chip).
* :mod:`repro.power`     — V-f tables, PDN solver, IR-drop model, monitors, energy.
* :mod:`repro.sim`       — compiler and cycle-level runtime.
* :mod:`repro.sweep`     — parallel multi-seed parameter sweeps over the runtime.
* :mod:`repro.store`     — durable sharded record stores for sweep results.
* :mod:`repro.workloads` — operator profiles and synthetic input streams.
* :mod:`repro.analysis`  — statistics and report formatting.
"""

__version__ = "1.1.0"

from . import analysis, core, models, nn, pim, power, quant, sim, store, \
    sweep, workloads
from .core import AIMConfig, AIMOutcome, AIMPipeline

__all__ = [
    "core", "nn", "models", "quant", "pim", "power", "sim", "store", "sweep",
    "workloads", "analysis",
    "AIMPipeline", "AIMConfig", "AIMOutcome",
    "__version__",
]
