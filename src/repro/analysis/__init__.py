"""Analysis helpers: correlations, fits, and report formatting."""

from .correlation import LinearFit, linear_fit, pearson_correlation, rank_correlation
from .reporting import format_percent, format_ratio, format_series, format_table

__all__ = [
    "pearson_correlation", "rank_correlation", "linear_fit", "LinearFit",
    "format_table", "format_series", "format_percent", "format_ratio",
]
