"""Statistical helpers: correlations and linear fits used by the experiments.

Fig. 4 of the paper reports the linear correlation between per-macro Rtog and
IR-drop (0.977 for DPIM, 0.998 for APIM); these helpers compute the same
quantities for the reproduction's traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats

__all__ = ["LinearFit", "pearson_correlation", "linear_fit", "rank_correlation"]


@dataclass
class LinearFit:
    """Least-squares line ``y = slope * x + intercept`` plus its correlation."""

    slope: float
    intercept: float
    correlation: float

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.slope * np.asarray(x) + self.intercept


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson correlation coefficient; 0.0 for degenerate inputs."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size:
        raise ValueError("x and y must have the same length")
    if x.size < 2 or np.allclose(x.std(), 0) or np.allclose(y.std(), 0):
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def rank_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation — checks the partial-order claim of Sec. 4.1."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size < 2 or np.allclose(x.std(), 0) or np.allclose(y.std(), 0):
        return 0.0
    result = stats.spearmanr(x, y)
    return float(result.correlation)


def linear_fit(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Least-squares linear fit of y on x."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two matching points")
    slope, intercept = np.polyfit(x, y, deg=1)
    return LinearFit(slope=float(slope), intercept=float(intercept),
                     correlation=pearson_correlation(x, y))
