"""Plain-text table/series formatting for the benchmark harnesses.

Every benchmark prints the rows/series of the corresponding paper table or
figure; these helpers keep that output consistent and grep-able so
EXPERIMENTS.md can quote it directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_series", "format_percent", "format_ratio"]


def format_percent(value: float, decimals: int = 1) -> str:
    """0.283 -> '28.3%'."""
    return f"{100.0 * value:.{decimals}f}%"


def format_ratio(value: float, decimals: int = 2) -> str:
    """2.29 -> '2.29x'."""
    return f"{value:.{decimals}f}x"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Fixed-width text table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError("row length does not match header length")
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[c]) for row in cells) for c in range(columns)]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, values: Mapping[object, float], decimals: int = 3) -> str:
    """One-line series: 'name: k1=v1 k2=v2 ...' — used for figure-style outputs."""
    parts = [f"{key}={value:.{decimals}f}" for key, value in values.items()]
    return f"{name}: " + " ".join(parts)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
