"""AIM core: the paper's primary contribution.

* :mod:`repro.core.metrics` — Rtog / HM / HR (Eq. 1, 3, 4)
* :mod:`repro.core.lhr` — the differentiable lower-hamming-rate regularizer (Eq. 5, 6)
* :mod:`repro.core.wds` — weight distribution shift and its compensation (Alg. 1)
* :mod:`repro.core.ir_booster` — safe/aggressive level logic (Table 1, Alg. 2)
* :mod:`repro.core.task_mapping` — HR-aware simulated-annealing mapping (Alg. 3)
* :mod:`repro.core.aim` — the end-to-end pipeline (Sec. 5.2.2)
"""

from .aim import AIMConfig, AIMOutcome, AIMPipeline
from .ir_booster import (
    A_LEVEL_INIT,
    BoosterMode,
    GroupBoosterState,
    IRBoosterController,
    initial_aggressive_level,
    safe_level_from_hr,
)
from .lhr import (
    LHRRegularizer,
    integer_hamming_table,
    interpolated_hamming_rate,
    interpolated_hamming_rate_grad,
    layer_hamming_loss,
    lhr_loss,
)
from .metrics import (
    hamming_rate,
    hamming_value,
    rtog,
    rtog_trace,
    rtog_upper_bound,
    to_twos_complement_bits,
    weighted_hamming_rate,
)
from .task_mapping import (
    MAPPING_STRATEGIES,
    AnnealingConfig,
    MappingEvaluation,
    MappingEvaluator,
    TaskMapping,
    build_mapping,
    hr_aware_mapping,
    random_mapping,
    sequential_mapping,
    zigzag_mapping,
)
from .wds import (
    WDSPlan,
    choose_delta,
    int_range,
    matmul_with_wds,
    overflow_fraction,
    plan_wds,
    recommended_deltas,
    shift_compensation,
    shift_weights,
    shifted_hamming_rate,
)

__all__ = [
    # metrics
    "to_twos_complement_bits", "hamming_value", "hamming_rate", "weighted_hamming_rate",
    "rtog", "rtog_trace", "rtog_upper_bound",
    # lhr
    "integer_hamming_table", "interpolated_hamming_rate", "interpolated_hamming_rate_grad",
    "layer_hamming_loss", "lhr_loss", "LHRRegularizer",
    # wds
    "int_range", "shift_weights", "shifted_hamming_rate", "overflow_fraction",
    "shift_compensation", "matmul_with_wds", "recommended_deltas", "choose_delta",
    "WDSPlan", "plan_wds",
    # ir-booster
    "A_LEVEL_INIT", "safe_level_from_hr", "initial_aggressive_level", "BoosterMode",
    "GroupBoosterState", "IRBoosterController",
    # mapping
    "TaskMapping", "MappingEvaluation", "MappingEvaluator", "AnnealingConfig",
    "sequential_mapping", "zigzag_mapping", "random_mapping", "hr_aware_mapping",
    "build_mapping", "MAPPING_STRATEGIES",
    # pipeline
    "AIMConfig", "AIMOutcome", "AIMPipeline",
]
