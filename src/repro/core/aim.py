"""End-to-end AIM pipeline (paper Sec. 5.2.2).

``AIMPipeline`` glues the pieces together in the order the paper describes:

1. **Offline software optimization** — quantization-aware training with the LHR
   regularizer (or a plain baseline), followed by per-operator WDS planning;
2. **Compilation** — operators are tiled, mapped with HR-aware task mapping and
   loaded onto the chip model; per-group HR drives IR-Booster's safe levels;
3. **Runtime** — the cycle-level simulation runs under the chosen controller
   (DVFS baseline, safe-level-only IR-Booster, or full IR-Booster), producing
   IR-drop, power and throughput numbers.

The pipeline also exposes a ``compare_against_baseline`` helper that runs the
un-optimized configuration (baseline quantization, sequential mapping, DVFS) on
the same workload, which is what every headline number in the paper is measured
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..models.registry import ModelSpec, get_model_spec
from ..pim.config import ChipConfig, default_chip_config
from ..power.vf_table import VFTable
from ..quant.qat import QATConfig, QATResult, run_qat
from ..sim.compiler import CompiledWorkload, CompilerConfig, compile_workload
from ..sim.results import SimulationResult
from ..sim.runtime import RuntimeConfig, simulate
from ..workloads.profiles import WorkloadProfile, build_workload_profile
from .ir_booster import BoosterMode

__all__ = ["AIMConfig", "AIMOutcome", "AIMPipeline"]


@dataclass
class AIMConfig:
    """Top-level configuration of an end-to-end AIM run."""

    bits: int = 8
    use_lhr: bool = True
    lhr_lambda: float = 2.0
    qat_epochs: int = 3
    wds_delta: Optional[int] = 16        #: None disables WDS; -1 = auto per operator
    mapping_strategy: str = "hr_aware"
    controller: str = "booster"
    mode: str = BoosterMode.LOW_POWER
    beta: int = 50
    cycles: int = 1500
    max_tasks_per_operator: Optional[int] = 2
    attention_seq_len: int = 16
    seed: int = 0


@dataclass
class AIMOutcome:
    """Everything produced by one end-to-end run."""

    workload: str
    config: AIMConfig
    qat_result: QATResult
    profile: WorkloadProfile
    compiled: CompiledWorkload
    simulation: SimulationResult
    baseline_simulation: Optional[SimulationResult] = None

    # -- headline numbers -------------------------------------------------- #
    @property
    def hr_average(self) -> float:
        return self.qat_result.hr_average

    @property
    def ir_drop_mitigation(self) -> float:
        """Mitigation relative to the signoff worst case (the paper's headline metric).

        Sec. 6.6 reports "140 mV -> 58.1~43.2 mV", i.e. mitigation is measured
        against the signoff worst-case drop, not against the baseline workload's
        own drop (which is already below signoff, Fig. 3).
        """
        signoff = self.compiled.chip_config.signoff_ir_drop
        if signoff <= 0:
            return 0.0
        return max(0.0, 1.0 - self.simulation.worst_ir_drop / signoff)

    @property
    def ir_drop_mitigation_vs_baseline(self) -> float:
        """Mitigation relative to the DVFS baseline run of the same workload."""
        if self.baseline_simulation is None:
            return 0.0
        return self.simulation.mitigation_vs(self.baseline_simulation)

    @property
    def energy_efficiency_gain(self) -> float:
        if self.baseline_simulation is None:
            return 1.0
        return self.simulation.efficiency_gain_vs(self.baseline_simulation)

    @property
    def speedup(self) -> float:
        if self.baseline_simulation is None:
            return 1.0
        return self.simulation.speedup_vs(self.baseline_simulation)

    def summary(self) -> Dict[str, float]:
        return {
            "hr_average": self.hr_average,
            "hr_max": self.qat_result.hr_max,
            "task_metric": self.qat_result.metric,
            "worst_ir_drop_mv": self.simulation.worst_ir_drop * 1e3,
            "macro_power_mw": self.simulation.average_macro_power_mw,
            "effective_tops": self.simulation.effective_tops,
            "ir_drop_mitigation": self.ir_drop_mitigation,
            "energy_efficiency_gain": self.energy_efficiency_gain,
            "speedup": self.speedup,
        }


class AIMPipeline:
    """Orchestrates offline optimization, compilation and runtime simulation."""

    def __init__(self, workload: str, chip_config: Optional[ChipConfig] = None,
                 config: Optional[AIMConfig] = None) -> None:
        self.spec: ModelSpec = get_model_spec(workload)
        self.chip_config = chip_config or default_chip_config()
        self.config = config or AIMConfig()
        self.table = VFTable(
            nominal_voltage=self.chip_config.nominal_voltage,
            nominal_frequency=self.chip_config.nominal_frequency,
            signoff_ir_drop=self.chip_config.signoff_ir_drop)

    # ------------------------------------------------------------------ #
    # pipeline stages
    # ------------------------------------------------------------------ #
    def optimize_software(self) -> QATResult:
        """Stage 1: quantization (baseline or +LHR) of the workload's network."""
        cfg = self.config
        qat_config = QATConfig(bits=cfg.bits, epochs=cfg.qat_epochs,
                               lhr_lambda=cfg.lhr_lambda if cfg.use_lhr else 0.0,
                               seed=cfg.seed)
        return run_qat(self.spec, qat_config)

    def build_profile(self, qat_result: QATResult) -> WorkloadProfile:
        """Stage 1b: turn the quantized network into a PIM operator list."""
        return build_workload_profile(
            qat_result.model, name=self.spec.name, family=self.spec.family,
            codes_by_layer=qat_result.weight_codes(), bits=self.config.bits,
            attention_seq_len=self.config.attention_seq_len, seed=self.config.seed)

    def compile(self, profile: WorkloadProfile,
                mapping_strategy: Optional[str] = None,
                wds_delta: Optional[int] = "unset") -> CompiledWorkload:
        """Stage 2: WDS + tiling + task mapping + chip load."""
        cfg = self.config
        compiler_config = CompilerConfig(
            bits=cfg.bits,
            wds_delta=cfg.wds_delta if wds_delta == "unset" else wds_delta,
            mapping_strategy=mapping_strategy or cfg.mapping_strategy,
            mode=cfg.mode,
            max_tasks_per_operator=cfg.max_tasks_per_operator,
            seed=cfg.seed)
        return compile_workload(profile, self.chip_config, self.table, compiler_config)

    def run(self, compiled: CompiledWorkload, controller: Optional[str] = None,
            beta: Optional[int] = None, cycles: Optional[int] = None,
            seed_offset: int = 0) -> SimulationResult:
        """Stage 3: cycle-level simulation under the chosen controller."""
        cfg = self.config
        runtime_config = RuntimeConfig(
            cycles=cycles or cfg.cycles,
            controller=controller or cfg.controller,
            mode=cfg.mode,
            beta=beta or cfg.beta,
            seed=cfg.seed + seed_offset)
        return simulate(compiled, runtime_config, table=self.table)

    # ------------------------------------------------------------------ #
    # end-to-end
    # ------------------------------------------------------------------ #
    def execute(self, compare_against_baseline: bool = True) -> AIMOutcome:
        """Run the full AIM flow; optionally also the un-optimized baseline."""
        qat_result = self.optimize_software()
        profile = self.build_profile(qat_result)
        compiled = self.compile(profile)
        simulation = self.run(compiled)

        baseline_simulation = None
        if compare_against_baseline:
            baseline_qat = run_qat(self.spec, QATConfig(
                bits=self.config.bits, epochs=self.config.qat_epochs,
                lhr_lambda=0.0, seed=self.config.seed))
            baseline_profile = build_workload_profile(
                baseline_qat.model, name=f"{self.spec.name}-baseline",
                family=self.spec.family, codes_by_layer=baseline_qat.weight_codes(),
                bits=self.config.bits, attention_seq_len=self.config.attention_seq_len,
                seed=self.config.seed)
            baseline_compiled = self.compile(baseline_profile,
                                             mapping_strategy="sequential",
                                             wds_delta=None)
            baseline_simulation = self.run(baseline_compiled, controller="dvfs",
                                           seed_offset=1)

        return AIMOutcome(workload=self.spec.name, config=self.config,
                          qat_result=qat_result, profile=profile, compiled=compiled,
                          simulation=simulation,
                          baseline_simulation=baseline_simulation)
