"""IR-Booster: software-guided dynamic V-f level selection (paper Sec. 5.5).

IR-Booster extends DVFS with the architecture-level IR-drop margin exposed by
Rtog/HR.  Its three decisions are reproduced here:

* **safe level** — from the group's worst weight HR (HRG), rounded up to the
  nearest 5 % table level; groups above 60 % or holding input-determined
  operators fall back to the 100 % DVFS level (Sec. 5.5.1);
* **initial aggressive level (a-level0)** — the profiling-derived Table 1
  mapping from safe level to the first aggressive level to try;
* **runtime level adjustment** — Algorithm 2: IRFailures bounce the group back
  to its safe level (and lower the a-level when failures come too quickly),
  while long failure-free stretches first restore and then raise the a-level.

The controller is deliberately a pure state machine: the runtime tells it, per
cycle, whether an IRFailure occurred and whether a frequency synchronization
with another macro of the same logical Set forced a level change; the
controller answers with the level to use next cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..power.vf_table import VFPair, VFTable

__all__ = [
    "A_LEVEL_INIT",
    "safe_level_from_hr",
    "initial_aggressive_level",
    "BoosterMode",
    "GroupBoosterState",
    "IRBoosterController",
]

#: Paper Table 1: initial aggressive level (percent) for each safe level (percent).
A_LEVEL_INIT: Dict[int, int] = {
    100: 60,
    60: 40,
    55: 35,
    50: 35,
    45: 35,
    40: 30,
    35: 30,
    30: 25,
    25: 20,
    20: 20,
}

#: Operating modes (Sec. 5.5.1): throughput-first or energy-first pair choice.
class BoosterMode:
    SPRINT = "sprint"
    LOW_POWER = "low_power"


def safe_level_from_hr(hr: float, table: VFTable,
                       input_determined: bool = False) -> int:
    """Safe Rtog level for a macro group given its worst weight HR.

    Input-determined operators (QK^T / SV) and HR above the 60 % table ceiling
    revert to the 100 % DVFS level, exactly as described in Sec. 5.5.1.
    """
    if input_determined:
        return 100
    if hr <= 0.0:
        return min(table.booster_levels())
    level = table.nearest_level_at_or_above(hr)
    if level == 100 or hr * 100.0 > max(table.booster_levels()):
        return 100
    return level


def initial_aggressive_level(safe_level: int, table: VFTable) -> int:
    """Table-1 lookup of the a-level0 for a safe level (clamped into the table)."""
    if safe_level in A_LEVEL_INIT:
        candidate = A_LEVEL_INIT[safe_level]
    else:
        # Unlisted safe levels (possible with custom tables): keep ~70 % of it.
        candidate = int(round(safe_level * 0.7 / 5.0) * 5)
    booster_levels = table.booster_levels()
    candidate = max(min(candidate, max(booster_levels)), min(booster_levels))
    # Snap onto an existing level.
    return min(booster_levels, key=lambda lvl: abs(lvl - candidate))


@dataclass
class GroupBoosterState:
    """Algorithm-2 state for one macro group."""

    safe_level: int
    a_level: int
    level: int
    safe_counter: int = 0
    failures: int = 0
    level_ups: int = 0
    level_downs: int = 0


class IRBoosterController:
    """Per-group implementation of Algorithm 2 plus V-f pair selection.

    ``beta`` is the safe-window length in cycles: after an IRFailure a group
    runs at its safe level for ``beta`` failure-free cycles before re-entering
    the aggressive level, and raises the a-level after ``2 * beta`` more.
    ``mode`` picks the V-f pair at a level: "sprint" prefers the highest
    frequency, "low_power" the lowest voltage (Sec. 5.5.1).

    The controller is a pure, deterministic state machine — no internal RNG —
    so both simulation engines (and every sweep worker process) drive bit-
    identical level sequences from the same failure inputs.  The closed-form
    fast-forward helpers (:meth:`cycles_to_next_transition`,
    :meth:`advance_nofail`) are what the vectorized engine uses to jump
    between events; they are step-for-step equivalent to repeated
    ``step(ir_failure=False)`` calls.
    """

    def __init__(self, table: VFTable, beta: int = 50,
                 mode: str = BoosterMode.SPRINT) -> None:
        if beta <= 0:
            raise ValueError("beta must be a positive cycle count")
        self.table = table
        self.beta = beta
        self.mode = mode
        self._groups: Dict[int, GroupBoosterState] = {}

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #
    def configure_group(self, group_id: int, group_hr: float,
                        input_determined: bool = False) -> GroupBoosterState:
        """Initialize a group's state from its worst HR (lines 1-2 of Alg. 2)."""
        safe = safe_level_from_hr(group_hr, self.table, input_determined)
        a_level = initial_aggressive_level(safe, self.table)
        state = GroupBoosterState(safe_level=safe, a_level=a_level, level=a_level)
        self._groups[group_id] = state
        return state

    def state(self, group_id: int) -> GroupBoosterState:
        return self._groups[group_id]

    def group_ids(self) -> List[int]:
        return sorted(self._groups)

    # ------------------------------------------------------------------ #
    # Algorithm 2
    # ------------------------------------------------------------------ #
    def step(self, group_id: int, ir_failure: bool,
             frequency_sync_level: Optional[int] = None) -> int:
        """Advance one cycle of Algorithm 2 for one group; returns the new level.

        ``frequency_sync_level`` models lines 11-13: when another macro of the
        same logical Set forces a frequency change, the group adopts that level
        and resets its safe counter.
        """
        state = self._groups[group_id]
        if ir_failure:
            state.failures += 1
            state.level = state.safe_level                      # line 5
            if state.safe_counter < 0.2 * self.beta:            # lines 6-9
                state.a_level = self._level_down(state.a_level)
                state.level_downs += 1
            state.safe_counter = 0                              # line 10
        elif frequency_sync_level is not None:
            state.level = frequency_sync_level                  # lines 11-13
            state.safe_counter = 0
        else:
            state.safe_counter += 1                             # line 15
            if state.safe_counter == self.beta:                 # lines 16-18
                state.level = state.a_level
            if state.safe_counter > 2 * self.beta:              # lines 19-23
                state.a_level = self._level_up(state.a_level, state.safe_level)
                state.level = state.a_level
                state.level_ups += 1
                state.safe_counter = self.beta
        return state.level

    # ------------------------------------------------------------------ #
    # failure-free fast-forward (used by the vectorized simulation engine)
    # ------------------------------------------------------------------ #
    def _transition_gap(self, counter: int) -> int:
        """Failure-free steps from ``counter`` to the next level assignment."""
        if counter < self.beta:
            return self.beta - counter
        return 2 * self.beta + 1 - counter

    def cycles_to_next_transition(self, group_id: int) -> int:
        """Failure-free steps until Algorithm 2 next assigns ``state.level``.

        With no IRFailures the only cycles at which :meth:`step` touches the
        group's level are ``safe_counter == beta`` (restore the a-level, lines
        16-18) and ``safe_counter > 2 * beta`` (raise the a-level, lines
        19-23), so the gap to the next one is closed-form.
        """
        return self._transition_gap(self._groups[group_id].safe_counter)

    def advance_nofail(self, group_id: int, steps: int) -> List[Tuple[int, int]]:
        """Advance ``steps`` failure-free cycles of Algorithm 2 in O(steps/beta).

        Equivalent to calling ``step(group_id, ir_failure=False)`` ``steps``
        times, but jumping from level transition to level transition instead of
        iterating cycles.  Returns the transitions as ``(step_offset, level)``
        pairs (1-based: offset ``k`` means the level applies after the ``k``-th
        step).
        """
        state = self._groups[group_id]
        transitions: List[Tuple[int, int]] = []
        done = 0
        while True:
            counter = state.safe_counter
            gap = self._transition_gap(counter)
            if done + gap > steps:
                break
            done += gap
            if counter < self.beta:                     # lines 16-18
                state.level = state.a_level
            else:                                       # lines 19-23
                state.a_level = self._level_up(state.a_level, state.safe_level)
                state.level = state.a_level
                state.level_ups += 1
            state.safe_counter = self.beta
            transitions.append((done, state.level))
        state.safe_counter += steps - done
        return transitions

    def advance_to_transition(self, group_id: int) -> Tuple[int, int, int]:
        """Jump straight to (and apply) the next failure-free level transition.

        Equivalent to ``advance_nofail(group_id, cycles_to_next_transition(
        group_id))`` but in one call with no inner loop: after any transition
        the safe counter sits at ``beta``, so the follow-up gap is always
        ``beta + 1``.  Returns ``(steps_advanced, new_level, next_gap)``.  The
        batched simulation engine uses this for the scheduled Algorithm-2
        events between failures.
        """
        state = self._groups[group_id]
        beta = self.beta
        counter = state.safe_counter
        if counter < beta:                              # lines 16-18
            steps = beta - counter
            state.level = state.a_level
        else:                                           # lines 19-23
            steps = 2 * beta + 1 - counter
            state.a_level = self._level_up(state.a_level, state.safe_level)
            state.level = state.a_level
            state.level_ups += 1
        state.safe_counter = beta
        return steps, state.level, beta + 1

    def advance_steady_transitions(self, group_id: int, count: int) -> None:
        """Apply ``count`` consecutive steady no-op transitions in bulk.

        Valid only in the post-transition steady state — safe counter at
        ``beta`` (where every call lands it) with the a-level at its own
        ``level_below`` clamp — where each transition takes the else branch
        (lines 19-23) and changes nothing but the level-up count: the level
        stays put and every gap is ``beta + 1``.  Bit-identical to calling
        :meth:`advance_to_transition` ``count`` times.
        """
        self._groups[group_id].level_ups += count

    def advance_and_fail(self, group_id: int,
                         steps: int) -> Tuple[List[Tuple[int, int]], int, int]:
        """Advance ``steps`` failure-free cycles, then apply one IRFailure step.

        Closed-form equivalent of ``advance_nofail(group_id, steps)`` followed
        by ``step(group_id, ir_failure=True)``, fused into a single call for
        the engines' failure hot path.  Returns ``(transitions, level,
        next_gap)`` where ``transitions`` are the failure-free level breaks of
        the gap (as in :meth:`advance_nofail`), ``level`` is the level after
        the failure (it applies from step ``steps + 1`` on) and ``next_gap``
        is the distance to the next scheduled transition (always ``beta``,
        since a failure zeroes the safe counter).
        """
        state = self._groups[group_id]
        counter = state.safe_counter
        gap = self._transition_gap(counter)
        if steps < gap:
            # Common hot-path case: the gap holds no transition at all, so the
            # advance is a bare counter bump (the engines process scheduled
            # transitions as their own events before any later failure).
            state.safe_counter = counter + steps
            transitions: List[Tuple[int, int]] = []
        else:
            transitions = self.advance_nofail(group_id, steps)
        state.failures += 1                                 # step(): lines 4-10
        state.level = state.safe_level
        if state.safe_counter < 0.2 * self.beta:
            state.a_level = self._level_down(state.a_level)
            state.level_downs += 1
        state.safe_counter = 0
        return transitions, state.level, self.beta

    def apply_failures_at_cycles(self, group_id: int,
                                 cycles: Sequence[int]) -> Tuple[int, int]:
        """Apply one whole *safe-level failure run* in a single vectorized call.

        ``cycles`` are the strictly increasing, non-negative cycle offsets
        (relative to the group's current state) of consecutive IRFailures
        under the *no-transition contract*: the first failure arrives before
        the next scheduled Algorithm-2 transition and every later one within
        ``beta`` cycles of its predecessor, so the whole run plays out on the
        failure branch alone (lines 4-10) — after the first failure the group
        sits at its safe level and each further failure merely pushes the
        next transition out.  Equivalent to ``advance_and_fail`` once per
        failure, but resolved in closed form over the failure-count
        thresholds with no per-event Python:

        * ``failures`` grows by ``len(cycles)``;
        * the a-level steps toward safe once per failure whose preceding
          failure-free gap is shorter than ``0.2 * beta`` — the downgrade
          count is one thresholded comparison over the gap array, and the
          resulting a-level is a single index walk up the table's booster
          levels (saturating at the ceiling, like repeated
          :meth:`_level_down`);
        * the level ends at the safe level with a zeroed safe counter.

        Returns ``(level, next_gap)`` — the level after the last failure and
        the distance from it to the next scheduled transition (always
        ``beta``).  Raises ``ValueError`` when the contract is violated (a
        transition would fire inside the run); the caller must split the
        batch at the first ``beta``-long gap.  The vectorized simulation
        engine drives this from its booster span kernel, one call per
        safe-level span; ``tests/test_core_ir_booster.py`` pins it to the
        looped per-cycle :meth:`step`.
        """
        state = self._groups[group_id]
        count = len(cycles)
        if count == 0:
            return state.level, self._transition_gap(state.safe_counter)
        beta = self.beta
        threshold = 0.2 * beta
        if count < 64:
            # Scalar path: typical safe runs hold a handful of failures, where
            # per-call numpy overhead would dominate the closed form.
            prev = -1
            downs = 0
            counter = state.safe_counter
            first_gap = self._transition_gap(counter)
            for cycle in cycles:
                cycle = int(cycle)
                gap = counter + cycle if prev < 0 else cycle - prev - 1
                if prev < 0:
                    if cycle < 0 or cycle >= first_gap:
                        raise ValueError(
                            "a scheduled transition fires inside the failure "
                            "run; split the batch at the first beta-long "
                            "failure-free gap" if cycle >= 0 else
                            "cycles must be strictly increasing non-negative "
                            "offsets")
                elif gap < 0:
                    raise ValueError(
                        "cycles must be strictly increasing non-negative "
                        "offsets")
                elif gap >= beta:
                    raise ValueError(
                        "a scheduled transition fires inside the failure run; "
                        "split the batch at the first beta-long failure-free "
                        "gap")
                if gap < threshold:
                    downs += 1
                prev = cycle
        else:
            offsets = np.asarray(cycles, dtype=np.int64)
            diffs = np.diff(offsets)
            if offsets[0] < 0 or (diffs.size and int(diffs.min()) <= 0):
                raise ValueError(
                    "cycles must be strictly increasing non-negative offsets")
            gaps = np.empty(offsets.size, dtype=np.int64)
            gaps[0] = state.safe_counter + int(offsets[0])
            gaps[1:] = diffs - 1
            if int(offsets[0]) >= self._transition_gap(state.safe_counter) or \
                    (diffs.size and int(diffs.max()) > self.beta):
                raise ValueError(
                    "a scheduled transition fires inside the failure run; "
                    "split the batch at the first beta-long failure-free gap")
            downs = int((gaps < threshold).sum())
        state.failures += count
        if downs:
            levels = self.table.booster_levels()        # sorted ascending
            try:
                index = levels.index(state.a_level)
            except ValueError:
                # Off-table a-level (hand-edited state): fall back to the
                # stepwise walk, which snaps onto the table immediately.
                for _ in range(downs):
                    state.a_level = self._level_down(state.a_level)
            else:
                state.a_level = levels[min(index + downs, len(levels) - 1)]
            state.level_downs += downs
        state.level = state.safe_level
        state.safe_counter = 0
        return state.level, self.beta

    def apply_failures(self, group_id: int, fail_cycles: Sequence[int],
                       total_cycles: int) -> List[Tuple[int, int]]:
        """Batch counterpart of per-cycle :meth:`step`: ``k`` failures plus the
        interleaved failure-free gaps, applied in closed form.

        ``fail_cycles`` are the strictly increasing cycle offsets (0-based,
        relative to the group's current state) at which an IRFailure occurs;
        every other cycle in ``[0, total_cycles)`` is failure-free.  Equivalent
        to ``total_cycles`` individual ``step`` calls with ``ir_failure=True``
        exactly at those offsets, but each gap is crossed with the closed-form
        fast-forward instead of cycle-by-cycle iteration.

        Returns the level-break list as ``(offset, level)`` pairs with the
        :meth:`advance_nofail` convention: offset ``k`` means the level applies
        from step ``k`` on (a failure at cycle ``c`` therefore contributes a
        break at ``c + 1``).

        This is the one-call form of the primitives the batched engine drives
        incrementally (:meth:`advance_to_transition` / :meth:`advance_and_fail`
        — the engine discovers each failure from the previous one's level
        breaks, so it cannot hand over the whole run up front); the property
        tests in ``tests/test_core_ir_booster.py`` pin all of them, and the
        looped per-cycle :meth:`step`, to the same state machine.
        """
        breaks: List[Tuple[int, int]] = []
        prev = 0
        for cycle in fail_cycles:
            cycle = int(cycle)
            if cycle < prev or cycle >= total_cycles:
                raise ValueError(
                    "fail_cycles must be strictly increasing offsets inside "
                    f"[0, {total_cycles}); got {cycle} after {prev - 1}")
            transitions, level, _ = self.advance_and_fail(group_id, cycle - prev)
            breaks.extend((prev + offset, lvl) for offset, lvl in transitions)
            breaks.append((cycle + 1, level))
            prev = cycle + 1
        transitions = self.advance_nofail(group_id, total_cycles - prev)
        breaks.extend((prev + offset, lvl) for offset, lvl in transitions)
        return breaks

    def _level_down(self, level: int) -> int:
        """More conservative for the *a-level*: in the paper's convention a
        "level down" after rapid failures means a less aggressive (higher Rtog)
        level, i.e. one step toward the safe level."""
        return self.table.level_above(level)

    def _level_up(self, level: int, safe_level: int) -> int:
        """More aggressive: one step toward lower Rtog levels (lower V / higher f)."""
        return self.table.level_below(level)

    # ------------------------------------------------------------------ #
    # V-f pair selection
    # ------------------------------------------------------------------ #
    def vf_pair(self, group_id: int) -> VFPair:
        """The V-f pair for the group's current level under the active mode."""
        state = self._groups[group_id]
        level = state.level if state.level in self.table.levels else 100
        return self.table.select_pair(level, self.mode)

    def safe_vf_pair(self, group_id: int) -> VFPair:
        state = self._groups[group_id]
        level = state.safe_level if state.safe_level in self.table.levels else 100
        return self.table.select_pair(level, self.mode)
