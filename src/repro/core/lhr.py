"""LHR: the differentiable lower-hamming-rate regularizer (paper Sec. 5.3).

HR of an integer code is a step function of the underlying floating-point
weight, so it cannot be back-propagated directly.  The paper's trick (Eq. 5) is
to interpolate between the hamming rates of the two nearest integer codes:

    low  = floor(w / s),   high = ceil(w / s),   p = w/s - low
    HR(w) = (1 - p) * HR[low] + p * HR[high]

which is piecewise-linear in ``w`` and therefore has a well-defined gradient
``(HR[high] - HR[low]) / s`` almost everywhere.  The per-network loss (Eq. 6)
is the sum over layers of the squared layer-average HR,

    L_HR = sum_i HR_mean(layer_i)^2 ,

which penalizes the layers with the *highest* HR hardest — exactly the
paper's stated goal of reducing HRmax, not only HRaverage.

Two interfaces are provided:

* pure-numpy helpers (:func:`interpolated_hamming_rate`,
  :func:`interpolated_hamming_rate_grad`) used by tests and by the PTQ methods;
* an autograd bridge (:func:`lhr_loss`, :class:`LHRRegularizer`) that plugs
  into the training loop of :mod:`repro.nn.training` as the ``regularizer``
  argument, mirroring the paper's one-line PyTorch integration
  ``loss += lambda * lhr_norm(model.parameters())``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..nn.layers import Conv2d, Linear, Module
from ..nn.tensor import Tensor
from .metrics import to_twos_complement_bits

__all__ = [
    "integer_hamming_table",
    "interpolated_hamming_rate",
    "interpolated_hamming_rate_grad",
    "layer_hamming_loss",
    "lhr_loss",
    "LHRRegularizer",
]


def integer_hamming_table(bits: int) -> np.ndarray:
    """HR of every representable ``bits``-bit two's-complement integer.

    Index ``i`` of the returned array corresponds to the integer
    ``i + qmin`` where ``qmin = -2**(bits-1)``; values are popcount / bits.
    """
    qmin = -(1 << (bits - 1))
    qmax = (1 << (bits - 1)) - 1
    codes = np.arange(qmin, qmax + 1)
    planes = to_twos_complement_bits(codes, bits)
    return planes.sum(axis=1) / bits


def _lookup(table: np.ndarray, codes: np.ndarray, bits: int) -> np.ndarray:
    qmin = -(1 << (bits - 1))
    return table[codes - qmin]


def interpolated_hamming_rate(weights: np.ndarray, scale: float, bits: int) -> np.ndarray:
    """Differentiable surrogate HR of floating-point ``weights`` (Eq. 5).

    Values whose quantized code would fall outside the representable range are
    clamped to the range edge (matching the quantizer's clipping behaviour).
    """
    table = integer_hamming_table(bits)
    qmin = -(1 << (bits - 1))
    qmax = (1 << (bits - 1)) - 1
    ratio = np.asarray(weights, dtype=np.float64) / scale
    ratio = np.clip(ratio, qmin, qmax)
    low = np.floor(ratio).astype(np.int64)
    high = np.ceil(ratio).astype(np.int64)
    p = ratio - low
    hr_low = _lookup(table, low, bits)
    hr_high = _lookup(table, high, bits)
    return (1.0 - p) * hr_low + p * hr_high


def interpolated_hamming_rate_grad(weights: np.ndarray, scale: float, bits: int) -> np.ndarray:
    """d(interpolated HR)/d(weight): the slope of the active interpolation segment."""
    table = integer_hamming_table(bits)
    qmin = -(1 << (bits - 1))
    qmax = (1 << (bits - 1)) - 1
    ratio = np.asarray(weights, dtype=np.float64) / scale
    inside = (ratio > qmin) & (ratio < qmax)
    ratio = np.clip(ratio, qmin, qmax)
    low = np.floor(ratio).astype(np.int64)
    high = np.ceil(ratio).astype(np.int64)
    hr_low = _lookup(table, low, bits)
    hr_high = _lookup(table, high, bits)
    grad = (hr_high - hr_low) / scale
    # Exactly-integer ratios sit at a kink; use the forward-difference slope so
    # the gradient still points toward a lower-HR neighbour, matching Fig. 7-(b).
    exact = (low == high) & inside
    if np.any(exact):
        next_code = np.clip(low + 1, qmin, qmax)
        grad = np.where(exact, (_lookup(table, next_code, bits) - hr_low) / scale, grad)
    return np.where(inside, grad, 0.0)


# --------------------------------------------------------------------------- #
# autograd bridge
# --------------------------------------------------------------------------- #
def layer_hamming_loss(weight: Tensor, scale: float, bits: int) -> Tensor:
    """Mean interpolated HR of one layer as an autograd scalar."""
    hr = interpolated_hamming_rate(weight.data, scale, bits)
    grad_table = interpolated_hamming_rate_grad(weight.data, scale, bits)
    value = float(hr.mean())
    denominator = max(1, weight.size)

    def backward(grad: np.ndarray) -> None:
        weight._accumulate(np.asarray(grad) * grad_table / denominator)

    return Tensor._make(np.asarray(value), (weight,), backward)


def lhr_loss(model: Module, scales: Dict[str, float], bits: int,
             lam: float = 1.0) -> Tensor:
    """``lambda * sum_i HR_mean(layer_i)^2`` over the model's weight layers (Eq. 6).

    ``scales`` maps layer names (as produced by ``Module.weight_layers``) to
    their quantization scales; layers missing from the map are skipped, which
    lets callers exclude e.g. the final classifier.
    """
    total: Optional[Tensor] = None
    for name, layer in model.weight_layers():
        if name not in scales:
            continue
        layer_hr = layer_hamming_loss(layer.weight, scales[name], bits)
        term = layer_hr * layer_hr
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total * lam


@dataclass
class LHRRegularizer:
    """Callable regularizer bundling scales/bits/lambda, for the training loops.

    Example
    -------
    >>> reg = LHRRegularizer(scales=scales, bits=8, lam=0.05)
    >>> train_classifier(model, dataset, optimizer, regularizer=reg)
    """

    scales: Dict[str, float]
    bits: int = 8
    lam: float = 0.05

    def __call__(self, model: Module) -> Tensor:
        return lhr_loss(model, self.scales, self.bits, self.lam)

    def refresh_scales(self, model: Module, quantile: float = 1.0) -> None:
        """Recompute per-layer scales from the current weights (symmetric max-abs)."""
        from ..quant.quantizer import symmetric_scale
        for name, layer in model.weight_layers():
            self.scales[name] = symmetric_scale(layer.weight.data, self.bits, quantile)
