"""Architecture-level IR-drop metrics: hamming value (HM), hamming rate (HR) and
the instantaneous toggle rate (Rtog).

These implement Equations 1, 3 and 4 of the paper.

*In-memory data* ``W`` are the quantized weights stored in the SRAM cells of a
PIM bank; each of the ``n`` cells holds a ``q``-bit two's-complement value.
*Input data* ``I`` are the activation bits streamed bit-serially on the word
lines, one bit per cell per cycle.

* ``HM({W_n})``  — total number of 1-bits across all weight codes (Eq. 3).
* ``HR({W_n})``  — ``HM / (n*q)``, the average hamming rate; depends only on
  the in-memory data, so it can be computed offline (Eq. 3).
* ``Rtog``        — per-cycle toggle rate: the fraction of (cell, bit-plane)
  positions whose weight bit is 1 *and* whose input bit toggled between cycle
  ``t`` and ``t+1`` (Eq. 1).  Equation 4 shows ``sup(Rtog) = HR``, which is the
  property IR-Booster exploits to choose safe V-f levels offline.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "to_twos_complement_bits",
    "hamming_value",
    "hamming_rate",
    "rtog",
    "rtog_trace",
    "rtog_upper_bound",
    "weighted_hamming_rate",
]


def to_twos_complement_bits(values: np.ndarray, bits: int) -> np.ndarray:
    """Expand integer ``values`` into their ``bits``-bit two's-complement planes.

    Returns an array of shape ``values.shape + (bits,)`` with the least
    significant bit at index 0.  Values outside the representable range raise
    ``ValueError`` — silently wrapping would corrupt HR statistics.
    """
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        if not np.allclose(values, np.round(values)):
            raise ValueError("weight codes must be integers before bit expansion")
        values = np.round(values).astype(np.int64)
    low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if values.size and (values.min() < low or values.max() > high):
        raise ValueError(
            f"values outside the {bits}-bit two's complement range [{low}, {high}]")
    unsigned = np.where(values < 0, values + (1 << bits), values).astype(np.uint64)
    planes = ((unsigned[..., None] >> np.arange(bits, dtype=np.uint64)) & 1).astype(np.uint8)
    return planes


def hamming_value(values: np.ndarray, bits: int) -> int:
    """``HM({W_n})``: the total count of 1-bits across all weight codes (Eq. 3)."""
    return int(to_twos_complement_bits(values, bits).sum())


def hamming_rate(values: np.ndarray, bits: int) -> float:
    """``HR({W_n}) = HM / (n*q)``: average fraction of 1-bits per weight bit (Eq. 3)."""
    values = np.asarray(values)
    if values.size == 0:
        return 0.0
    return hamming_value(values, bits) / (values.size * bits)


def weighted_hamming_rate(groups: Sequence[np.ndarray], bits: int,
                          weights: Optional[Sequence[float]] = None) -> float:
    """HR of several weight groups combined, optionally weighted (e.g. by MACs).

    The paper's "weighted HR of the network" (Sec. 5.4) weights each layer by its
    contribution to the total computation; with ``weights=None`` the groups are
    weighted by their element counts (equivalent to concatenating them).
    """
    if not groups:
        return 0.0
    if weights is None:
        weights = [float(np.asarray(g).size) for g in groups]
    weights = np.asarray(list(weights), dtype=np.float64)
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    total = weights.sum()
    if total == 0:
        return 0.0
    rates = np.array([hamming_rate(np.asarray(g), bits) for g in groups])
    return float((rates * weights).sum() / total)


def rtog(weight_codes: np.ndarray, input_bits_t: np.ndarray,
         input_bits_next: np.ndarray, bits: int) -> float:
    """Instantaneous toggle rate of a PIM bank at one cycle boundary (Eq. 1).

    Parameters
    ----------
    weight_codes:
        Integer weight codes of the ``n`` cells in the bank (any shape, flattened).
    input_bits_t, input_bits_next:
        Binary input bit per cell at cycle ``t`` and ``t+1`` (same shape as
        ``weight_codes`` after flattening).
    bits:
        Weight bit-width ``q``.
    """
    codes = np.asarray(weight_codes).reshape(-1)
    it = np.asarray(input_bits_t).reshape(-1).astype(np.uint8)
    itn = np.asarray(input_bits_next).reshape(-1).astype(np.uint8)
    if it.shape != codes.shape or itn.shape != codes.shape:
        raise ValueError("input bit vectors must match the number of weight cells")
    if codes.size == 0:
        return 0.0
    planes = to_twos_complement_bits(codes, bits)  # (n, q)
    toggles = (it ^ itn).astype(np.uint8)  # (n,)
    active = planes * toggles[:, None]
    return float(active.sum()) / (codes.size * bits)


def rtog_trace(weight_codes: np.ndarray, input_bit_stream: np.ndarray, bits: int) -> np.ndarray:
    """Per-cycle Rtog for a whole bit-serial input stream.

    ``input_bit_stream`` has shape (cycles, n): the bit presented to each of the
    ``n`` cells at every cycle.  Returns an array of length ``cycles - 1`` with
    the toggle rate at each cycle boundary.
    """
    codes = np.asarray(weight_codes).reshape(-1)
    stream = np.asarray(input_bit_stream).astype(np.uint8)
    if stream.ndim != 2 or stream.shape[1] != codes.size:
        raise ValueError("input_bit_stream must have shape (cycles, n_cells)")
    if stream.shape[0] < 2:
        return np.zeros(0)
    planes = to_twos_complement_bits(codes, bits)  # (n, q)
    weight_bit_count = planes.sum(axis=1).astype(np.float64)  # ones per cell
    toggles = (stream[1:] ^ stream[:-1]).astype(np.float64)  # (cycles-1, n)
    return toggles @ weight_bit_count / (codes.size * bits)


def rtog_upper_bound(weight_codes: np.ndarray, bits: int) -> float:
    """``sup(Rtog)`` over all possible input streams, which equals HR (Eq. 4)."""
    return hamming_rate(weight_codes, bits)
