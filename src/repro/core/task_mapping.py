"""Task-to-macro mapping strategies, including the HR-aware simulated annealer.

Once an operator has been split into macro-sized tiles (tasks), the compiler
must choose which physical macro runs each tile.  Because all macros of a group
share one supply and one clock, and all tiles of one operator (a logical
MacroSet) must run at the same frequency, the mapping determines:

* each group's worst HR (HRG) and therefore its safe V-f level,
* how much a failure in one tile stalls tiles of other operators, and
* consequently the chip's power and effective throughput.

Four strategies are provided, matching Fig. 21:

* **sequential** — tiles fill macros in task order (the traditional approach);
* **zigzag**     — tiles fill macros alternating direction per group (TANGRAM-style);
* **random**     — a seeded random permutation;
* **hr_aware**   — Algorithm 3: simulated annealing over pairwise swaps (with an
  "empty macro" option) scored by a lightweight power/latency evaluator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..pim.config import ChipConfig
from ..pim.dataflow import Task
from ..power.energy import EnergyModel
from ..power.vf_table import VFTable
from .ir_booster import BoosterMode, safe_level_from_hr

__all__ = [
    "TaskMapping",
    "MappingEvaluation",
    "MappingEvaluator",
    "sequential_mapping",
    "zigzag_mapping",
    "random_mapping",
    "hr_aware_mapping",
    "AnnealingConfig",
    "MAPPING_STRATEGIES",
    "build_mapping",
]


@dataclass
class TaskMapping:
    """Assignment of task index -> macro index (None = task unassigned)."""

    chip: ChipConfig
    assignment: Dict[int, int] = field(default_factory=dict)
    strategy: str = "sequential"

    def macro_of(self, task_index: int) -> Optional[int]:
        return self.assignment.get(task_index)

    def tasks_on_macro(self, macro_index: int) -> List[int]:
        return [t for t, m in self.assignment.items() if m == macro_index]

    def used_macros(self) -> List[int]:
        return sorted(set(self.assignment.values()))

    def group_tasks(self, tasks: Sequence[Task]) -> Dict[int, List[Task]]:
        """Tasks per group id."""
        groups: Dict[int, List[Task]] = {}
        for task_index, macro_index in self.assignment.items():
            group_id, _ = self.chip.macro_location(macro_index)
            groups.setdefault(group_id, []).append(tasks[task_index])
        return groups

    def validate(self, tasks: Sequence[Task]) -> None:
        macros_seen = set()
        for task_index, macro_index in self.assignment.items():
            if not 0 <= task_index < len(tasks):
                raise ValueError(f"task index {task_index} out of range")
            if not 0 <= macro_index < self.chip.total_macros:
                raise ValueError(f"macro index {macro_index} out of range")
            if macro_index in macros_seen:
                raise ValueError(f"macro {macro_index} assigned more than one task")
            macros_seen.add(macro_index)


@dataclass
class MappingEvaluation:
    """Score breakdown produced by the lightweight mapping evaluator."""

    power_mw: float
    latency_cycles: float
    effective_tops: float
    group_levels: Dict[int, int]
    score: float


class MappingEvaluator:
    """The paper's lightweight mapping simulator (Sec. 5.6).

    For a candidate mapping it derives each group's safe level from the worst
    task HR in the group, picks the mode's V-f pair, estimates per-macro power
    from the task activity, and estimates end-to-end latency from the slowest
    group each operator (Set) touches plus an interference penalty when tasks
    from different operators with very different HR share a group.
    A 100-step input flip profile sampled from a normal distribution modulates
    the activity, as described in the paper.
    """

    def __init__(self, chip: ChipConfig, table: VFTable,
                 energy_model: Optional[EnergyModel] = None,
                 mode: str = BoosterMode.LOW_POWER,
                 flip_profile_steps: int = 100, seed: int = 0) -> None:
        self.chip = chip
        self.table = table
        self.energy_model = energy_model or EnergyModel(
            nominal_voltage=chip.nominal_voltage,
            nominal_frequency=chip.nominal_frequency)
        self.mode = mode
        rng = np.random.default_rng(seed)
        # Mean input flip factor (fraction of HR realized as Rtog), clipped to [0.2, 1].
        profile = np.clip(rng.normal(0.6, 0.15, size=flip_profile_steps), 0.2, 1.0)
        self.flip_factor = float(profile.mean())

    def evaluate(self, mapping: TaskMapping, tasks: Sequence[Task]) -> MappingEvaluation:
        group_tasks = mapping.group_tasks(tasks)
        if not group_tasks:
            return MappingEvaluation(power_mw=0.0, latency_cycles=0.0, effective_tops=0.0,
                                     group_levels={}, score=0.0)
        group_levels: Dict[int, int] = {}
        group_pairs = {}
        total_power = 0.0
        for group_id, assigned in group_tasks.items():
            worst_hr = max(task.hamming_rate for task in assigned)
            input_determined = any(task.input_determined for task in assigned)
            level = safe_level_from_hr(worst_hr, self.table, input_determined)
            pair = self.table.select_pair(level, self.mode)
            group_levels[group_id] = level
            group_pairs[group_id] = pair
            for task in assigned:
                activity = task.hamming_rate * self.flip_factor
                total_power += self.energy_model.macro_power_mw(
                    pair.voltage, pair.frequency, activity)

        # Latency: every operator (Set) runs at the slowest frequency among the
        # groups hosting its tiles; sets sharing a group interfere, so a group
        # hosting k different sets stretches each by the HR spread it causes.
        set_latency: Dict[int, float] = {}
        group_sets: Dict[int, set] = {}
        for group_id, assigned in group_tasks.items():
            group_sets[group_id] = {task.set_id for task in assigned}
        for group_id, assigned in group_tasks.items():
            pair = group_pairs[group_id]
            hr_values = [task.hamming_rate for task in assigned]
            spread_penalty = 1.0 + (max(hr_values) - min(hr_values))
            sharing_penalty = 1.0 + 0.15 * (len(group_sets[group_id]) - 1)
            for task in assigned:
                waves = max(1, task.codes.shape[0])
                cycles = waves * task.bits * spread_penalty * sharing_penalty
                time = cycles / pair.frequency
                set_latency[task.set_id] = max(set_latency.get(task.set_id, 0.0), time)
        latency_seconds = sum(set_latency.values())
        latency_cycles = latency_seconds * self.chip.nominal_frequency

        total_macs = sum(task.macs_per_wave * max(1, task.codes.shape[0])
                         for task in tasks if mapping.macro_of(task.task_id) is not None)
        effective_tops = 2.0 * total_macs / max(latency_seconds, 1e-18) / 1e12

        if self.mode == BoosterMode.LOW_POWER:
            score = total_power
        else:
            score = -effective_tops
        return MappingEvaluation(power_mw=total_power, latency_cycles=latency_cycles,
                                 effective_tops=effective_tops,
                                 group_levels=group_levels, score=score)


# --------------------------------------------------------------------------- #
# baseline strategies
# --------------------------------------------------------------------------- #
def _check_capacity(tasks: Sequence[Task], chip: ChipConfig) -> None:
    if len(tasks) > chip.total_macros:
        raise ValueError(
            f"{len(tasks)} tasks exceed the chip's {chip.total_macros} macros; "
            "split the workload across invocations")


def sequential_mapping(tasks: Sequence[Task], chip: ChipConfig) -> TaskMapping:
    """Fill macros 0, 1, 2, ... in task order."""
    _check_capacity(tasks, chip)
    assignment = {i: i for i in range(len(tasks))}
    return TaskMapping(chip=chip, assignment=assignment, strategy="sequential")


def zigzag_mapping(tasks: Sequence[Task], chip: ChipConfig) -> TaskMapping:
    """Fill groups alternately forward/backward (TANGRAM-style zigzag order)."""
    _check_capacity(tasks, chip)
    order: List[int] = []
    per_group = chip.group.macros
    for group in range(chip.groups):
        macros = [chip.macro_index(group, m) for m in range(per_group)]
        if group % 2:
            macros = macros[::-1]
        order.extend(macros)
    assignment = {i: order[i] for i in range(len(tasks))}
    return TaskMapping(chip=chip, assignment=assignment, strategy="zigzag")


def random_mapping(tasks: Sequence[Task], chip: ChipConfig, seed: int = 0) -> TaskMapping:
    """Seeded random permutation of macros."""
    _check_capacity(tasks, chip)
    rng = np.random.default_rng(seed)
    order = rng.permutation(chip.total_macros)
    assignment = {i: int(order[i]) for i in range(len(tasks))}
    return TaskMapping(chip=chip, assignment=assignment, strategy="random")


# --------------------------------------------------------------------------- #
# Algorithm 3: HR-aware simulated annealing
# --------------------------------------------------------------------------- #
@dataclass
class AnnealingConfig:
    """Simulated-annealing parameters (paper Sec. 5.6)."""

    steps: int = 500
    initial_temperature: float = 1.0
    cooling: float = 0.95
    early_stop_rejections: int = 10
    seed: int = 0


def hr_aware_mapping(tasks: Sequence[Task], chip: ChipConfig,
                     evaluator: MappingEvaluator,
                     config: Optional[AnnealingConfig] = None,
                     initial: Optional[TaskMapping] = None) -> TaskMapping:
    """Algorithm 3: anneal pairwise swaps (including swaps with empty macros)."""
    _check_capacity(tasks, chip)
    config = config or AnnealingConfig()
    rng = np.random.default_rng(config.seed)

    current = initial or sequential_mapping(tasks, chip)
    current = TaskMapping(chip=chip, assignment=dict(current.assignment), strategy="hr_aware")
    best = TaskMapping(chip=chip, assignment=dict(current.assignment), strategy="hr_aware")
    score_initial = evaluator.evaluate(current, tasks).score
    score_current = score_initial
    score_best = score_initial
    normalizer = abs(score_initial) if abs(score_initial) > 1e-12 else 1.0

    temperature = config.initial_temperature
    consecutive_rejections = 0

    for _ in range(config.steps):
        temperature *= config.cooling
        candidate = _switch(current, tasks, chip, rng)
        score_new = evaluator.evaluate(candidate, tasks).score
        delta = score_new - score_current
        accept = delta < 0 or rng.random() < math.exp(
            -delta / max(0.5 * normalizer * temperature, 1e-12))
        if accept:
            consecutive_rejections = 0
            current = candidate
            score_current = score_new
            if score_new < score_best:
                best = TaskMapping(chip=chip, assignment=dict(candidate.assignment),
                                   strategy="hr_aware")
                score_best = score_new
        else:
            consecutive_rejections += 1
            if consecutive_rejections >= config.early_stop_rejections:
                break
    return best


def _switch(mapping: TaskMapping, tasks: Sequence[Task], chip: ChipConfig,
            rng: np.random.Generator) -> TaskMapping:
    """The Algorithm-3 transition: swap the macros of two tasks from different
    groups, or move a task onto an empty macro ("empty macro" option)."""
    assignment = dict(mapping.assignment)
    task_indices = list(assignment.keys())
    if not task_indices:
        return TaskMapping(chip=chip, assignment=assignment, strategy=mapping.strategy)
    used = set(assignment.values())
    empty_macros = [m for m in range(chip.total_macros) if m not in used]

    first = int(rng.choice(task_indices))
    use_empty = empty_macros and rng.random() < 0.3
    if use_empty:
        assignment[first] = int(rng.choice(empty_macros))
    else:
        # Prefer a partner mapped to a different group.
        first_group, _ = chip.macro_location(assignment[first])
        partners = [t for t in task_indices
                    if chip.macro_location(assignment[t])[0] != first_group]
        second = int(rng.choice(partners)) if partners else int(rng.choice(task_indices))
        assignment[first], assignment[second] = assignment[second], assignment[first]
    return TaskMapping(chip=chip, assignment=assignment, strategy=mapping.strategy)


#: Name -> strategy callable registry used by the compiler and benchmarks.
MAPPING_STRATEGIES = ("sequential", "zigzag", "random", "hr_aware")


def build_mapping(strategy: str, tasks: Sequence[Task], chip: ChipConfig,
                  evaluator: Optional[MappingEvaluator] = None,
                  annealing: Optional[AnnealingConfig] = None,
                  seed: int = 0) -> TaskMapping:
    """Dispatch helper used by the compiler."""
    if strategy == "sequential":
        return sequential_mapping(tasks, chip)
    if strategy == "zigzag":
        return zigzag_mapping(tasks, chip)
    if strategy == "random":
        return random_mapping(tasks, chip, seed=seed)
    if strategy == "hr_aware":
        if evaluator is None:
            raise ValueError("hr_aware mapping requires a MappingEvaluator")
        return hr_aware_mapping(tasks, chip, evaluator, annealing)
    raise ValueError(f"unknown mapping strategy {strategy!r}; known: {MAPPING_STRATEGIES}")
