"""WDS: weight distribution shift (paper Sec. 5.4, Algorithm 1).

Two's-complement encoding makes small *negative* integers expensive in hamming
terms (e.g. -1 = 0b11111111 has HR 1.0 for INT8) while small positive integers
are cheap.  Since trained weights are roughly zero-centred, adding a small
positive constant ``delta`` to every weight moves the mass of the distribution
into the cheap positive codes and lowers HR.  The numerical error is exact and
linear — ``(W + delta) @ x = W @ x + delta * sum(x)`` — so it is corrected after
the matmul by subtracting ``delta * sum(input)`` (the shift-compensator
hardware of Sec. 5.4.2).

Key behaviours reproduced here:

* weights that would overflow INT_MAX after the shift are clamped (Alg. 1
  line 4), introducing a small, measurable numerical error (<1 % of weights in
  the paper's profiling);
* ``delta`` must be a power of two so the compensator can use a bit-shift
  multiplier; only deltas aligned with the quantization grid's low-HR points
  (8/16 for INT8, 2/4 for INT4) actually reduce HR (Fig. 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .metrics import hamming_rate

__all__ = [
    "int_range",
    "shift_weights",
    "shifted_hamming_rate",
    "overflow_fraction",
    "shift_compensation",
    "matmul_with_wds",
    "recommended_deltas",
    "choose_delta",
    "WDSPlan",
    "plan_wds",
]


def int_range(bits: int) -> Tuple[int, int]:
    """Representable two's-complement range [qmin, qmax] for ``bits`` bits."""
    return -(1 << (bits - 1)), (1 << (bits - 1)) - 1


def shift_weights(codes: np.ndarray, delta: int, bits: int) -> np.ndarray:
    """Apply the offline preprocessing step of Algorithm 1 (lines 3-5).

    Adds ``delta`` to every integer weight code and clamps at INT_MAX so the
    shift can never overflow into the (high-HR, wrong-valued) negative codes.
    """
    if delta < 0:
        raise ValueError("WDS shifts the distribution toward positive values; delta >= 0")
    codes = np.asarray(codes)
    _, qmax = int_range(bits)
    return np.minimum(codes.astype(np.int64) + delta, qmax)


def shifted_hamming_rate(codes: np.ndarray, delta: int, bits: int) -> float:
    """HR of the weights after applying WDS with the given ``delta``."""
    return hamming_rate(shift_weights(codes, delta, bits), bits)


def overflow_fraction(codes: np.ndarray, delta: int, bits: int) -> float:
    """Fraction of weights clamped by the shift (the paper reports < 1 %)."""
    codes = np.asarray(codes)
    if codes.size == 0:
        return 0.0
    _, qmax = int_range(bits)
    return float(np.count_nonzero(codes.astype(np.int64) + delta > qmax)) / codes.size


def shift_compensation(output: np.ndarray, input_values: np.ndarray, delta: int) -> np.ndarray:
    """Apply the correction of Algorithm 1 line 9: ``output - delta * sum(input)``.

    ``input_values`` may be a vector (one input column) or a matrix whose rows
    are summed per output column; the correction broadcasts across the output's
    leading (output-channel) dimension because every weight row received the
    same ``delta``.
    """
    output = np.asarray(output, dtype=np.float64)
    input_values = np.asarray(input_values, dtype=np.float64)
    if input_values.ndim == 1:
        correction = delta * input_values.sum()
    else:
        correction = delta * input_values.sum(axis=0)
    return output - correction


def matmul_with_wds(weight_codes: np.ndarray, input_values: np.ndarray,
                    delta: int, bits: int) -> np.ndarray:
    """Full Algorithm-1 pipeline: shift, matmul with shifted weights, compensate.

    ``weight_codes``: (out_features, in_features) integer codes;
    ``input_values``: (in_features,) or (in_features, batch).
    When no weight is clamped the result is bit-exact with the unshifted matmul.
    """
    shifted = shift_weights(weight_codes, delta, bits).astype(np.float64)
    raw = shifted @ np.asarray(input_values, dtype=np.float64)
    return shift_compensation(raw, input_values, delta)


def recommended_deltas(bits: int) -> List[int]:
    """Power-of-two deltas that align with the low-HR integer codes (Sec. 5.4.1)."""
    if bits >= 8:
        return [bits, 2 * bits]          # 8 and 16 for INT8
    return [max(1, bits // 2), bits]      # 2 and 4 for INT4


def choose_delta(codes: np.ndarray, bits: int,
                 candidates: Optional[Sequence[int]] = None,
                 max_overflow: float = 0.05) -> int:
    """Pick the candidate ``delta`` with the lowest post-shift HR.

    Candidates default to the recommended power-of-two values plus zero (no
    shift).  A candidate whose overflow fraction exceeds ``max_overflow`` is
    rejected, protecting accuracy on layers with wide weight distributions.
    """
    codes = np.asarray(codes)
    if candidates is None:
        candidates = [0] + recommended_deltas(bits)
    best_delta, best_hr = 0, hamming_rate(codes, bits)
    for delta in candidates:
        if delta == 0:
            continue
        if overflow_fraction(codes, delta, bits) > max_overflow:
            continue
        hr = shifted_hamming_rate(codes, delta, bits)
        if hr < best_hr:
            best_delta, best_hr = delta, hr
    return best_delta


@dataclass
class WDSPlan:
    """Per-layer WDS decisions produced by the compiler (Sec. 5.2.1 item 2)."""

    bits: int
    deltas: Dict[str, int] = field(default_factory=dict)
    hr_before: Dict[str, float] = field(default_factory=dict)
    hr_after: Dict[str, float] = field(default_factory=dict)
    overflow: Dict[str, float] = field(default_factory=dict)

    def delta_for(self, layer_name: str) -> int:
        return self.deltas.get(layer_name, 0)

    @property
    def mean_hr_before(self) -> float:
        return float(np.mean(list(self.hr_before.values()))) if self.hr_before else 0.0

    @property
    def mean_hr_after(self) -> float:
        return float(np.mean(list(self.hr_after.values()))) if self.hr_after else 0.0

    @property
    def max_hr_after(self) -> float:
        return float(np.max(list(self.hr_after.values()))) if self.hr_after else 0.0


def plan_wds(layer_codes: Dict[str, np.ndarray], bits: int,
             delta: Optional[int] = None, max_overflow: float = 0.05) -> WDSPlan:
    """Build a :class:`WDSPlan` for a whole network.

    ``delta=None`` selects the best recommended delta per layer (the compiler's
    default behaviour); an explicit ``delta`` applies the same user-specified
    value everywhere, as allowed by the paper's interface description.
    """
    plan = WDSPlan(bits=bits)
    for name, codes in layer_codes.items():
        plan.hr_before[name] = hamming_rate(codes, bits)
        chosen = choose_delta(codes, bits, max_overflow=max_overflow) if delta is None \
            else delta
        plan.deltas[name] = chosen
        plan.hr_after[name] = shifted_hamming_rate(codes, chosen, bits)
        plan.overflow[name] = overflow_fraction(codes, chosen, bits)
    return plan
