"""Scaled-down model zoo matching the six workloads in the AIM evaluation."""

from .gpt2 import GPT2Tiny, gpt2
from .llama import LlamaTiny, RMSNorm, llama
from .mobilenet import InvertedResidual, MobileNetV2, mobilenet_v2
from .registry import (
    TASK_CLASSIFICATION,
    TASK_DETECTION,
    TASK_LANGUAGE_MODELING,
    ModelSpec,
    build_dataset,
    build_model,
    get_model_spec,
    list_models,
)
from .resnet import BasicBlock, ResNet, resnet18
from .vit import PatchEmbedding, VisionTransformer, vit
from .yolo import YOLOv5Tiny, yolov5

__all__ = [
    "ResNet", "BasicBlock", "resnet18",
    "MobileNetV2", "InvertedResidual", "mobilenet_v2",
    "YOLOv5Tiny", "yolov5",
    "VisionTransformer", "PatchEmbedding", "vit",
    "GPT2Tiny", "gpt2",
    "LlamaTiny", "RMSNorm", "llama",
    "ModelSpec", "get_model_spec", "list_models", "build_model", "build_dataset",
    "TASK_CLASSIFICATION", "TASK_DETECTION", "TASK_LANGUAGE_MODELING",
]
