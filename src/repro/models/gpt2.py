"""Scaled-down GPT-2 style decoder-only language model.

Learned positional embeddings, post-embedding dropout, causal pre-norm
transformer blocks, and a tied-free linear LM head.  The model trains on the
Markov-chain Wikitext stand-in; perplexity relative to its own float baseline
is the quantity Table 3 / Fig. 13 track.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Sequential,
    TransformerBlock,
)
from ..nn.tensor import Tensor


class GPT2Tiny(Module):
    """Decoder-only transformer with learned positional embeddings."""

    def __init__(self, vocab_size: int = 64, max_seq_len: int = 64, dim: int = 32,
                 depth: int = 3, num_heads: int = 4, dropout: float = 0.0,
                 seed: int = 14) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.max_seq_len = max_seq_len
        self.token_embed = Embedding(vocab_size, dim, rng=rng)
        self.pos_embed = Embedding(max_seq_len, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.blocks = Sequential(*[
            TransformerBlock(dim, num_heads, mlp_ratio=2.0, causal=True,
                             dropout=dropout, rng=rng)
            for _ in range(depth)
        ])
        self.norm = LayerNorm(dim)
        self.lm_head = Linear(dim, vocab_size, bias=False, rng=rng)

    def forward(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        seq_len = tokens.shape[1]
        if seq_len > self.max_seq_len:
            raise ValueError(f"sequence length {seq_len} exceeds max {self.max_seq_len}")
        positions = np.arange(seq_len)
        x = self.token_embed(tokens) + self.pos_embed(positions)
        x = self.dropout(x)
        x = self.blocks(x)
        x = self.norm(x)
        return self.lm_head(x)


def gpt2(vocab_size: int = 64, dim: int = 32, depth: int = 3, seed: int = 14) -> GPT2Tiny:
    """Build the scaled-down GPT-2 used throughout the reproduction."""
    return GPT2Tiny(vocab_size=vocab_size, dim=dim, depth=depth, seed=seed)
