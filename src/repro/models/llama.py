"""Scaled-down Llama-3-style decoder-only language model.

Keeps the architectural markers that distinguish Llama from GPT-2 in the
paper's workload mix: RMSNorm instead of LayerNorm, rotary position embeddings
(RoPE) instead of learned positions, and SwiGLU gated MLPs.  Like the GPT-2
stand-in it trains on the synthetic Wikitext dataset and is evaluated by
perplexity relative to its own float baseline.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..nn import Embedding, Linear, Module, Parameter, Sequential
from ..nn.attention import GatedFeedForward
from ..nn.tensor import Tensor


class RMSNorm(Module):
    """Root-mean-square layer normalization (no mean subtraction, no bias)."""

    def __init__(self, dim: int, eps: float = 1e-6) -> None:
        super().__init__()
        self.eps = eps
        self.weight = Parameter(np.ones(dim))

    def forward(self, x: Tensor) -> Tensor:
        ms = (x * x).mean(axis=-1, keepdims=True)
        return x * ((ms + self.eps) ** -0.5) * self.weight


def rotary_embedding(seq_len: int, head_dim: int, base: float = 10000.0) -> tuple:
    """Precompute cos/sin tables for rotary position embeddings."""
    half = head_dim // 2
    freqs = 1.0 / (base ** (np.arange(half) / half))
    angles = np.outer(np.arange(seq_len), freqs)  # (T, half)
    return np.cos(angles), np.sin(angles)


def apply_rope(x: Tensor, cos: np.ndarray, sin: np.ndarray) -> Tensor:
    """Apply rotary embedding to ``x`` of shape (B, H, T, Dh)."""
    head_dim = x.shape[-1]
    half = head_dim // 2
    x1 = x[..., :half]
    x2 = x[..., half:]
    cos_t = Tensor(cos[None, None, :, :])
    sin_t = Tensor(sin[None, None, :, :])
    rotated_first = x1 * cos_t - x2 * sin_t
    rotated_second = x1 * sin_t + x2 * cos_t
    from ..nn.tensor import concatenate
    return concatenate([rotated_first, rotated_second], axis=-1)


class LlamaAttention(Module):
    """Causal self-attention with rotary embeddings (no bias terms)."""

    def __init__(self, dim: int, num_heads: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if dim % num_heads:
            raise ValueError("dim must be divisible by num_heads")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, dim, bias=False, rng=rng)
        self.k_proj = Linear(dim, dim, bias=False, rng=rng)
        self.v_proj = Linear(dim, dim, bias=False, rng=rng)
        self.o_proj = Linear(dim, dim, bias=False, rng=rng)
        self.operator_kinds = {
            "q_proj": "qkv", "k_proj": "qkv", "v_proj": "qkv",
            "qk_t": "qk_t", "sv": "sv", "o_proj": "proj",
        }

    def forward(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        cos, sin = rotary_embedding(seq, self.head_dim)

        def split(t: Tensor) -> Tensor:
            return t.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

        q = apply_rope(split(self.q_proj(x)), cos, sin)
        k = apply_rope(split(self.k_proj(x)), cos, sin)
        v = split(self.v_proj(x))

        scores = q.matmul(k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(self.head_dim))
        causal_mask = np.triu(np.full((seq, seq), -1e9), k=1)
        scores = scores + Tensor(causal_mask)
        attn = scores.softmax(axis=-1)
        context = attn.matmul(v).transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.o_proj(context)


class LlamaBlock(Module):
    """Pre-RMSNorm decoder block with SwiGLU MLP."""

    def __init__(self, dim: int, num_heads: int, mlp_ratio: float = 2.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.attn_norm = RMSNorm(dim)
        self.attn = LlamaAttention(dim, num_heads, rng=rng)
        self.mlp_norm = RMSNorm(dim)
        self.mlp = GatedFeedForward(dim, int(dim * mlp_ratio), rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.attn_norm(x))
        x = x + self.mlp(self.mlp_norm(x))
        return x


class LlamaTiny(Module):
    """Decoder-only Llama-style language model."""

    def __init__(self, vocab_size: int = 64, dim: int = 32, depth: int = 3,
                 num_heads: int = 4, seed: int = 15) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.vocab_size = vocab_size
        self.token_embed = Embedding(vocab_size, dim, rng=rng)
        self.blocks = Sequential(*[
            LlamaBlock(dim, num_heads, rng=rng) for _ in range(depth)
        ])
        self.norm = RMSNorm(dim)
        self.lm_head = Linear(dim, vocab_size, bias=False, rng=rng)

    def forward(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim == 1:
            tokens = tokens[None, :]
        x = self.token_embed(tokens)
        x = self.blocks(x)
        x = self.norm(x)
        return self.lm_head(x)


def llama(vocab_size: int = 64, dim: int = 32, depth: int = 3, seed: int = 15) -> LlamaTiny:
    """Build the scaled-down Llama-3.2 stand-in used throughout the reproduction."""
    return LlamaTiny(vocab_size=vocab_size, dim=dim, depth=depth, seed=seed)
