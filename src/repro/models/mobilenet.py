"""Scaled-down MobileNetV2 (Sandler et al.) for the AIM HR experiments.

Keeps the inverted-residual structure (pointwise expansion → depthwise 3x3 →
pointwise projection with a residual when shapes match), which is what gives
MobileNet its characteristic per-layer HR profile: many small pointwise layers
whose weights dominate the in-memory data of the PIM macros.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..nn import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    Module,
    ReLU,
    Sequential,
)
from ..nn.tensor import Tensor


class InvertedResidual(Module):
    """MobileNetV2 inverted residual block."""

    def __init__(self, in_channels: int, out_channels: int, stride: int,
                 expand_ratio: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        hidden = in_channels * expand_ratio
        self.use_residual = stride == 1 and in_channels == out_channels

        layers: List[Module] = []
        if expand_ratio != 1:
            layers += [
                Conv2d(in_channels, hidden, 1, bias=False, rng=rng),
                BatchNorm2d(hidden),
                ReLU(),
            ]
        layers += [
            Conv2d(hidden, hidden, 3, stride=stride, padding=1, groups=hidden,
                   bias=False, rng=rng),
            BatchNorm2d(hidden),
            ReLU(),
            Conv2d(hidden, out_channels, 1, bias=False, rng=rng),
            BatchNorm2d(out_channels),
        ]
        self.block = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        out = self.block(x)
        if self.use_residual:
            return out + x
        return out


class MobileNetV2(Module):
    """MobileNetV2 with a reduced stage configuration."""

    # (expand_ratio, out_channels_multiplier, num_blocks, stride)
    DEFAULT_CONFIG: List[Tuple[int, int, int, int]] = [
        (1, 1, 1, 1),
        (4, 2, 2, 2),
        (4, 4, 2, 2),
        (4, 8, 2, 2),
    ]

    def __init__(self, num_classes: int = 10, base_width: int = 8,
                 in_channels: int = 3, seed: int = 11) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.stem = Sequential(
            Conv2d(in_channels, base_width, 3, stride=1, padding=1, bias=False, rng=rng),
            BatchNorm2d(base_width),
            ReLU(),
        )
        blocks: List[Module] = []
        channels = base_width
        for expand, mult, count, stride in self.DEFAULT_CONFIG:
            out_channels = base_width * mult
            for block_index in range(count):
                blocks.append(InvertedResidual(
                    channels, out_channels,
                    stride=stride if block_index == 0 else 1,
                    expand_ratio=expand, rng=rng))
                channels = out_channels
        self.features = Sequential(*blocks)
        self.head_conv = Sequential(
            Conv2d(channels, channels * 2, 1, bias=False, rng=rng),
            BatchNorm2d(channels * 2),
            ReLU(),
        )
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(channels * 2, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        x = self.features(x)
        x = self.head_conv(x)
        x = self.pool(x)
        return self.classifier(x)


def mobilenet_v2(num_classes: int = 10, base_width: int = 8, seed: int = 11) -> MobileNetV2:
    """Build the scaled-down MobileNetV2 used throughout the reproduction."""
    return MobileNetV2(num_classes=num_classes, base_width=base_width, seed=seed)
