"""Model registry keyed by the workload names the paper evaluates.

The registry ties together three things per workload:

* a factory for the (scaled-down) network,
* the synthetic dataset family it trains on,
* the task type, which selects the training loop, the accuracy metric and the
  AIM operator classification (conv-based vs. transformer-based).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from ..nn import (
    Dataset,
    Module,
    classification_dataset,
    detection_dataset,
    language_dataset,
)
from .gpt2 import gpt2
from .llama import llama
from .mobilenet import mobilenet_v2
from .resnet import resnet18
from .vit import vit
from .yolo import yolov5

#: Task types used by the training/eval helpers and the workload profiles.
TASK_CLASSIFICATION = "classification"
TASK_DETECTION = "detection"
TASK_LANGUAGE_MODELING = "language_modeling"


@dataclass(frozen=True)
class ModelSpec:
    """A single entry in the model zoo."""

    name: str
    family: str            # "conv" or "transformer"
    task: str               # one of the TASK_* constants
    build: Callable[[], Module]
    dataset: Callable[[], Dataset]
    metric_name: str        # "accuracy" (higher better) or "perplexity"/"mse" (lower better)
    higher_is_better: bool


_REGISTRY: Dict[str, ModelSpec] = {}


def register(spec: ModelSpec) -> None:
    if spec.name in _REGISTRY:
        raise ValueError(f"model {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec


def get_model_spec(name: str) -> ModelSpec:
    """Look up a workload by its paper name (case-insensitive)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown model {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[key]


def list_models() -> List[str]:
    return sorted(_REGISTRY)


def build_model(name: str) -> Module:
    return get_model_spec(name).build()


def build_dataset(name: str) -> Dataset:
    return get_model_spec(name).dataset()


# --------------------------------------------------------------------------- #
# The six workloads from the paper's evaluation (Table 2 / Fig. 13).
# --------------------------------------------------------------------------- #
register(ModelSpec(
    name="resnet18", family="conv", task=TASK_CLASSIFICATION,
    build=lambda: resnet18(),
    dataset=lambda: classification_dataset(num_samples=192, num_classes=10,
                                           image_size=16, channels=3, seed=100),
    metric_name="accuracy", higher_is_better=True))

register(ModelSpec(
    name="mobilenetv2", family="conv", task=TASK_CLASSIFICATION,
    build=lambda: mobilenet_v2(),
    dataset=lambda: classification_dataset(num_samples=192, num_classes=10,
                                           image_size=16, channels=3, seed=101),
    metric_name="accuracy", higher_is_better=True))

register(ModelSpec(
    name="yolov5", family="conv", task=TASK_DETECTION,
    build=lambda: yolov5(),
    dataset=lambda: detection_dataset(num_samples=160, num_classes=4,
                                      image_size=16, channels=3, seed=102),
    metric_name="mse", higher_is_better=False))

register(ModelSpec(
    name="vit", family="transformer", task=TASK_CLASSIFICATION,
    build=lambda: vit(image_size=16, patch_size=4, dim=32, depth=3),
    dataset=lambda: classification_dataset(num_samples=192, num_classes=10,
                                           image_size=16, channels=3, seed=103),
    metric_name="accuracy", higher_is_better=True))

register(ModelSpec(
    name="gpt2", family="transformer", task=TASK_LANGUAGE_MODELING,
    build=lambda: gpt2(vocab_size=48, dim=32, depth=2),
    dataset=lambda: language_dataset(num_samples=96, seq_len=24, vocab_size=48, seed=104),
    metric_name="perplexity", higher_is_better=False))

register(ModelSpec(
    name="llama3", family="transformer", task=TASK_LANGUAGE_MODELING,
    build=lambda: llama(vocab_size=48, dim=32, depth=2),
    dataset=lambda: language_dataset(num_samples=96, seq_len=24, vocab_size=48, seed=105),
    metric_name="perplexity", higher_is_better=False))
