"""Scaled-down ResNet18 (He et al., CVPR'16) for the AIM HR experiments.

The architecture keeps the structural properties the paper relies on — a small
stem conv followed by four stages of residual basic blocks with doubling channel
counts, then global average pooling and a linear classifier — but with reduced
width so quantization-aware training finishes quickly on the synthetic
ImageNet stand-in.  Layer naming mirrors torchvision's ResNet (``layer3.0.conv1``
etc.) because the paper's Fig. 5 refers to those names.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    Module,
    ReLU,
    Sequential,
)
from ..nn.tensor import Tensor


class BasicBlock(Module):
    """Two 3x3 convolutions with a residual connection (ResNet basic block)."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1,
                            bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.relu = ReLU()
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1,
                            bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.downsample = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.downsample = Identity()

    def forward(self, x: Tensor) -> Tensor:
        identity = self.downsample(x)
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return self.relu(out + identity)


class ResNet(Module):
    """ResNet with configurable stage widths and block counts."""

    def __init__(self, num_classes: int = 10, base_width: int = 8,
                 blocks_per_stage: Optional[List[int]] = None,
                 in_channels: int = 3, seed: int = 10) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        blocks_per_stage = blocks_per_stage or [2, 2, 2, 2]
        widths = [base_width, base_width * 2, base_width * 4, base_width * 8]

        self.conv1 = Conv2d(in_channels, base_width, 3, stride=1, padding=1,
                            bias=False, rng=rng)
        self.bn1 = BatchNorm2d(base_width)
        self.relu = ReLU()

        stages: List[Module] = []
        channels = base_width
        for stage_index, (width, blocks) in enumerate(zip(widths, blocks_per_stage)):
            stride = 1 if stage_index == 0 else 2
            stage_blocks: List[Module] = []
            for block_index in range(blocks):
                stage_blocks.append(BasicBlock(
                    channels, width, stride=stride if block_index == 0 else 1, rng=rng))
                channels = width
            stages.append(Sequential(*stage_blocks))
        self.layer1, self.layer2, self.layer3, self.layer4 = stages

        self.avgpool = GlobalAvgPool2d()
        self.fc = Linear(channels, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.relu(self.bn1(self.conv1(x)))
        x = self.layer1(x)
        x = self.layer2(x)
        x = self.layer3(x)
        x = self.layer4(x)
        x = self.avgpool(x)
        return self.fc(x)


def resnet18(num_classes: int = 10, base_width: int = 8, seed: int = 10) -> ResNet:
    """Build the scaled-down ResNet18 used throughout the reproduction."""
    return ResNet(num_classes=num_classes, base_width=base_width,
                  blocks_per_stage=[2, 2, 2, 2], seed=seed)
