"""Scaled-down Vision Transformer (Dosovitskiy et al.) for the AIM experiments.

Structure: convolutional patch embedding, learned position embeddings, a stack
of pre-norm transformer encoder blocks, and a classification head on the mean
token.  Attention blocks carry the AIM operator-kind tags (``qkv``/``qk_t``/
``sv``/``proj``) that drive IR-Booster's safe-level decisions: QK^T and SV are
input-determined and default to the 100 % level, while Q/K/V generation and the
MLP/projection layers are weight-stationary.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import (
    Conv2d,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    Sequential,
    TransformerBlock,
)
from ..nn.tensor import Tensor


class PatchEmbedding(Module):
    """Non-overlapping convolutional patchifier: (N, C, H, W) → (N, T, D)."""

    def __init__(self, image_size: int, patch_size: int, in_channels: int, dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if image_size % patch_size:
            raise ValueError("image_size must be divisible by patch_size")
        self.num_patches = (image_size // patch_size) ** 2
        self.dim = dim
        self.proj = Conv2d(in_channels, dim, patch_size, stride=patch_size, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        patches = self.proj(x)  # (N, D, H', W')
        n, d = patches.shape[0], patches.shape[1]
        return patches.reshape(n, d, -1).transpose(0, 2, 1)  # (N, T, D)


class VisionTransformer(Module):
    """ViT-style classifier with mean-token pooling."""

    def __init__(self, num_classes: int = 10, image_size: int = 32, patch_size: int = 8,
                 in_channels: int = 3, dim: int = 32, depth: int = 4, num_heads: int = 4,
                 mlp_ratio: float = 2.0, seed: int = 13) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.patch_embed = PatchEmbedding(image_size, patch_size, in_channels, dim, rng=rng)
        self.pos_embed = Parameter(
            rng.normal(0.0, 0.02, size=(1, self.patch_embed.num_patches, dim)))
        self.blocks = Sequential(*[
            TransformerBlock(dim, num_heads, mlp_ratio=mlp_ratio, causal=False, rng=rng)
            for _ in range(depth)
        ])
        self.norm = LayerNorm(dim)
        self.head = Linear(dim, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        tokens = self.patch_embed(x) + self.pos_embed
        tokens = self.blocks(tokens)
        tokens = self.norm(tokens)
        pooled = tokens.mean(axis=1)
        return self.head(pooled)


def vit(num_classes: int = 10, image_size: int = 32, patch_size: int = 8, dim: int = 32,
        depth: int = 4, seed: int = 13) -> VisionTransformer:
    """Build the scaled-down ViT used throughout the reproduction."""
    return VisionTransformer(num_classes=num_classes, image_size=image_size,
                             patch_size=patch_size, dim=dim, depth=depth, seed=seed)
