"""Scaled-down YOLOv5-style detector for the AIM HR experiments.

The model keeps the elements that matter to the reproduction: a convolutional
backbone with CSP-style bottleneck blocks and SiLU activations, a neck that
fuses two scales, and a dense detection head that regresses
``[cx, cy, w, h, class scores]`` per image.  The synthetic COCO stand-in
(:class:`repro.nn.data.SyntheticDetection`) provides matching targets so the
detector can be trained with a simple MSE objective; the paper only needs the
*weights* of the trained network (for HR statistics), not detection mAP.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    Module,
    Sequential,
    SiLU,
)
from ..nn.tensor import Tensor


class ConvBnAct(Module):
    """Conv + BatchNorm + SiLU, the basic YOLO building block."""

    def __init__(self, in_channels: int, out_channels: int, kernel: int = 3,
                 stride: int = 1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.conv = Conv2d(in_channels, out_channels, kernel, stride=stride,
                           padding=kernel // 2, bias=False, rng=rng)
        self.bn = BatchNorm2d(out_channels)
        self.act = SiLU()

    def forward(self, x: Tensor) -> Tensor:
        return self.act(self.bn(self.conv(x)))


class Bottleneck(Module):
    """CSP bottleneck: 1x1 reduce → 3x3 conv with a residual connection."""

    def __init__(self, channels: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        hidden = max(2, channels // 2)
        self.cv1 = ConvBnAct(channels, hidden, kernel=1, rng=rng)
        self.cv2 = ConvBnAct(hidden, channels, kernel=3, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return x + self.cv2(self.cv1(x))


class CSPStage(Module):
    """A downsampling conv followed by ``n`` bottlenecks."""

    def __init__(self, in_channels: int, out_channels: int, n: int = 1,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.down = ConvBnAct(in_channels, out_channels, kernel=3, stride=2, rng=rng)
        self.blocks = Sequential(*[Bottleneck(out_channels, rng=rng) for _ in range(n)])

    def forward(self, x: Tensor) -> Tensor:
        return self.blocks(self.down(x))


class YOLOv5Tiny(Module):
    """Backbone + neck + dense detection head producing (N, 4 + num_classes)."""

    def __init__(self, num_classes: int = 4, base_width: int = 8,
                 in_channels: int = 3, seed: int = 12) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.num_classes = num_classes
        w = base_width
        self.stem = ConvBnAct(in_channels, w, kernel=3, stride=1, rng=rng)
        self.stage1 = CSPStage(w, w * 2, n=1, rng=rng)
        self.stage2 = CSPStage(w * 2, w * 4, n=2, rng=rng)
        self.stage3 = CSPStage(w * 4, w * 8, n=1, rng=rng)
        self.neck = ConvBnAct(w * 8, w * 8, kernel=1, rng=rng)
        self.pool = GlobalAvgPool2d()
        self.head = Sequential(
            Linear(w * 8, w * 8, rng=rng),
            SiLU(),
            Linear(w * 8, 4 + num_classes, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        x = self.stage1(x)
        x = self.stage2(x)
        x = self.stage3(x)
        x = self.neck(x)
        x = self.pool(x)
        return self.head(x)


def yolov5(num_classes: int = 4, base_width: int = 8, seed: int = 12) -> YOLOv5Tiny:
    """Build the scaled-down YOLOv5-style detector used throughout the reproduction."""
    return YOLOv5Tiny(num_classes=num_classes, base_width=base_width, seed=seed)
