"""Minimal numpy-based neural-network framework used as the AIM training substrate.

Public surface:

* :mod:`repro.nn.tensor` — autograd :class:`Tensor` and constructors
* :mod:`repro.nn.layers` — :class:`Module`, :class:`Linear`, :class:`Conv2d`, ...
* :mod:`repro.nn.attention` — transformer blocks with AIM operator-kind tags
* :mod:`repro.nn.functional` — conv/pool/softmax/cross-entropy functional ops
* :mod:`repro.nn.optim` — SGD / Adam / AdamW
* :mod:`repro.nn.data` — synthetic classification / detection / LM datasets
* :mod:`repro.nn.training` — train/evaluate loops with optional LHR regularizer
"""

from . import functional
from .attention import FeedForward, GatedFeedForward, MultiHeadAttention, TransformerBlock
from .data import (
    Batch,
    Dataset,
    SyntheticDetection,
    SyntheticImageClassification,
    SyntheticLanguageModeling,
    classification_dataset,
    detection_dataset,
    language_dataset,
)
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GELU,
    GlobalAvgPool2d,
    Identity,
    LayerNorm,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    SiLU,
)
from .optim import Adam, AdamW, Optimizer, SGD
from .tensor import Tensor, concatenate, ones, randn, stack, tensor, where, zeros
from .training import (
    TrainingReport,
    evaluate_accuracy,
    evaluate_perplexity,
    evaluate_regression_error,
    recalibrate_batchnorm,
    train_classifier,
    train_language_model,
    train_regressor,
)

__all__ = [
    "Tensor", "tensor", "zeros", "ones", "randn", "concatenate", "stack", "where",
    "Module", "Parameter", "Linear", "Conv2d", "BatchNorm2d", "LayerNorm", "Embedding",
    "ReLU", "GELU", "SiLU", "Identity", "Flatten", "MaxPool2d", "AvgPool2d",
    "GlobalAvgPool2d", "Dropout", "Sequential",
    "MultiHeadAttention", "FeedForward", "GatedFeedForward", "TransformerBlock",
    "Optimizer", "SGD", "Adam", "AdamW",
    "Dataset", "Batch", "SyntheticImageClassification", "SyntheticDetection",
    "SyntheticLanguageModeling", "classification_dataset", "detection_dataset",
    "language_dataset",
    "TrainingReport", "train_classifier", "train_regressor", "train_language_model",
    "evaluate_accuracy", "evaluate_regression_error", "evaluate_perplexity",
    "recalibrate_batchnorm",
    "functional",
]
