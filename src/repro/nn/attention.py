"""Transformer attention blocks for the model zoo.

AIM distinguishes two classes of PIM operators (paper Sec. 5.5.1):

* **weight-stationary** operators — conv, linear, and Q/K/V generation — whose
  in-memory data are trained weights, so HR can be pre-computed offline and
  optimized with LHR/WDS;
* **input-determined** operators — the QK^T and SV matmuls inside attention —
  whose in-memory data are produced at runtime, so IR-Booster must fall back to
  the 100 % safe level and rely on hardware monitoring.

The attention module therefore tags each internal matmul with an operator kind
(`"qkv"`, `"qk_t"`, `"sv"`, `"proj"`) that the compiler later reads when it
builds the task graph.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from .layers import Dropout, GELU, LayerNorm, Linear, Module, Sequential
from .tensor import Tensor


class MultiHeadAttention(Module):
    """Standard multi-head self-attention with explicit QK^T and SV stages."""

    def __init__(self, dim: int, num_heads: int, causal: bool = False,
                 dropout: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if dim % num_heads:
            raise ValueError("dim must be divisible by num_heads")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.causal = causal
        rng = rng or np.random.default_rng(0)
        self.q_proj = Linear(dim, dim, rng=rng)
        self.k_proj = Linear(dim, dim, rng=rng)
        self.v_proj = Linear(dim, dim, rng=rng)
        self.out_proj = Linear(dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        # Operator kinds seen by the AIM compiler.
        self.operator_kinds = {
            "q_proj": "qkv", "k_proj": "qkv", "v_proj": "qkv",
            "qk_t": "qk_t", "sv": "sv", "out_proj": "proj",
        }

    def _split_heads(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, seq)
        k = self._split_heads(self.k_proj(x), batch, seq)
        v = self._split_heads(self.v_proj(x), batch, seq)

        scores = q.matmul(k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(self.head_dim))
        if self.causal:
            causal_mask = np.triu(np.full((seq, seq), -1e9), k=1)
            scores = scores + Tensor(causal_mask)
        if mask is not None:
            scores = scores + Tensor(mask)
        attn = scores.softmax(axis=-1)
        attn = self.dropout(attn)
        context = attn.matmul(v)  # (B, H, T, Dh)
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq, self.dim)
        return self.out_proj(context)


class FeedForward(Module):
    """Transformer MLP block (two linear layers with GELU)."""

    def __init__(self, dim: int, hidden_dim: int, dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.fc1 = Linear(dim, hidden_dim, rng=rng)
        self.act = GELU()
        self.fc2 = Linear(hidden_dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.dropout(self.fc2(self.act(self.fc1(x))))


class TransformerBlock(Module):
    """Pre-norm transformer block: LN → MHA → residual, LN → MLP → residual."""

    def __init__(self, dim: int, num_heads: int, mlp_ratio: float = 4.0,
                 causal: bool = False, dropout: float = 0.0,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadAttention(dim, num_heads, causal=causal, dropout=dropout, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.mlp = FeedForward(dim, int(dim * mlp_ratio), dropout=dropout, rng=rng)

    def forward(self, x: Tensor, mask: Optional[np.ndarray] = None) -> Tensor:
        x = x + self.attn(self.norm1(x), mask=mask)
        x = x + self.mlp(self.norm2(x))
        return x


class GatedFeedForward(Module):
    """SwiGLU-style gated MLP used by Llama-family decoder blocks."""

    def __init__(self, dim: int, hidden_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.gate_proj = Linear(dim, hidden_dim, bias=False, rng=rng)
        self.up_proj = Linear(dim, hidden_dim, bias=False, rng=rng)
        self.down_proj = Linear(hidden_dim, dim, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        gate = self.gate_proj(x)
        gated = gate * gate.sigmoid()  # SiLU
        return self.down_proj(gated * self.up_proj(x))
