"""Functional building blocks for the numpy NN substrate.

This module holds the operations that are easier to express directly on numpy
arrays with handwritten backward passes than through the autograd primitives in
:mod:`repro.nn.tensor` — most importantly 2-D convolution via im2col, pooling,
and the embedding lookup used by the language models.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor, _as_array


# ---------------------------------------------------------------------- #
# im2col utilities
# ---------------------------------------------------------------------- #
def _conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    return (size + 2 * padding - kernel) // stride + 1


def im2col(x: np.ndarray, kernel: int, stride: int, padding: int) -> np.ndarray:
    """Unfold ``x`` of shape (N, C, H, W) into (N, out_h*out_w, C*kernel*kernel)."""
    n, c, h, w = x.shape
    out_h = _conv_output_size(h, kernel, stride, padding)
    out_w = _conv_output_size(w, kernel, stride, padding)
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    cols = np.empty((n, c, kernel, kernel, out_h, out_w), dtype=x.dtype)
    for ki in range(kernel):
        i_end = ki + stride * out_h
        for kj in range(kernel):
            j_end = kj + stride * out_w
            cols[:, :, ki, kj, :, :] = x[:, :, ki:i_end:stride, kj:j_end:stride]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n, out_h * out_w, c * kernel * kernel)


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`im2col` (scatter-add), used for the conv backward pass."""
    n, c, h, w = x_shape
    out_h = _conv_output_size(h, kernel, stride, padding)
    out_w = _conv_output_size(w, kernel, stride, padding)
    cols = cols.reshape(n, out_h, out_w, c, kernel, kernel).transpose(0, 3, 4, 5, 1, 2)
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype)
    for ki in range(kernel):
        i_end = ki + stride * out_h
        for kj in range(kernel):
            j_end = kj + stride * out_w
            padded[:, :, ki:i_end:stride, kj:j_end:stride] += cols[:, :, ki, kj, :, :]
    if padding:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded


# ---------------------------------------------------------------------- #
# convolution
# ---------------------------------------------------------------------- #
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tensor:
    """2-D convolution.

    ``x``: (N, C_in, H, W); ``weight``: (C_out, C_in/groups, K, K).
    ``groups == C_in`` gives depthwise convolution (used by MobileNet blocks).
    """
    n, c_in, h, w = x.shape
    c_out, c_group, kernel, _ = weight.shape
    if c_in % groups or c_out % groups:
        raise ValueError("channel counts must be divisible by groups")
    out_h = _conv_output_size(h, kernel, stride, padding)
    out_w = _conv_output_size(w, kernel, stride, padding)

    if groups == 1:
        cols = im2col(x.data, kernel, stride, padding)  # (N, P, C*K*K)
        w_mat = weight.data.reshape(c_out, -1)  # (C_out, C*K*K)
        out = cols @ w_mat.T  # (N, P, C_out)
        out_data = out.transpose(0, 2, 1).reshape(n, c_out, out_h, out_w)

        def backward(grad: np.ndarray) -> None:
            grad = _as_array(grad)
            grad_mat = grad.reshape(n, c_out, -1).transpose(0, 2, 1)  # (N, P, C_out)
            if weight.requires_grad:
                gw = np.einsum("npo,npk->ok", grad_mat, cols)
                weight._accumulate(gw.reshape(weight.shape))
            if x.requires_grad:
                gcols = grad_mat @ w_mat  # (N, P, C*K*K)
                x._accumulate(col2im(gcols, x.shape, kernel, stride, padding))
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad.sum(axis=(0, 2, 3)))

        parents = (x, weight) if bias is None else (x, weight, bias)
        result = Tensor._make(out_data, parents, backward)
    else:
        # Grouped convolution expressed as independent per-group convolutions on
        # numpy views, with a combined backward pass.
        cg_in = c_in // groups
        cg_out = c_out // groups
        cols_list = []
        outs = np.empty((n, c_out, out_h, out_w), dtype=x.data.dtype)
        for g in range(groups):
            xg = x.data[:, g * cg_in:(g + 1) * cg_in]
            cols = im2col(xg, kernel, stride, padding)
            cols_list.append(cols)
            w_mat = weight.data[g * cg_out:(g + 1) * cg_out].reshape(cg_out, -1)
            og = (cols @ w_mat.T).transpose(0, 2, 1).reshape(n, cg_out, out_h, out_w)
            outs[:, g * cg_out:(g + 1) * cg_out] = og

        def backward(grad: np.ndarray) -> None:
            grad = _as_array(grad)
            gx_full = np.zeros_like(x.data) if x.requires_grad else None
            gw_full = np.zeros_like(weight.data) if weight.requires_grad else None
            for g in range(groups):
                gg = grad[:, g * cg_out:(g + 1) * cg_out]
                grad_mat = gg.reshape(n, cg_out, -1).transpose(0, 2, 1)
                cols = cols_list[g]
                w_mat = weight.data[g * cg_out:(g + 1) * cg_out].reshape(cg_out, -1)
                if gw_full is not None:
                    gw = np.einsum("npo,npk->ok", grad_mat, cols)
                    gw_full[g * cg_out:(g + 1) * cg_out] = gw.reshape(cg_out, cg_in, kernel, kernel)
                if gx_full is not None:
                    gcols = grad_mat @ w_mat
                    xg_shape = (n, cg_in, h, w)
                    gx_full[:, g * cg_in:(g + 1) * cg_in] = col2im(
                        gcols, xg_shape, kernel, stride, padding)
            if gx_full is not None:
                x._accumulate(gx_full)
            if gw_full is not None:
                weight._accumulate(gw_full)
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad.sum(axis=(0, 2, 3)))

        parents = (x, weight) if bias is None else (x, weight, bias)
        result = Tensor._make(outs, parents, backward)

    if bias is not None and groups == 1:
        # bias gradient already handled in backward; add the forward contribution
        result.data = result.data + bias.data.reshape(1, c_out, 1, 1)
    elif bias is not None:
        result.data = result.data + bias.data.reshape(1, c_out, 1, 1)
    return result


# ---------------------------------------------------------------------- #
# pooling
# ---------------------------------------------------------------------- #
def max_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) square windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = _conv_output_size(h, kernel, stride, 0)
    out_w = _conv_output_size(w, kernel, stride, 0)
    cols = im2col(x.data.reshape(n * c, 1, h, w), kernel, stride, 0)  # (N*C, P, K*K)
    argmax = cols.argmax(axis=2)
    out = cols.max(axis=2).reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        grad = _as_array(grad).reshape(n * c, -1)
        gcols = np.zeros_like(cols)
        rows = np.arange(cols.shape[0])[:, None]
        pos = np.arange(cols.shape[1])[None, :]
        gcols[rows, pos, argmax] = grad
        gx = col2im(gcols, (n * c, 1, h, w), kernel, stride, 0)
        x._accumulate(gx.reshape(n, c, h, w))

    return Tensor._make(out, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: Optional[int] = None) -> Tensor:
    stride = stride or kernel
    n, c, h, w = x.shape
    out_h = _conv_output_size(h, kernel, stride, 0)
    out_w = _conv_output_size(w, kernel, stride, 0)
    cols = im2col(x.data.reshape(n * c, 1, h, w), kernel, stride, 0)
    out = cols.mean(axis=2).reshape(n, c, out_h, out_w)

    def backward(grad: np.ndarray) -> None:
        grad = _as_array(grad).reshape(n * c, -1, 1)
        gcols = np.broadcast_to(grad / (kernel * kernel), cols.shape).copy()
        gx = col2im(gcols, (n * c, 1, h, w), kernel, stride, 0)
        x._accumulate(gx.reshape(n, c, h, w))

    return Tensor._make(out, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Global average pooling: (N, C, H, W) -> (N, C)."""
    return x.mean(axis=(2, 3))


# ---------------------------------------------------------------------- #
# embedding lookup
# ---------------------------------------------------------------------- #
def embedding(indices: np.ndarray, table: Tensor) -> Tensor:
    """Lookup rows of ``table`` (V, D) for integer ``indices`` of any shape."""
    idx = np.asarray(indices, dtype=np.int64)
    data = table.data[idx]

    def backward(grad: np.ndarray) -> None:
        if not table.requires_grad:
            return
        full = np.zeros_like(table.data)
        np.add.at(full, idx.reshape(-1), _as_array(grad).reshape(-1, table.shape[1]))
        table._accumulate(full)

    return Tensor._make(data, (table,), backward)


# ---------------------------------------------------------------------- #
# losses expressed functionally
# ---------------------------------------------------------------------- #
def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - logsumexp
    softmax = np.exp(data)

    def backward(grad: np.ndarray) -> None:
        g = _as_array(grad)
        x._accumulate(g - softmax * g.sum(axis=axis, keepdims=True))

    return Tensor._make(data, (x,), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) or (N, T, C) and integer targets."""
    targets = np.asarray(targets, dtype=np.int64)
    logp = log_softmax(logits, axis=-1)
    flat = logp.reshape(-1, logits.shape[-1])
    n = flat.shape[0]
    picked = flat[np.arange(n), targets.reshape(-1)]
    return -picked.mean()


def mse_loss(prediction: Tensor, target: np.ndarray) -> Tensor:
    target = _as_array(target)
    diff = prediction - Tensor(target)
    return (diff * diff).mean()
