"""Layer/module abstractions for the numpy NN substrate.

Provides the :class:`Module` base class (parameter registration, train/eval
modes, named traversal) plus the concrete layers needed by the AIM model zoo:
``Linear``, ``Conv2d``, ``BatchNorm2d``, ``LayerNorm``, ``Embedding``,
activation wrappers, and ``Sequential``.

Layers that hold weight matrices (``Linear``, ``Conv2d``) are the ones whose
parameters become PIM *in-memory data* and therefore participate in HR/LHR/WDS
optimization; they expose a uniform ``weight`` attribute so the quantization and
compilation stages can treat them generically.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from .tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with parameter registration and recursive traversal."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # -- registration ---------------------------------------------------- #
    def __setattr__(self, key, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[key] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[key] = value
        object.__setattr__(self, key, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -------------------------------------------------------- #
    def parameters(self) -> Iterator[Parameter]:
        for _, p in self.named_parameters():
            yield p

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}" if not prefix else f"{prefix}.{name}", param)
        for name, module in self._modules.items():
            sub_prefix = name if not prefix else f"{prefix}.{name}"
            yield from module.named_parameters(sub_prefix)

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, module in self._modules.items():
            sub_prefix = name if not prefix else f"{prefix}.{name}"
            yield from module.named_modules(sub_prefix)

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # -- train / eval ----------------------------------------------------- #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- state dict -------------------------------------------------------- #
    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        for name, value in state.items():
            if name not in own:
                raise KeyError(f"unexpected parameter {name!r} in state dict")
            if own[name].shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: {own[name].shape} vs {value.shape}")
            own[name].data = value.copy()

    # -- call -------------------------------------------------------------- #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- introspection ------------------------------------------------------ #
    def weight_layers(self) -> List[Tuple[str, "Module"]]:
        """Return (name, module) pairs for layers whose weights map onto PIM macros."""
        return [
            (name, module)
            for name, module in self.named_modules()
            if isinstance(module, (Linear, Conv2d))
        ]


# ---------------------------------------------------------------------- #
# concrete layers
# ---------------------------------------------------------------------- #
class Linear(Module):
    """Fully-connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        bound = 1.0 / math.sqrt(in_features)
        # Laplace initialization: zero-centred and heavy-tailed, matching the
        # weight distributions of converged networks (the shape the paper's
        # HR/WDS analysis assumes) while keeping the usual 1/sqrt(fan_in) scale.
        self.weight = Parameter(rng.laplace(0.0, bound / 3.0, size=(out_features, in_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight.T)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module):
    """2-D convolution layer with optional grouping (depthwise when groups=C_in)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, groups: int = 1, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        bound = 1.0 / math.sqrt(fan_in)
        # Laplace initialization for the same reason as Linear: converged conv
        # weights are zero-centred with heavy tails, which is the distribution
        # shape HR/WDS exploit.
        self.weight = Parameter(
            rng.laplace(0.0, bound / 3.0,
                        size=(out_channels, in_channels // groups, kernel_size, kernel_size)))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride,
                        padding=self.padding, groups=self.groups)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
                f"s={self.stride}, p={self.padding}, g={self.groups})")


class BatchNorm2d(Module):
    """Batch normalization over (N, H, W) per channel with running statistics."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))
        self.num_batches_tracked = 0

    def forward(self, x: Tensor) -> Tensor:
        shape = (1, self.num_features, 1, 1)
        if self.training:
            # Full-graph batch statistics so gradients flow through mean/var,
            # which is required for stable training of the deeper conv models.
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            centered = x - mean
            var = (centered * centered).mean(axis=(0, 2, 3), keepdims=True)
            x_hat = centered * ((var + self.eps) ** -0.5)
            # Cumulative moving average: converges to useful inference statistics
            # within a handful of batches, which matters for the short training
            # schedules used throughout the reproduction.
            self.num_batches_tracked += 1
            blend = max(self.momentum, 1.0 / self.num_batches_tracked)
            batch_mean = mean.data.reshape(-1)
            batch_var = var.data.reshape(-1)
            self.running_mean = (1 - blend) * self.running_mean + blend * batch_mean
            self.running_var = (1 - blend) * self.running_var + blend * batch_var
            self._buffers["running_mean"] = self.running_mean
            self._buffers["running_var"] = self.running_var
        else:
            x_hat = (x - self.running_mean.reshape(shape)) * \
                (1.0 / np.sqrt(self.running_var + self.eps)).reshape(shape)
        return x_hat * self.weight.reshape(shape) + self.bias.reshape(shape)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim))
        self.bias = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        x_hat = centered * ((var + self.eps) ** -0.5)
        return x_hat * self.weight + self.bias


class Embedding(Module):
    """Token embedding table."""

    def __init__(self, num_embeddings: int, dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, dim)))

    def forward(self, indices: np.ndarray) -> Tensor:
        return F.embedding(indices, self.weight)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.gelu()


class SiLU(Module):
    """Sigmoid-weighted linear unit (swish), used by YOLO and Llama blocks."""

    def forward(self, x: Tensor) -> Tensor:
        return x * x.sigmoid()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class MaxPool2d(Module):
    def __init__(self, kernel: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel, self.stride)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Dropout(Module):
    """Inverted dropout; disabled in eval mode."""

    def __init__(self, p: float = 0.1, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.p = p
        self._rng = rng or np.random.default_rng(0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p <= 0.0:
            return x
        mask = (self._rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._sequence: List[Module] = []
        for i, module in enumerate(modules):
            setattr(self, f"layer{i}", module)
            self._sequence.append(module)

    def forward(self, x):
        for module in self._sequence:
            x = module(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._sequence)

    def __len__(self) -> int:
        return len(self._sequence)

    def __getitem__(self, index: int) -> Module:
        return self._sequence[index]
