"""Optimizers for the numpy NN substrate (SGD with momentum, Adam, AdamW)."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .layers import Parameter


class Optimizer:
    """Base optimizer holding a list of parameters."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.parameters)
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self._m[i] is None:
                self._m[i] = np.zeros_like(p.data)
                self._v[i] = np.zeros_like(p.data)
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad ** 2
            m_hat = self._m[i] / (1 - self.beta1 ** self._t)
            v_hat = self._v[i] / (1 - self.beta2 ** self._t)
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (applied directly to the parameter)."""

    def step(self) -> None:
        if self.weight_decay:
            for p in self.parameters:
                if p.grad is not None:
                    p.data = p.data * (1.0 - self.lr * self.weight_decay)
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay
