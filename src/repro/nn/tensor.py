"""A small reverse-mode automatic differentiation engine on top of numpy.

The AIM paper integrates its LHR regularizer into quantization-aware training,
which requires gradients of a differentiable hamming-rate surrogate with respect
to network weights (paper Eq. 5/6).  PyTorch is not available offline, so this
module provides the minimal-but-complete autograd substrate used by the rest of
the reproduction: a :class:`Tensor` wrapping a numpy array, a tape of
:class:`Function` nodes, and reverse-mode backpropagation.

The design follows the familiar define-by-run style: every operation on tensors
records the backward closure needed to propagate gradients, and
:meth:`Tensor.backward` walks the recorded graph in reverse topological order.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def _sum_to_shape(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (produced by a broadcasted op) back to ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over broadcast dimensions of size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor that records operations for backpropagation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"

    # ------------------------------------------------------------------ #
    # graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _sum_to_shape(_as_array(grad), self.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(-grad)

        return Tensor._make(data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data)
            other._accumulate(grad * self.data)

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data)
            other._accumulate(-grad * self.data / (other.data ** 2))

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if grad.ndim == 1
                                     else np.expand_dims(grad, -1) * other.data)
                else:
                    self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad))
                else:
                    other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return Tensor._make(data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # reductions and shaping
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = _as_array(grad)
            if axis is None:
                g = np.broadcast_to(g, self.shape)
            else:
                if not keepdims:
                    g = np.expand_dims(g, axis=axis)
                g = np.broadcast_to(g, self.shape)
            self._accumulate(g)

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_as_array(grad).reshape(original))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_as_array(grad).transpose(inverse))

        return Tensor._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, _as_array(grad))
            self._accumulate(full)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data ** 2))

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data))

        return Tensor._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def gelu(self) -> "Tensor":
        """Tanh-approximated GELU, as used in GPT-style models."""
        c = np.sqrt(2.0 / np.pi)
        x = self.data
        inner = c * (x + 0.044715 * x ** 3)
        t = np.tanh(inner)
        data = 0.5 * x * (1.0 + t)

        def backward(grad: np.ndarray) -> None:
            dinner = c * (1.0 + 3 * 0.044715 * x ** 2)
            dt = (1.0 - t ** 2) * dinner
            self._accumulate(grad * (0.5 * (1.0 + t) + 0.5 * x * dt))

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return Tensor._make(data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            g = _as_array(grad)
            dot = (g * data).sum(axis=axis, keepdims=True)
            self._accumulate(data * (g - dot))

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # straight-through helpers used by quantization
    # ------------------------------------------------------------------ #
    def round_ste(self) -> "Tensor":
        """Round to nearest integer; gradient passes straight through."""
        data = np.round(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)

        return Tensor._make(data, (self,), backward)

    def floor_ste(self) -> "Tensor":
        data = np.floor(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # backpropagation
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to ones (appropriate for scalar losses).
        """
        if not self.requires_grad:
            raise RuntimeError("Called backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)

        topo: list[Tensor] = []
        visited: set[int] = set()

        def build(node: "Tensor") -> None:
            if id(node) in visited or not node.requires_grad:
                return
            visited.add(id(node))
            for parent in node._parents:
                build(parent)
            topo.append(node)

        # Build iteratively to avoid recursion-depth problems on deep graphs.
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if id(node) in visited or not node.requires_grad:
                continue
            if processed:
                visited.add(id(node))
                topo.append(node)
                continue
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        self.grad = grad.copy() if self.grad is None else self.grad + grad
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


# ---------------------------------------------------------------------- #
# module-level convenience constructors
# ---------------------------------------------------------------------- #
def tensor(data: ArrayLike, requires_grad: bool = False) -> Tensor:
    """Create a :class:`Tensor` (mirrors ``torch.tensor``)."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def randn(shape, rng: Optional[np.random.Generator] = None, scale: float = 1.0,
          requires_grad: bool = False) -> Tensor:
    rng = rng or np.random.default_rng()
    return Tensor(rng.normal(0.0, scale, size=shape), requires_grad=requires_grad)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]

    def backward(grad: np.ndarray) -> None:
        grad = _as_array(grad)
        start = 0
        for t, size in zip(tensors, sizes):
            index = [slice(None)] * grad.ndim
            index[axis] = slice(start, start + size)
            t._accumulate(grad[tuple(index)])
            start += size

    return Tensor._make(data, tuple(tensors), backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        grad = _as_array(grad)
        for i, t in enumerate(tensors):
            index = [slice(None)] * grad.ndim
            index[axis] = i
            t._accumulate(grad[tuple(index)])

    return Tensor._make(data, tuple(tensors), backward)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    cond = _as_array(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        grad = _as_array(grad)
        a._accumulate(grad * cond)
        b._accumulate(grad * (~cond))

    return Tensor._make(data, (a, b), backward)
