"""Training and evaluation loops shared by the QAT/PTQ experiments.

These helpers provide the "task loss" half of the paper's Eq. 6
(``L_all = L_task + lambda * L_HR``): the caller can pass an extra
``regularizer`` callable (the LHR term) that receives the model and returns a
scalar :class:`~repro.nn.tensor.Tensor` added to the task loss before
backpropagation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from . import functional as F
from .data import Dataset
from .layers import Module
from .optim import Optimizer
from .tensor import Tensor


def recalibrate_batchnorm(model: Module, dataset: Dataset, batch_size: int = 64,
                          max_batches: int = 8) -> None:
    """Refresh BatchNorm running statistics with the current (frozen) weights.

    Deploying quantized weights — or simply finishing a short training run —
    leaves the running statistics slightly stale relative to the activations the
    frozen network actually produces.  A quick forward-only pass in training
    mode (gradients are never used) re-estimates them, which is the standard
    batch-norm re-calibration trick and is applied before every evaluation in
    this reproduction.
    """
    from .layers import BatchNorm2d

    bn_layers = [m for m in model.modules() if isinstance(m, BatchNorm2d)]
    if not bn_layers:
        return
    for bn in bn_layers:
        bn.num_batches_tracked = 0
    was_training = model.training
    model.train()
    for i, batch in enumerate(dataset.batches(batch_size, shuffle=False)):
        if i >= max_batches:
            break
        inputs = batch.inputs
        model(inputs if inputs.dtype.kind in "iu" else Tensor(inputs))
    model.train(was_training)


@dataclass
class TrainingReport:
    """Per-epoch loss/metric history produced by the training helpers."""

    losses: List[float] = field(default_factory=list)
    metrics: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def final_metric(self) -> float:
        return self.metrics[-1] if self.metrics else float("nan")


def train_classifier(
    model: Module,
    dataset: Dataset,
    optimizer: Optimizer,
    epochs: int = 3,
    batch_size: int = 32,
    regularizer: Optional[Callable[[Module], Tensor]] = None,
    seed: int = 0,
) -> TrainingReport:
    """Train a classification model with cross-entropy (+ optional LHR loss)."""
    report = TrainingReport()
    rng = np.random.default_rng(seed)
    for _ in range(epochs):
        model.train()
        epoch_losses = []
        for batch in dataset.batches(batch_size, shuffle=True, rng=rng):
            logits = model(Tensor(batch.inputs))
            loss = F.cross_entropy(logits, batch.targets)
            if regularizer is not None:
                loss = loss + regularizer(model)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        report.losses.append(float(np.mean(epoch_losses)))
        report.metrics.append(evaluate_accuracy(model, dataset, batch_size))
    return report


def train_regressor(
    model: Module,
    dataset: Dataset,
    optimizer: Optimizer,
    epochs: int = 3,
    batch_size: int = 32,
    regularizer: Optional[Callable[[Module], Tensor]] = None,
    seed: int = 0,
) -> TrainingReport:
    """Train a regression model (detection head) with MSE (+ optional LHR loss)."""
    report = TrainingReport()
    rng = np.random.default_rng(seed)
    for _ in range(epochs):
        model.train()
        epoch_losses = []
        for batch in dataset.batches(batch_size, shuffle=True, rng=rng):
            prediction = model(Tensor(batch.inputs))
            loss = F.mse_loss(prediction, batch.targets)
            if regularizer is not None:
                loss = loss + regularizer(model)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        report.losses.append(float(np.mean(epoch_losses)))
        report.metrics.append(evaluate_regression_error(model, dataset, batch_size))
    return report


def train_language_model(
    model: Module,
    dataset: Dataset,
    optimizer: Optimizer,
    epochs: int = 3,
    batch_size: int = 16,
    regularizer: Optional[Callable[[Module], Tensor]] = None,
    seed: int = 0,
) -> TrainingReport:
    """Train a decoder-only language model with next-token cross-entropy."""
    report = TrainingReport()
    rng = np.random.default_rng(seed)
    for _ in range(epochs):
        model.train()
        epoch_losses = []
        for batch in dataset.batches(batch_size, shuffle=True, rng=rng):
            logits = model(batch.inputs)
            loss = F.cross_entropy(logits, batch.targets)
            if regularizer is not None:
                loss = loss + regularizer(model)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        report.losses.append(float(np.mean(epoch_losses)))
        report.metrics.append(evaluate_perplexity(model, dataset, batch_size))
    return report


# ---------------------------------------------------------------------- #
# evaluation
# ---------------------------------------------------------------------- #
def evaluate_accuracy(model: Module, dataset: Dataset, batch_size: int = 64) -> float:
    """Top-1 accuracy (%) for classification models."""
    recalibrate_batchnorm(model, dataset, batch_size)
    model.eval()
    correct = 0
    total = 0
    for batch in dataset.batches(batch_size, shuffle=False):
        logits = model(Tensor(batch.inputs))
        predictions = logits.data.argmax(axis=-1)
        correct += int((predictions == batch.targets).sum())
        total += len(batch)
    return 100.0 * correct / max(1, total)


def evaluate_regression_error(model: Module, dataset: Dataset, batch_size: int = 64) -> float:
    """Mean squared error for detection/regression models (lower is better)."""
    recalibrate_batchnorm(model, dataset, batch_size)
    model.eval()
    errors = []
    for batch in dataset.batches(batch_size, shuffle=False):
        prediction = model(Tensor(batch.inputs))
        errors.append(float(np.mean((prediction.data - batch.targets) ** 2)))
    return float(np.mean(errors))


def evaluate_perplexity(model: Module, dataset: Dataset, batch_size: int = 32) -> float:
    """Perplexity of a decoder-only language model on next-token prediction."""
    model.eval()
    total_nll = 0.0
    total_tokens = 0
    for batch in dataset.batches(batch_size, shuffle=False):
        logits = model(batch.inputs)
        logp = F.log_softmax(logits, axis=-1).data
        flat = logp.reshape(-1, logp.shape[-1])
        targets = batch.targets.reshape(-1)
        total_nll -= float(flat[np.arange(flat.shape[0]), targets].sum())
        total_tokens += targets.shape[0]
    return float(np.exp(total_nll / max(1, total_tokens)))
