"""Behavioural SRAM-PIM hardware substrate: banks, macros, groups, chip, dataflow."""

from .adder_tree import AdderTree, AdderTreeActivity
from .bank import BankExecution, PIMBank
from .bitserial import (
    bit_serial_matmul,
    bit_serial_stream,
    from_bit_planes,
    stream_toggle_counts,
    to_bit_planes,
)
from .chip import PIMChip
from .config import (
    BankConfig,
    ChipConfig,
    GroupConfig,
    MacroConfig,
    default_chip_config,
    small_chip_config,
)
from .dataflow import (
    INPUT_DETERMINED_KINDS,
    WEIGHT_STATIONARY_KINDS,
    Operator,
    Task,
    build_tasks,
    layer_weight_matrix,
    tile_matrix,
)
from .group import MacroGroup
from .macro import MacroExecution, PIMMacro
from .shift_compensator import ShiftCompensator, ShiftCompensatorOverhead

__all__ = [
    "BankConfig", "MacroConfig", "GroupConfig", "ChipConfig",
    "default_chip_config", "small_chip_config",
    "PIMBank", "BankExecution", "PIMMacro", "MacroExecution", "MacroGroup", "PIMChip",
    "AdderTree", "AdderTreeActivity",
    "ShiftCompensator", "ShiftCompensatorOverhead",
    "to_bit_planes", "from_bit_planes", "bit_serial_stream", "bit_serial_matmul",
    "stream_toggle_counts",
    "Operator", "Task", "layer_weight_matrix", "tile_matrix", "build_tasks",
    "WEIGHT_STATIONARY_KINDS", "INPUT_DETERMINED_KINDS",
]
