"""Adder-tree model used by DPIM macros (and stand-alone in Fig. 22-(b)).

Digital PIM accumulates the bit-wise products through a binary adder tree.  The
tree's switching activity scales with the number of active (1-valued) product
bits, which is why Rtog — defined on the bitstream *entering* the adder — is a
good proxy for the tree's dynamic current.  This model provides:

* the functional reduction (sum of the per-cell products),
* a per-level activity estimate used by the energy model, and
* an equivalent-capacitance figure so the pure-adder-tree experiment of
  Fig. 22-(b) can be run without the SRAM array around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import List

import numpy as np

__all__ = ["AdderTreeActivity", "AdderTree"]


@dataclass
class AdderTreeActivity:
    """Per-level switching activity of one reduction through the tree."""

    level_activity: List[float]
    total_activity: float

    @property
    def depth(self) -> int:
        return len(self.level_activity)


class AdderTree:
    """Binary reduction tree over ``leaves`` inputs of ``operand_bits`` bits."""

    def __init__(self, leaves: int, operand_bits: int = 8) -> None:
        if leaves <= 0:
            raise ValueError("adder tree needs at least one leaf")
        self.leaves = leaves
        self.operand_bits = operand_bits
        self.depth = max(1, ceil(log2(leaves))) if leaves > 1 else 1

    @property
    def adder_count(self) -> int:
        """Total number of two-input adders in the tree."""
        return max(0, self.leaves - 1)

    def reduce(self, products: np.ndarray) -> int:
        """Functional sum of the leaf products."""
        products = np.asarray(products, dtype=np.int64).reshape(-1)
        if products.size > self.leaves:
            raise ValueError("more products than tree leaves")
        return int(products.sum())

    def activity(self, products: np.ndarray) -> AdderTreeActivity:
        """Estimate per-level switching activity for one reduction.

        The activity of a level is modelled as the fraction of non-zero operands
        entering it, scaled by the operand width growth (one extra carry bit per
        level) — a standard architectural power proxy for reduction trees.
        """
        values = np.zeros(self.leaves, dtype=np.int64)
        products = np.asarray(products, dtype=np.int64).reshape(-1)
        values[:products.size] = products
        level_activity: List[float] = []
        current = values
        width = self.operand_bits
        while current.size > 1:
            nonzero_fraction = float(np.count_nonzero(current)) / current.size
            level_activity.append(nonzero_fraction * width)
            if current.size % 2:
                current = np.concatenate([current, np.zeros(1, dtype=np.int64)])
            current = current[0::2] + current[1::2]
            width += 1
        if not level_activity:
            level_activity = [float(np.count_nonzero(current)) * width]
        return AdderTreeActivity(level_activity=level_activity,
                                 total_activity=float(np.sum(level_activity)))

    def equivalent_capacitance(self, unit_adder_capacitance: float = 1.0) -> float:
        """Relative switched capacitance of the whole tree (per full reduction)."""
        capacitance = 0.0
        size = self.leaves
        width = self.operand_bits
        while size > 1:
            adders = size // 2
            capacitance += adders * width * unit_adder_capacitance
            size = ceil(size / 2)
            width += 1
        return capacitance
