"""Behavioural model of a single PIM bank.

A bank stores one column of in-memory weights (``rows`` cells of
``weight_bits`` two's-complement bits) and multiplies them bit-serially against
the shared input word lines, accumulating through its adder tree into a partial
sum (pSUM).  The bank is the granularity at which the paper defines Rtog
(Eq. 1), so this class exposes both the functional result of a matmul wave and
the per-cycle toggle activity that drives the IR-drop model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.metrics import hamming_rate, rtog_trace
from .bitserial import bit_serial_matmul, bit_serial_stream
from .config import BankConfig

__all__ = ["BankExecution", "PIMBank"]


@dataclass
class BankExecution:
    """Result of streaming a batch of input waves through one bank."""

    partial_sums: np.ndarray    #: (waves,) integer partial sums
    rtog: np.ndarray            #: per-cycle toggle rate, length waves*input_bits - 1
    cycles: int

    @property
    def peak_rtog(self) -> float:
        return float(self.rtog.max()) if self.rtog.size else 0.0

    @property
    def mean_rtog(self) -> float:
        return float(self.rtog.mean()) if self.rtog.size else 0.0


class PIMBank:
    """One bank: weight storage + bit-serial MAC + toggle accounting."""

    def __init__(self, config: Optional[BankConfig] = None) -> None:
        self.config = config or BankConfig()
        self.config.validate()
        self._weights = np.zeros(self.config.rows, dtype=np.int64)
        self._loaded_rows = 0

    # -- weight management -------------------------------------------------- #
    @property
    def weights(self) -> np.ndarray:
        return self._weights.copy()

    @property
    def loaded_rows(self) -> int:
        return self._loaded_rows

    def load_weights(self, codes: np.ndarray) -> None:
        """Load integer weight codes into the bank (zero-padded to ``rows``)."""
        codes = np.asarray(codes, dtype=np.int64).reshape(-1)
        if codes.size > self.config.rows:
            raise ValueError(
                f"{codes.size} weights exceed bank capacity of {self.config.rows} rows")
        qmin = -(1 << (self.config.weight_bits - 1))
        qmax = (1 << (self.config.weight_bits - 1)) - 1
        if codes.size and (codes.min() < qmin or codes.max() > qmax):
            raise ValueError("weight codes outside the bank's bit-width range")
        self._weights = np.zeros(self.config.rows, dtype=np.int64)
        self._weights[:codes.size] = codes
        self._loaded_rows = codes.size

    def clear(self) -> None:
        self._weights = np.zeros(self.config.rows, dtype=np.int64)
        self._loaded_rows = 0

    # -- metrics -------------------------------------------------------------- #
    @property
    def hamming_rate(self) -> float:
        """HR of the stored in-memory data (Eq. 3), the upper bound of Rtog."""
        return hamming_rate(self._weights, self.config.weight_bits)

    # -- execution ------------------------------------------------------------ #
    def execute(self, activations: np.ndarray) -> BankExecution:
        """Stream ``activations`` (waves, rows) through the bank bit-serially."""
        activations = np.asarray(activations, dtype=np.int64)
        if activations.ndim == 1:
            activations = activations[None, :]
        if activations.shape[1] != self.config.rows:
            raise ValueError(
                f"activation width {activations.shape[1]} != bank rows {self.config.rows}")
        partial_sums = bit_serial_matmul(self._weights, activations, self.config.input_bits)
        stream = bit_serial_stream(activations, self.config.input_bits)
        trace = rtog_trace(self._weights, stream, self.config.weight_bits)
        return BankExecution(partial_sums=partial_sums, rtog=trace, cycles=stream.shape[0])
