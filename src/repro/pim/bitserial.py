"""Bit-serial encoding of activation streams.

SRAM PIM loads input activations bit-serially: a ``q_in``-bit activation is
presented to the word lines over ``q_in`` consecutive cycles, LSB first, while
the in-memory weights stay put (in-situ processing).  The toggling of these
input bit planes against the stored weight bits is exactly what Rtog measures,
so this module is the bridge between integer activation tensors and the
cycle-level toggle traces consumed by the IR-drop model.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "to_bit_planes",
    "from_bit_planes",
    "bit_serial_stream",
    "bit_serial_matmul",
    "stream_toggle_counts",
]


def to_bit_planes(values: np.ndarray, bits: int) -> np.ndarray:
    """Unsigned/two's-complement bit planes of integer ``values``, LSB first.

    Returns shape ``(bits,) + values.shape`` with entries in {0, 1}.
    """
    values = np.asarray(values)
    if not np.issubdtype(values.dtype, np.integer):
        values = np.round(values).astype(np.int64)
    low, high = -(1 << (bits - 1)), (1 << bits) - 1
    if values.size and (values.min() < low or values.max() > high):
        raise ValueError(f"values outside representable range for {bits} bits")
    unsigned = np.where(values < 0, values + (1 << bits), values).astype(np.uint64)
    planes = ((unsigned[None, ...] >> np.arange(bits, dtype=np.uint64).reshape(
        (bits,) + (1,) * values.ndim)) & 1)
    return planes.astype(np.uint8)


def from_bit_planes(planes: np.ndarray, signed: bool = True) -> np.ndarray:
    """Reassemble integers from LSB-first bit planes (inverse of :func:`to_bit_planes`)."""
    planes = np.asarray(planes, dtype=np.int64)
    bits = planes.shape[0]
    weights = (1 << np.arange(bits)).reshape((bits,) + (1,) * (planes.ndim - 1))
    values = (planes * weights).sum(axis=0)
    if signed:
        sign_bit = 1 << (bits - 1)
        values = np.where(values >= sign_bit, values - (1 << bits), values)
    return values


def bit_serial_stream(activations: np.ndarray, bits: int) -> np.ndarray:
    """Cycle-major bit stream for a sequence of activation vectors.

    ``activations`` has shape (waves, cells): each wave is one activation vector
    presented to the bank's cells.  The result has shape
    ``(waves * bits, cells)``: wave ``w`` occupies cycles ``[w*bits, (w+1)*bits)``
    with its LSB first — exactly the order the word lines see.
    """
    activations = np.asarray(activations)
    if activations.ndim != 2:
        raise ValueError("activations must have shape (waves, cells)")
    waves, cells = activations.shape
    planes = to_bit_planes(activations, bits)          # (bits, waves, cells)
    stream = planes.transpose(1, 0, 2).reshape(waves * bits, cells)
    return stream.astype(np.uint8)


def bit_serial_matmul(weight_codes: np.ndarray, activations: np.ndarray,
                      input_bits: int) -> np.ndarray:
    """Reference bit-serial MAC: equivalent to ``activations @ weights`` per wave.

    ``weight_codes``: (cells,) signed integer weights of one bank column;
    ``activations``: (waves, cells) signed integer activations.
    Returns the per-wave dot products, computed by shift-adding the bit-plane
    partial sums the way the macro hardware does — used to cross-check the
    functional model against plain integer matmul.
    """
    weight_codes = np.asarray(weight_codes, dtype=np.int64)
    activations = np.asarray(activations, dtype=np.int64)
    planes = to_bit_planes(activations, input_bits)    # (bits, waves, cells)
    partial = planes.astype(np.int64) @ weight_codes   # (bits, waves)
    shifts = 1 << np.arange(input_bits, dtype=np.int64)
    # Two's-complement input: the MSB plane carries a negative place value.
    shifts[-1] = -shifts[-1]
    return (partial * shifts[:, None]).sum(axis=0)


def stream_toggle_counts(stream: np.ndarray) -> np.ndarray:
    """Number of input bit toggles per cycle boundary (summed over cells)."""
    stream = np.asarray(stream, dtype=np.uint8)
    if stream.shape[0] < 2:
        return np.zeros(0, dtype=np.int64)
    return (stream[1:] ^ stream[:-1]).sum(axis=1).astype(np.int64)
