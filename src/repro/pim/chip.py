"""Whole-chip model: groups of macros plus geometry/layout helpers.

The chip owns the macro-group hierarchy and the (row, column) floorplan
positions used by the power-delivery-network model to place per-macro current
sources.  It intentionally does not run workloads itself — the cycle-level
execution lives in :mod:`repro.sim.runtime`, which drives the chip through the
compiler's task assignments.
"""

from __future__ import annotations

from math import ceil, sqrt
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .config import ChipConfig, default_chip_config
from .group import MacroGroup
from .macro import PIMMacro

__all__ = ["PIMChip"]


class PIMChip:
    """The full PIM accelerator: ``groups`` macro groups in a 2-D floorplan."""

    def __init__(self, config: Optional[ChipConfig] = None) -> None:
        self.config = config or default_chip_config()
        self.config.validate()
        self.groups: List[MacroGroup] = [
            MacroGroup(self.config.group, group_id=g) for g in range(self.config.groups)
        ]
        # Square-ish floorplan of macros used by the PDN mesh.
        self._grid_side = int(ceil(sqrt(self.config.total_macros)))

    # ------------------------------------------------------------------ #
    # navigation
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[MacroGroup]:
        return iter(self.groups)

    def macro(self, index: int) -> PIMMacro:
        group, position = self.config.macro_location(index)
        return self.groups[group][position]

    def macros(self) -> List[PIMMacro]:
        return [self.macro(i) for i in range(self.config.total_macros)]

    def group_of(self, macro_index: int) -> MacroGroup:
        group, _ = self.config.macro_location(macro_index)
        return self.groups[group]

    # ------------------------------------------------------------------ #
    # floorplan
    # ------------------------------------------------------------------ #
    @property
    def grid_shape(self) -> Tuple[int, int]:
        """(rows, cols) of the macro floorplan grid."""
        rows = int(ceil(self.config.total_macros / self._grid_side))
        return rows, self._grid_side

    def macro_position(self, macro_index: int) -> Tuple[int, int]:
        """Floorplan (row, col) of a macro; groups occupy contiguous positions."""
        if not 0 <= macro_index < self.config.total_macros:
            raise IndexError(f"macro index {macro_index} out of range")
        return divmod(macro_index, self._grid_side)

    # ------------------------------------------------------------------ #
    # aggregate metrics
    # ------------------------------------------------------------------ #
    def macro_hamming_rates(self) -> np.ndarray:
        """HR per macro (0 for macros with no weights loaded)."""
        return np.array([
            m.hamming_rate if m.is_loaded else 0.0 for m in self.macros()
        ])

    def group_hamming_rates(self) -> np.ndarray:
        """HRG (worst HR) per group — the input to IR-Booster's safe level."""
        return np.array([group.group_hamming_rate for group in self.groups])

    def loaded_macro_indices(self) -> List[int]:
        return [i for i, m in enumerate(self.macros()) if m.is_loaded]

    def clear(self) -> None:
        for group in self.groups:
            group.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        cfg = self.config
        return (f"PIMChip(groups={cfg.groups}, macros/group={cfg.group.macros}, "
                f"banks/macro={cfg.macro.banks}, rows/bank={cfg.macro.rows}, "
                f"peak={cfg.peak_tops:.1f} TOPS)")
