"""Configuration dataclasses describing the PIM chip hierarchy.

The paper's evaluation platform is a 7nm 256-TOPS SRAM-PIM accelerator with two
RISC-V cores and 16 macro groups of four macros each (Sec. 6.1).  The
behavioural model reproduces that hierarchy:

    chip → macro groups (share supply + frequency) → macros → banks → cells

Every dimension is configurable; :func:`default_chip_config` gives the
paper-scale geometry and :func:`small_chip_config` a reduced version used by
unit tests and fast benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = [
    "BankConfig",
    "MacroConfig",
    "GroupConfig",
    "ChipConfig",
    "default_chip_config",
    "small_chip_config",
]


@dataclass(frozen=True)
class BankConfig:
    """Geometry of one PIM bank: ``rows`` weight cells of ``weight_bits`` each."""

    rows: int = 64
    weight_bits: int = 8
    input_bits: int = 8

    @property
    def cells(self) -> int:
        return self.rows

    @property
    def weight_capacity_bits(self) -> int:
        return self.rows * self.weight_bits

    def validate(self) -> None:
        if self.rows <= 0 or self.weight_bits <= 0 or self.input_bits <= 0:
            raise ValueError("bank dimensions must be positive")


@dataclass(frozen=True)
class MacroConfig:
    """Geometry of a PIM macro: a grid of banks fed by shared input word lines."""

    banks: int = 16
    bank: BankConfig = field(default_factory=BankConfig)
    is_analog: bool = False      #: APIM (True) vs DPIM (False)
    adc_bits: int = 8            #: ADC resolution used in APIM mode

    @property
    def rows(self) -> int:
        return self.bank.rows

    @property
    def columns(self) -> int:
        """Output columns produced per wave (one per bank)."""
        return self.banks

    @property
    def weight_cells(self) -> int:
        return self.banks * self.bank.rows

    @property
    def macs_per_wave(self) -> int:
        """Multiply-accumulate operations performed per full input wave."""
        return self.banks * self.bank.rows

    def validate(self) -> None:
        self.bank.validate()
        if self.banks <= 0:
            raise ValueError("macro must contain at least one bank")


@dataclass(frozen=True)
class GroupConfig:
    """A macro group: macros sharing one power supply and one clock."""

    macros: int = 4
    macro: MacroConfig = field(default_factory=MacroConfig)

    def validate(self) -> None:
        self.macro.validate()
        if self.macros <= 0:
            raise ValueError("group must contain at least one macro")


@dataclass(frozen=True)
class ChipConfig:
    """Whole-chip geometry plus the nominal operating point."""

    groups: int = 16
    group: GroupConfig = field(default_factory=GroupConfig)
    nominal_voltage: float = 0.75        #: volts (paper Sec. 6.6)
    nominal_frequency: float = 1.0e9     #: hertz
    signoff_ir_drop: float = 0.140       #: volts of worst-case IR-drop at signoff
    riscv_cores: int = 2

    @property
    def total_macros(self) -> int:
        return self.groups * self.group.macros

    @property
    def macro(self) -> MacroConfig:
        return self.group.macro

    @property
    def macs_per_cycle(self) -> int:
        """Peak MACs per clock across the whole chip (all banks active)."""
        return self.total_macros * self.macro.macs_per_wave

    @property
    def peak_tops(self) -> float:
        """Peak throughput in TOPS (2 ops per MAC) at the nominal frequency."""
        return 2.0 * self.macs_per_cycle * self.nominal_frequency / 1e12

    def macro_index(self, group: int, macro_in_group: int) -> int:
        """Flat macro index from (group, position-in-group)."""
        if not 0 <= group < self.groups:
            raise IndexError(f"group {group} out of range")
        if not 0 <= macro_in_group < self.group.macros:
            raise IndexError(f"macro {macro_in_group} out of range")
        return group * self.group.macros + macro_in_group

    def macro_location(self, macro_index: int) -> Tuple[int, int]:
        """(group, position-in-group) for a flat macro index."""
        if not 0 <= macro_index < self.total_macros:
            raise IndexError(f"macro index {macro_index} out of range")
        return divmod(macro_index, self.group.macros)

    def validate(self) -> None:
        self.group.validate()
        if self.groups <= 0:
            raise ValueError("chip must contain at least one group")
        if not 0 < self.nominal_voltage < 2.0:
            raise ValueError("nominal voltage must be a plausible CMOS supply")
        if self.signoff_ir_drop <= 0 or self.signoff_ir_drop >= self.nominal_voltage:
            raise ValueError("signoff IR-drop must be positive and below the supply")


def default_chip_config() -> ChipConfig:
    """Paper-scale geometry: 16 groups x 4 macros, 16 banks x 64 rows per macro.

    At 1 GHz this yields 2 * 64 * 16 * 64 * 1e9 = 131 TOPS of INT8 MACs per the
    behavioural ops model; the paper's 256-TOPS figure counts 4-bit ops, so the
    geometry is consistent with the reference design.
    """
    return ChipConfig()


def small_chip_config(groups: int = 4, macros_per_group: int = 2, banks: int = 4,
                      rows: int = 16) -> ChipConfig:
    """Reduced geometry for unit tests and fast parameter sweeps."""
    return ChipConfig(
        groups=groups,
        group=GroupConfig(
            macros=macros_per_group,
            macro=MacroConfig(banks=banks, bank=BankConfig(rows=rows))),
    )
