"""Operator-to-macro dataflow: reshaping and tiling weights into macro tiles.

The compiler splits each operator's in-memory data (its weight matrix, or the
runtime-produced matrix for QK^T / SV) into tiles that fit a macro's
``rows x banks`` geometry.  All tiles of one operator form a logical *MacroSet*
(paper Fig. 11-(b)): they must run at the same frequency, and an IRFailure in
one stalls the others.

Conventions:

* a weight matrix is laid out as ``(reduction_dim, output_dim)`` — reduction
  rows map onto bank rows (shared word lines), output columns map onto banks;
* conv weights ``(C_out, C_in, K, K)`` become ``(C_in*K*K, C_out)``;
* linear weights ``(out, in)`` become ``(in, out)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.metrics import hamming_rate
from .config import MacroConfig

__all__ = [
    "WEIGHT_STATIONARY_KINDS",
    "INPUT_DETERMINED_KINDS",
    "Operator",
    "Task",
    "layer_weight_matrix",
    "tile_matrix",
    "build_tasks",
]

#: Operator kinds whose in-memory data are trained weights (HR known offline).
WEIGHT_STATIONARY_KINDS = ("conv", "linear", "qkv", "proj")
#: Operator kinds whose in-memory data are produced at runtime (attention matmuls).
INPUT_DETERMINED_KINDS = ("qk_t", "sv")


@dataclass
class Operator:
    """One network operator to be mapped onto the PIM chip."""

    name: str
    kind: str                       #: "conv", "linear", "qkv", "proj", "qk_t" or "sv"
    codes: np.ndarray               #: (reduction, output) integer in-memory data
    bits: int = 8
    wds_delta: int = 0

    def __post_init__(self) -> None:
        if self.kind not in WEIGHT_STATIONARY_KINDS + INPUT_DETERMINED_KINDS:
            raise ValueError(f"unknown operator kind {self.kind!r}")
        self.codes = np.asarray(self.codes, dtype=np.int64)
        if self.codes.ndim != 2:
            raise ValueError("operator codes must be a 2-D (reduction, output) matrix")

    @property
    def input_determined(self) -> bool:
        """True when HR cannot be pre-computed offline (QK^T / SV)."""
        return self.kind in INPUT_DETERMINED_KINDS

    @property
    def hamming_rate(self) -> float:
        return hamming_rate(self.codes, self.bits)

    @property
    def macs(self) -> int:
        """Reduction-length * output-width: MACs per input vector."""
        return int(self.codes.shape[0] * self.codes.shape[1])


@dataclass
class Task:
    """One macro-sized tile of an operator, the unit of task mapping."""

    task_id: int
    operator_name: str
    kind: str
    set_id: int                      #: logical MacroSet (one per operator)
    codes: np.ndarray                #: (rows<=macro rows, cols<=macro banks)
    bits: int
    wds_delta: int = 0
    input_determined: bool = False
    _hamming_rate: Optional[float] = field(default=None, init=False, repr=False,
                                           compare=False)

    @property
    def hamming_rate(self) -> float:
        """HR of the tile *after* the WDS shift it will be loaded with.

        Cached on first access — tiles are immutable once built, and the
        simulation setup reads this once per macro per run.
        """
        if self._hamming_rate is None:
            if self.wds_delta:
                from ..core.wds import shift_weights
                shifted = shift_weights(self.codes, self.wds_delta, self.bits)
                self._hamming_rate = hamming_rate(shifted, self.bits)
            else:
                self._hamming_rate = hamming_rate(self.codes, self.bits)
        return self._hamming_rate

    @property
    def shape(self) -> Tuple[int, int]:
        return self.codes.shape

    @property
    def macs_per_wave(self) -> int:
        return int(self.codes.shape[0] * self.codes.shape[1])


def layer_weight_matrix(weight: np.ndarray) -> np.ndarray:
    """Reshape a layer weight array into the (reduction, output) PIM layout."""
    weight = np.asarray(weight)
    if weight.ndim == 2:            # Linear: (out, in) -> (in, out)
        return weight.T
    if weight.ndim == 4:            # Conv: (C_out, C_in, K, K) -> (C_in*K*K, C_out)
        c_out = weight.shape[0]
        return weight.reshape(c_out, -1).T
    raise ValueError(f"unsupported weight rank {weight.ndim}")


def tile_matrix(matrix: np.ndarray, rows: int, cols: int) -> List[np.ndarray]:
    """Split a (R, C) matrix into row-major tiles of at most (rows, cols)."""
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    tiles: List[np.ndarray] = []
    for r0 in range(0, matrix.shape[0], rows):
        for c0 in range(0, matrix.shape[1], cols):
            tiles.append(matrix[r0:r0 + rows, c0:c0 + cols])
    return tiles


def build_tasks(operators: Sequence[Operator], macro_config: MacroConfig,
                max_tasks_per_operator: Optional[int] = None) -> List[Task]:
    """Tile every operator into macro-sized tasks.

    ``max_tasks_per_operator`` caps the tile count per operator (keeping the
    mapping search tractable in tests); when capped, the retained tiles are the
    first ones in row-major order, which preserves per-operator HR statistics
    because HR is approximately uniform within a layer (paper Fig. 12).
    """
    tasks: List[Task] = []
    task_id = 0
    for set_id, op in enumerate(operators):
        tiles = tile_matrix(op.codes, macro_config.rows, macro_config.banks)
        if max_tasks_per_operator is not None:
            tiles = tiles[:max_tasks_per_operator]
        for tile in tiles:
            tasks.append(Task(
                task_id=task_id,
                operator_name=op.name,
                kind=op.kind,
                set_id=set_id,
                codes=tile,
                bits=op.bits,
                wds_delta=op.wds_delta,
                input_determined=op.input_determined,
            ))
            task_id += 1
    return tasks
