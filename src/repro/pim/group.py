"""Macro group model: macros sharing one power supply and one clock.

The paper's chip groups four macros behind one LDO and one clock domain
(Fig. 10-(a)).  This shared supply is what makes task mapping matter: the whole
group must run at the V-f level dictated by its most demanding (highest-HR)
macro, so mixing tasks with very different HR in one group wastes the available
IR-drop margin (Sec. 5.6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .config import GroupConfig
from .macro import PIMMacro

__all__ = ["MacroGroup"]


class MacroGroup:
    """A group of macros with a shared supply voltage and clock frequency."""

    def __init__(self, config: Optional[GroupConfig] = None, group_id: int = 0) -> None:
        self.config = config or GroupConfig()
        self.config.validate()
        self.group_id = group_id
        self.macros: List[PIMMacro] = [
            PIMMacro(self.config.macro, macro_id=self.group_id * self.config.macros + i)
            for i in range(self.config.macros)
        ]

    def __len__(self) -> int:
        return len(self.macros)

    def __getitem__(self, index: int) -> PIMMacro:
        return self.macros[index]

    @property
    def loaded_macros(self) -> List[PIMMacro]:
        return [m for m in self.macros if m.is_loaded]

    @property
    def hamming_rates(self) -> np.ndarray:
        """HR of every loaded macro in the group (0 for empty macros)."""
        return np.array([m.hamming_rate if m.is_loaded else 0.0 for m in self.macros])

    @property
    def group_hamming_rate(self) -> float:
        """HRG: the worst (largest) HR in the group, which bounds the safe level.

        The paper's IR-Booster picks the group's safe level from the *worst* HR
        among its macros (Sec. 5.5.1) because all macros share the supply.
        """
        loaded = [m.hamming_rate for m in self.macros if m.is_loaded]
        return float(max(loaded)) if loaded else 0.0

    def clear(self) -> None:
        for macro in self.macros:
            macro.clear()
