"""Behavioural model of a PIM macro (DPIM or APIM).

A macro is a grid of banks that share the bit-serially streamed input word
lines: every bank multiplies the same input vector against its own stored
weight column and produces one partial sum per wave (Fig. 1 of the paper).
The macro model provides:

* functional matrix-vector products, with optional WDS shift + compensation,
* per-bank and macro-average Rtog traces for the IR-drop model,
* HR of the loaded in-memory data (the quantity IR-Booster's safe level uses),
* an APIM mode that quantizes the analog bit-line accumulation through an ADC,
  reproducing the precision/IR-drop sensitivity differences discussed in Sec. 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.metrics import hamming_rate
from .bank import BankExecution, PIMBank
from .config import MacroConfig
from .shift_compensator import ShiftCompensator

__all__ = ["MacroExecution", "PIMMacro"]


@dataclass
class MacroExecution:
    """Result of streaming input waves through a macro."""

    outputs: np.ndarray            #: (waves, banks) partial sums after compensation
    rtog_per_bank: np.ndarray      #: (banks, cycles-1) per-bank toggle rate
    cycles: int

    @property
    def rtog_mean_trace(self) -> np.ndarray:
        """Macro-average Rtog per cycle (the quantity correlated with IR-drop)."""
        if self.rtog_per_bank.size == 0:
            return np.zeros(0)
        return self.rtog_per_bank.mean(axis=0)

    @property
    def peak_rtog(self) -> float:
        trace = self.rtog_mean_trace
        return float(trace.max()) if trace.size else 0.0

    @property
    def mean_rtog(self) -> float:
        trace = self.rtog_mean_trace
        return float(trace.mean()) if trace.size else 0.0


class PIMMacro:
    """A PIM macro: banks + (optional) shift compensator + ADC for APIM."""

    def __init__(self, config: Optional[MacroConfig] = None,
                 macro_id: int = 0) -> None:
        self.config = config or MacroConfig()
        self.config.validate()
        self.macro_id = macro_id
        self.banks: List[PIMBank] = [PIMBank(self.config.bank) for _ in range(self.config.banks)]
        self.wds_delta = 0
        self._compensator: Optional[ShiftCompensator] = None
        self._loaded = False

    # ------------------------------------------------------------------ #
    # weight loading
    # ------------------------------------------------------------------ #
    def load_weight_matrix(self, codes: np.ndarray, wds_delta: int = 0) -> None:
        """Load a (rows, banks) integer weight tile, optionally WDS-shifted.

        ``codes`` narrower or shorter than the macro geometry are zero-padded;
        larger tiles raise.  When ``wds_delta`` > 0 the stored codes are the
        shifted ones (clamped at INT_MAX) and a shift compensator is armed so
        :meth:`execute` returns numerically corrected outputs.
        """
        codes = np.asarray(codes, dtype=np.int64)
        if codes.ndim == 1:
            codes = codes[:, None]
        rows, columns = codes.shape
        if rows > self.config.rows or columns > self.config.banks:
            raise ValueError(
                f"tile {codes.shape} exceeds macro geometry "
                f"({self.config.rows} rows x {self.config.banks} banks)")
        self.wds_delta = int(wds_delta)
        stored = codes
        if self.wds_delta:
            from ..core.wds import shift_weights
            stored = shift_weights(codes, self.wds_delta, self.config.bank.weight_bits)
            self._compensator = ShiftCompensator(self.wds_delta, self.config.banks)
        else:
            self._compensator = None
        for bank_index, bank in enumerate(self.banks):
            if bank_index < columns:
                bank.load_weights(stored[:, bank_index])
            else:
                bank.clear()
        self._loaded = True

    def clear(self) -> None:
        """Unload all weights and disarm WDS compensation."""
        for bank in self.banks:
            bank.clear()
        self.wds_delta = 0
        self._compensator = None
        self._loaded = False

    @property
    def is_loaded(self) -> bool:
        return self._loaded

    @property
    def weight_matrix(self) -> np.ndarray:
        """Currently stored (rows, banks) codes (after any WDS shift)."""
        return np.stack([bank.weights for bank in self.banks], axis=1)

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    @property
    def hamming_rate(self) -> float:
        """HR of all in-memory data currently stored in the macro."""
        return hamming_rate(self.weight_matrix, self.config.bank.weight_bits)

    @property
    def bank_hamming_rates(self) -> np.ndarray:
        return np.array([bank.hamming_rate for bank in self.banks])

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(self, activations: np.ndarray) -> MacroExecution:
        """Stream (waves, rows) integer activations through every bank.

        Returns compensated outputs plus the per-bank Rtog traces.  In APIM mode
        the per-bank accumulation is passed through an ADC transfer function
        before compensation, which adds deterministic quantization error.
        """
        if not self._loaded:
            raise RuntimeError("macro has no weights loaded")
        activations = np.asarray(activations, dtype=np.int64)
        if activations.ndim == 1:
            activations = activations[None, :]
        if activations.shape[1] != self.config.rows:
            raise ValueError(
                f"activation width {activations.shape[1]} != macro rows {self.config.rows}")

        executions: List[BankExecution] = [bank.execute(activations) for bank in self.banks]
        outputs = np.stack([ex.partial_sums for ex in executions], axis=1).astype(np.float64)
        if self.config.is_analog:
            outputs = self._adc_quantize(outputs)
        if self._compensator is not None:
            corrected = np.empty_like(outputs)
            for wave in range(outputs.shape[0]):
                corrected[wave] = self._compensator.correct(
                    outputs[wave], activations[wave])
            outputs = corrected
        rtog = np.stack([ex.rtog for ex in executions], axis=0)
        return MacroExecution(outputs=outputs, rtog_per_bank=rtog,
                              cycles=executions[0].cycles if executions else 0)

    def _adc_quantize(self, outputs: np.ndarray) -> np.ndarray:
        """APIM bit-line readout: clip and quantize the accumulation to ADC codes."""
        full_scale = self.config.rows * (1 << (self.config.bank.weight_bits - 1))
        levels = 1 << self.config.adc_bits
        step = max(2.0 * full_scale / levels, 1e-12)
        quantized = np.round(outputs / step) * step
        return np.clip(quantized, -full_scale, full_scale)
