"""Shift-compensator (SC) hardware model (paper Sec. 5.4.2, Fig. 8).

WDS adds ``delta`` to every weight before it is loaded, so every partial sum
computed by the macro carries an error of ``delta * sum(inputs)``.  The SC sits
next to the macro banks, shares their input stream, and performs three steps:

1. **Correction calculation** — sum the inputs, multiply by ``delta`` (a power
   of two, so the multiply is a left shift), and negate;
2. **Broadcast** — all banks in the macro share the same inputs and ``delta``,
   so a single correction value is broadcast to every bank's output;
3. **Pipelined correcting** — the correction is registered and added to the
   macro outputs one cycle later, keeping the adder tree's critical path clean.

The model reproduces the functional correction, the one-cycle pipeline latency,
and the paper's area/power overhead claims (< 0.2 % area, < 1 % power).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["ShiftCompensatorOverhead", "ShiftCompensator"]


@dataclass(frozen=True)
class ShiftCompensatorOverhead:
    """Relative area/power cost of one SC instance shared by a macro's banks."""

    area_fraction: float = 0.0018      #: fraction of macro area (< 0.2 %)
    power_fraction: float = 0.008      #: fraction of macro power (< 1 %)


class ShiftCompensator:
    """Functional + timing model of the per-macro shift compensator."""

    def __init__(self, delta: int, banks: int,
                 overhead: Optional[ShiftCompensatorOverhead] = None) -> None:
        if delta < 0:
            raise ValueError("delta must be non-negative")
        if delta and (delta & (delta - 1)):
            raise ValueError("delta must be a power of two so the SC can use a shift")
        self.delta = delta
        self.banks = banks
        self.overhead = overhead or ShiftCompensatorOverhead()
        self._pending_correction: Optional[float] = None
        self.pipeline_latency_cycles = 1

    @property
    def shift_amount(self) -> int:
        """``k = log2(delta)`` — the shift used instead of a multiplier."""
        if self.delta == 0:
            return 0
        return int(self.delta).bit_length() - 1

    def compute_correction(self, input_values: np.ndarray) -> float:
        """Step 1: ``-(sum(inputs) << k)``, registered for the next cycle."""
        total = float(np.asarray(input_values, dtype=np.float64).sum())
        correction = -(total * self.delta)
        self._pending_correction = correction
        return correction

    def broadcast(self) -> np.ndarray:
        """Step 2: the registered correction replicated for every bank."""
        if self._pending_correction is None:
            raise RuntimeError("no correction pending; call compute_correction first")
        return np.full(self.banks, self._pending_correction)

    def apply(self, partial_sums: np.ndarray) -> np.ndarray:
        """Step 3: add the registered correction to the banks' partial sums.

        The same correction value applies to every bank (step 2's broadcast), so
        it is added as a scalar regardless of the partial-sum array's shape.
        """
        sums = np.asarray(partial_sums, dtype=np.float64)
        if self.delta == 0:
            return sums
        correction = self.broadcast()[0]
        self._pending_correction = None
        return sums + correction

    def correct(self, partial_sums: np.ndarray, input_values: np.ndarray) -> np.ndarray:
        """Convenience: run all three steps for one wave."""
        if self.delta == 0:
            return np.asarray(partial_sums, dtype=np.float64)
        self.compute_correction(input_values)
        return self.apply(partial_sums)
