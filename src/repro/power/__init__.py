"""Power substrate: V-f tables, PDN solver, IR-drop model, monitors, DVFS, energy."""

from .dvfs import DVFSGovernor
from .energy import EnergyBreakdown, EnergyModel, OverheadReport
from .ir_drop import IRDropModel, chip_ir_drop_map
from .monitor import IRMonitor, IRMonitorReading
from .pdn import PDNResult, PowerDeliveryNetwork
from .vf_table import DEFAULT_LEVELS, VFPair, VFTable

__all__ = [
    "VFPair", "VFTable", "DEFAULT_LEVELS",
    "PowerDeliveryNetwork", "PDNResult",
    "IRDropModel", "chip_ir_drop_map",
    "IRMonitor", "IRMonitorReading",
    "DVFSGovernor",
    "EnergyModel", "EnergyBreakdown", "OverheadReport",
]
