"""Baseline DVFS governor.

Classic DVFS signs off every V-f pair against the worst-case (Rtog = 100 %)
IR-drop, so it can only trade voltage and frequency together along one curve
(paper Fig. 9, Sec. 5.5.1).  The governor here provides that baseline: it picks
an operating point from the 100 %-level row of the V-f table based on a simple
utilization heuristic and never consults HR or the IR monitors.  The AIM
benchmarks compare IR-Booster against this governor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .vf_table import VFPair, VFTable

__all__ = ["DVFSGovernor"]


@dataclass
class DVFSGovernor:
    """Worst-case-signed-off governor: always the 100 % level."""

    table: VFTable
    mode: str = "sprint"
    utilization_low: float = 0.3
    utilization_high: float = 0.7

    def select(self, utilization: Optional[float] = None) -> VFPair:
        """Pick a V-f pair from the DVFS (100 %) row.

        With no utilization hint the governor returns the mode's preferred pair.
        With a hint it steps down to the lowest-power pair under light load and
        up to the fastest pair under heavy load — the standard race-to-idle
        policy — but always inside the worst-case-signed-off row.
        """
        pairs = self.table.pairs_for_level(100)
        if utilization is None:
            return self.table.dvfs_pair(self.mode)
        if utilization >= self.utilization_high:
            return max(pairs, key=lambda p: p.frequency)
        if utilization <= self.utilization_low:
            return min(pairs, key=lambda p: p.dynamic_power_factor)
        ordered = sorted(pairs, key=lambda p: p.frequency)
        return ordered[len(ordered) // 2]

    @property
    def level(self) -> int:
        """The only Rtog level DVFS ever uses."""
        return 100
