"""Energy, power and throughput accounting for the PIM chip.

The paper reports three hardware-facing metrics (Sec. 6.6, 6.8):

* per-macro power consumption in mW (energy-efficiency comparisons),
* effective computation power in TOPS after stalls/recomputes,
* overhead fractions of the added hardware (shift compensator, IR monitor).

The model is the standard architectural one: dynamic power follows
``C_eff * V^2 * f`` scaled by the activity (Rtog), static power follows a
leakage term proportional to ``V``; the constants are calibrated so a macro at
the nominal operating point and the signoff activity draws the paper's
~4.3 mW.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["EnergyModel", "EnergyBreakdown", "OverheadReport"]


@dataclass
class EnergyBreakdown:
    """Energy/power totals accumulated over a simulation run."""

    dynamic_energy: float = 0.0       #: joules
    static_energy: float = 0.0        #: joules
    elapsed_time: float = 0.0         #: seconds
    completed_macs: float = 0.0       #: useful MAC operations

    @property
    def total_energy(self) -> float:
        return self.dynamic_energy + self.static_energy

    @property
    def average_power(self) -> float:
        """Watts averaged over the elapsed time."""
        if self.elapsed_time <= 0:
            return 0.0
        return self.total_energy / self.elapsed_time

    @property
    def average_power_mw(self) -> float:
        return self.average_power * 1e3

    @property
    def effective_tops(self) -> float:
        """Useful throughput (2 ops per MAC) discounted by stalls/recomputes."""
        if self.elapsed_time <= 0:
            return 0.0
        return 2.0 * self.completed_macs / self.elapsed_time / 1e12

    @property
    def energy_per_mac(self) -> float:
        if self.completed_macs <= 0:
            return 0.0
        return self.total_energy / self.completed_macs

    def merge(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        return EnergyBreakdown(
            dynamic_energy=self.dynamic_energy + other.dynamic_energy,
            static_energy=self.static_energy + other.static_energy,
            elapsed_time=max(self.elapsed_time, other.elapsed_time),
            completed_macs=self.completed_macs + other.completed_macs,
        )


@dataclass
class OverheadReport:
    """Area/power overhead of the AIM hardware additions (paper Sec. 6.10.2)."""

    shift_compensator_area: float = 0.0018
    shift_compensator_power: float = 0.008
    ir_monitor_area: float = 0.001
    ir_monitor_power: float = 0.005
    controller_area: float = 0.0002     #: reuse of the existing RISC-V core
    controller_power: float = 0.001

    @property
    def total_area_fraction(self) -> float:
        return self.shift_compensator_area + self.ir_monitor_area + self.controller_area

    @property
    def total_power_fraction(self) -> float:
        return self.shift_compensator_power + self.ir_monitor_power + self.controller_power


class EnergyModel:
    """Per-macro power/energy model calibrated to the paper's reference design."""

    def __init__(self, nominal_voltage: float = 0.75, nominal_frequency: float = 1.0e9,
                 nominal_macro_power: float = 4.2978e-3, static_power_fraction: float = 0.12,
                 nominal_activity: float = 1.0) -> None:
        """``nominal_macro_power`` is the paper's baseline per-macro power (watts)."""
        self.nominal_voltage = nominal_voltage
        self.nominal_frequency = nominal_frequency
        self.static_power_fraction = static_power_fraction
        dynamic_nominal = nominal_macro_power * (1.0 - static_power_fraction)
        static_nominal = nominal_macro_power * static_power_fraction
        # P_dyn = k_dyn * activity * V^2 * f  ;  P_static = k_static * V
        self._k_dynamic = dynamic_nominal / (
            nominal_activity * nominal_voltage ** 2 * nominal_frequency)
        self._k_static = static_nominal / nominal_voltage

    # -- instantaneous power ---------------------------------------------------- #
    def dynamic_power(self, voltage: float, frequency: float, activity: float) -> float:
        """Watts of switching power for one macro at the given operating point."""
        if activity < 0:
            raise ValueError("activity must be non-negative")
        return self._k_dynamic * activity * voltage ** 2 * frequency

    def static_power(self, voltage: float) -> float:
        """Watts of leakage power for one macro."""
        return self._k_static * voltage

    def macro_power(self, voltage: float, frequency: float, activity: float) -> float:
        return self.dynamic_power(voltage, frequency, activity) + self.static_power(voltage)

    def macro_power_mw(self, voltage: float, frequency: float, activity: float) -> float:
        return self.macro_power(voltage, frequency, activity) * 1e3

    # -- accumulation ------------------------------------------------------------ #
    #: Fraction of the dynamic power a stalled macro still burns (clock tree, idle).
    STALL_DYNAMIC_FRACTION = 0.15

    def accumulate_cycle(self, breakdown: EnergyBreakdown, voltage: float, frequency: float,
                         activity: float, macs_completed: float,
                         stalled: bool = False) -> None:
        """Add one macro-cycle of energy (and work, unless stalled) to ``breakdown``."""
        cycle_time = 1.0 / frequency
        breakdown.static_energy += self.static_power(voltage) * cycle_time
        if not stalled:
            breakdown.dynamic_energy += \
                self.dynamic_power(voltage, frequency, activity) * cycle_time
            breakdown.completed_macs += macs_completed
        else:
            # A stalled macro still burns some clock-tree/idle dynamic power.
            breakdown.dynamic_energy += \
                self.STALL_DYNAMIC_FRACTION * \
                self.dynamic_power(voltage, frequency, activity) * cycle_time
        breakdown.elapsed_time += cycle_time

    def accumulate_cycles(self, breakdown: EnergyBreakdown, voltage: float,
                          frequency: float, activity: np.ndarray, macs_per_cycle: float,
                          stalled: Optional[np.ndarray] = None) -> None:
        """Batched :meth:`accumulate_cycle` over a span at one operating point.

        ``activity`` holds the per-cycle Rtog values of the span; ``stalled``
        (optional boolean array of the same shape) marks cycles spent in a
        recompute stall.  The span's energy is accumulated array-at-a-time —
        up to floating-point summation order, the result matches calling
        :meth:`accumulate_cycle` once per cycle.
        """
        activity = np.asarray(activity, dtype=np.float64)
        n = activity.size
        if n == 0:
            return
        cycle_time = 1.0 / frequency
        breakdown.static_energy += self.static_power(voltage) * cycle_time * n
        if stalled is None:
            effective_activity = float(activity.sum())
            worked = n
        else:
            stalled = np.asarray(stalled, dtype=bool)
            weights = np.where(stalled, self.STALL_DYNAMIC_FRACTION, 1.0)
            effective_activity = float((activity * weights).sum())
            worked = int(n - stalled.sum())
        breakdown.dynamic_energy += \
            self._k_dynamic * effective_activity * voltage ** 2 * frequency * cycle_time
        breakdown.completed_macs += macs_per_cycle * worked
        breakdown.elapsed_time += cycle_time * n

    def accumulate_trace(self, breakdown: EnergyBreakdown, voltages: np.ndarray,
                         frequencies: np.ndarray, activity: np.ndarray,
                         macs_per_cycle: float,
                         stalled: Optional[np.ndarray] = None) -> None:
        """Batched accumulation with *per-cycle* operating points.

        Used by the vectorized engine when a macro's group changed V-f levels
        during the horizon: ``voltages``/``frequencies`` give the operating
        point of every cycle.  Per cycle, dynamic energy is
        ``k_dyn * act * V^2 * f * (1/f) = k_dyn * act * V^2`` and static energy
        is ``k_static * V / f``, so the whole trace reduces to three dot
        products.
        """
        activity = np.asarray(activity, dtype=np.float64)
        voltages = np.asarray(voltages, dtype=np.float64)
        frequencies = np.asarray(frequencies, dtype=np.float64)
        n = activity.size
        if n == 0:
            return
        inverse_f = 1.0 / frequencies
        if stalled is None:
            effective_activity = activity
            worked = n
        else:
            stalled = np.asarray(stalled, dtype=bool)
            effective_activity = activity * np.where(stalled,
                                                     self.STALL_DYNAMIC_FRACTION, 1.0)
            worked = int(n - stalled.sum())
        breakdown.dynamic_energy += \
            self._k_dynamic * float(np.dot(effective_activity, voltages ** 2))
        breakdown.static_energy += self._k_static * float(np.dot(voltages, inverse_f))
        breakdown.completed_macs += macs_per_cycle * worked
        breakdown.elapsed_time += float(inverse_f.sum())

    def accumulate_trace_rows(self, voltages: np.ndarray, frequencies: np.ndarray,
                              activity_rows: np.ndarray,
                              macs_per_cycle_rows: np.ndarray,
                              stalled_rows: np.ndarray) -> list:
        """Row-batched :meth:`accumulate_trace` for macros sharing V/f traces.

        ``activity_rows``/``stalled_rows`` are ``(rows, cycles)`` blocks (one
        row per macro of a group), ``voltages``/``frequencies`` the group's
        shared per-cycle operating point.  Returns one fresh
        :class:`EnergyBreakdown` per row.  The per-row dot products become one
        matrix-vector product and the ``V^2`` / ``1/f`` vectors are computed
        once per group instead of once per macro; results match per-row
        :meth:`accumulate_trace` up to floating-point summation order.
        """
        voltages = np.asarray(voltages, dtype=np.float64)
        activity_rows = np.asarray(activity_rows, dtype=np.float64)
        inverse_f = 1.0 / np.asarray(frequencies, dtype=np.float64)
        n = voltages.size
        stalled_rows = np.asarray(stalled_rows, dtype=bool)
        weights = np.where(stalled_rows, self.STALL_DYNAMIC_FRACTION, 1.0)
        dynamic = self._k_dynamic * ((activity_rows * weights) @ (voltages ** 2))
        static = self._k_static * float(np.dot(voltages, inverse_f))
        elapsed = float(inverse_f.sum())
        worked = n - stalled_rows.sum(axis=1)
        return [EnergyBreakdown(dynamic_energy=float(dynamic[i]),
                                static_energy=static, elapsed_time=elapsed,
                                completed_macs=float(macs_per_cycle_rows[i]) * int(worked[i]))
                for i in range(activity_rows.shape[0])]

    def span_breakdowns(self, voltages: np.ndarray, frequencies: np.ndarray,
                        lengths: np.ndarray, activity_span_sums: np.ndarray,
                        stalled_activity_v2: np.ndarray,
                        worked_cycles: np.ndarray,
                        macs_per_cycle_rows: np.ndarray) -> list:
        """Closed-form row breakdowns from level-stable span aggregates.

        The trace-free counterpart of :meth:`accumulate_trace_rows`: instead
        of per-cycle operating-point vectors it takes one entry per *span* —
        ``voltages``/``frequencies``/``lengths`` describe the group's
        level-stable spans, ``activity_span_sums`` is ``(rows, spans)`` with
        each row's activity summed per span (from cached prefix sums), and
        ``stalled_activity_v2`` is each row's ``sum(activity * V^2)`` over
        its energy-stalled cycles (recompute windows plus failure cycles).
        Per cycle the dynamic energy is ``k_dyn * act * V^2`` and a stalled
        cycle burns :data:`STALL_DYNAMIC_FRACTION` of it, so the whole run
        reduces to one ``(rows, spans) @ (spans,)`` product plus the stall
        correction; static energy and elapsed time are span dot products.
        Matches :meth:`accumulate_trace_rows` up to floating-point summation
        order (<= 1e-9 rtol in the engine equivalence suite).
        """
        voltages = np.asarray(voltages, dtype=np.float64)
        inverse_f = 1.0 / np.asarray(frequencies, dtype=np.float64)
        lengths = np.asarray(lengths, dtype=np.float64)
        dynamic = self._k_dynamic * (
            np.asarray(activity_span_sums, dtype=np.float64) @ voltages ** 2
            - (1.0 - self.STALL_DYNAMIC_FRACTION)
            * np.asarray(stalled_activity_v2, dtype=np.float64))
        static = self._k_static * float(np.dot(lengths * voltages, inverse_f))
        elapsed = float(np.dot(lengths, inverse_f))
        return [EnergyBreakdown(dynamic_energy=float(dynamic[i]),
                                static_energy=static, elapsed_time=elapsed,
                                completed_macs=float(macs_per_cycle_rows[i])
                                * int(worked_cycles[i]))
                for i in range(dynamic.shape[0])]
