"""Architecture-level IR-drop model implementing Equation 2 of the paper.

    IR-drop = dV_static + dV_dynamic
    dV_static  ~= k_lk * I_lk * R_lk
    dV_dynamic ~= (k_sc * I_sc * R_sc + k_sw * I_sw * R_sw) * Rtog

The model is calibrated so that the signoff worst case (every bank toggling
every cycle, Rtog = 100 %) reproduces the paper's 140 mV drop at a 0.75 V
supply, with roughly 10 % of the drop static and 90 % dynamic — consistent with
the paper's observation that dynamic IR-drop dominates in the macros.

Two views are provided:

* :class:`IRDropModel` — the lumped per-macro Eq. 2 estimate used by the
  cycle-level runtime (fast; preserves the Rtog partial order);
* :func:`chip_ir_drop_map` — the spatial view combining per-macro demand
  currents with the :class:`~repro.power.pdn.PowerDeliveryNetwork`, used for
  the Fig. 16 heat maps and Fig. 17 bump traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .pdn import PDNResult, PowerDeliveryNetwork

__all__ = ["IRDropModel", "chip_ir_drop_map"]


@dataclass
class IRDropModel:
    """Lumped Eq.-2 IR-drop model for one macro."""

    supply_voltage: float = 0.75
    signoff_drop: float = 0.140           #: worst-case drop (V) at Rtog = 100 %
    static_fraction: float = 0.10         #: share of the signoff drop that is static
    #: scaling of dynamic current with voltage and frequency relative to nominal
    nominal_frequency: float = 1.0e9

    def __post_init__(self) -> None:
        if not 0 < self.static_fraction < 1:
            raise ValueError("static fraction must be in (0, 1)")
        if self.signoff_drop <= 0 or self.signoff_drop >= self.supply_voltage:
            raise ValueError("signoff drop must be positive and below the supply")

    # -- components ---------------------------------------------------------- #
    @property
    def static_drop(self) -> float:
        """dV_static: leakage-driven drop, independent of activity."""
        return self.signoff_drop * self.static_fraction

    @property
    def dynamic_drop_at_signoff(self) -> float:
        """dV_dynamic at Rtog = 100 %, nominal V and f."""
        return self.signoff_drop * (1.0 - self.static_fraction)

    # -- evaluation ------------------------------------------------------------ #
    def drop(self, rtog: float, voltage: Optional[float] = None,
             frequency: Optional[float] = None) -> float:
        """IR-drop (volts) of a macro running at ``rtog`` activity.

        Dynamic current scales with the operating voltage and frequency
        (C·V·f), so running a macro at a reduced voltage or frequency shrinks
        the dynamic component proportionally — the effect IR-Booster exploits.
        """
        if not 0.0 <= rtog <= 1.0:
            raise ValueError("rtog must be a fraction in [0, 1]")
        voltage = self.supply_voltage if voltage is None else voltage
        frequency = self.nominal_frequency if frequency is None else frequency
        scale = (voltage / self.supply_voltage) * (frequency / self.nominal_frequency)
        return self.static_drop + self.dynamic_drop_at_signoff * rtog * scale

    def drop_array(self, rtog: np.ndarray, voltage: Optional[float] = None,
                   frequency: Optional[float] = None) -> np.ndarray:
        """Vectorized :meth:`drop` over an array of Rtog values."""
        rtog = np.asarray(rtog, dtype=np.float64)
        if rtog.size and (rtog.min() < 0 or rtog.max() > 1):
            raise ValueError("rtog values must be fractions in [0, 1]")
        voltage = self.supply_voltage if voltage is None else voltage
        frequency = self.nominal_frequency if frequency is None else frequency
        scale = (voltage / self.supply_voltage) * (frequency / self.nominal_frequency)
        return self.static_drop + self.dynamic_drop_at_signoff * rtog * scale

    def macro_current(self, rtog: float, voltage: Optional[float] = None,
                      frequency: Optional[float] = None,
                      equivalent_resistance: float = 0.5) -> float:
        """Demand current (amperes) implied by the drop across the macro's PDN path.

        Used to drive the spatial PDN model; ``equivalent_resistance`` is the
        lumped rail resistance between the bumps and the macro (ohms).
        """
        return self.drop(rtog, voltage, frequency) / equivalent_resistance

    def effective_voltage(self, rtog: float, voltage: Optional[float] = None,
                          frequency: Optional[float] = None) -> float:
        """Voltage actually seen by the macro's cells: supply minus IR-drop."""
        voltage = self.supply_voltage if voltage is None else voltage
        return voltage - self.drop(rtog, voltage, frequency)

    def mitigation(self, baseline_rtog: float, improved_rtog: float,
                   baseline_vf: Tuple[float, float] = None,
                   improved_vf: Tuple[float, float] = None) -> float:
        """Fractional IR-drop mitigation between two operating conditions."""
        b_voltage, b_frequency = baseline_vf if baseline_vf else (None, None)
        i_voltage, i_frequency = improved_vf if improved_vf else (None, None)
        before = self.drop(baseline_rtog, b_voltage, b_frequency)
        after = self.drop(improved_rtog, i_voltage, i_frequency)
        if before <= 0:
            return 0.0
        return (before - after) / before


def chip_ir_drop_map(model: IRDropModel, pdn: PowerDeliveryNetwork,
                     macro_rtog: Sequence[float],
                     macro_positions: Sequence[Tuple[int, int]],
                     voltages: Optional[Sequence[float]] = None,
                     frequencies: Optional[Sequence[float]] = None,
                     equivalent_resistance: float = 0.5) -> PDNResult:
    """Spatial IR-drop map for one chip snapshot (Fig. 16 view).

    Each macro's Eq.-2 drop is converted to a demand current and injected at its
    floorplan node; the PDN solve then yields the full-chip voltage/IR-drop map
    including coupling between neighbouring macros.
    """
    macro_rtog = list(macro_rtog)
    voltages = list(voltages) if voltages is not None else [None] * len(macro_rtog)
    frequencies = list(frequencies) if frequencies is not None else [None] * len(macro_rtog)
    currents = [
        model.macro_current(r, v, f, equivalent_resistance)
        for r, v, f in zip(macro_rtog, voltages, frequencies)
    ]
    return pdn.solve_for_macros(currents, macro_positions)
