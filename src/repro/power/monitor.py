"""IR monitor: the on-chip voltage sensor that raises IRFailure signals.

The paper embeds simplified VCO-based voltage monitors between each macro group
and its LDO (Sec. 5.5.2, Fig. 10-(b)).  The monitor compares the effective
supply voltage of the group against the minimum voltage the currently selected
V-f pair was signed off for; dropping below that threshold (plus a small sensor
margin) raises ``IRFailure``, which the Booster Controller turns into a level
change and a recompute.

The behavioural model keeps the two properties that matter to Algorithm 2:

* detection is *thresholded* — small excursions within the signed-off margin
  never fire;
* detection is *noisy* — a configurable Gaussian sensing error means operating
  exactly at the margin produces stochastic failures, whose rate grows with the
  overshoot.  This is what creates the beta trade-off of Fig. 18.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = ["IRMonitorReading", "IRMonitor"]


@dataclass
class IRMonitorReading:
    """One sampling of a group's supply state."""

    cycle: int
    effective_voltage: float
    threshold_voltage: float
    failure: bool

    @property
    def margin(self) -> float:
        """Positive margin means the group is operating safely."""
        return self.effective_voltage - self.threshold_voltage


class IRMonitor:
    """Per-group threshold voltage monitor with sensing noise."""

    def __init__(self, min_voltage_margin: float = 0.0, sensing_noise: float = 0.004,
                 seed: int = 0) -> None:
        self.min_voltage_margin = min_voltage_margin
        self.sensing_noise = sensing_noise
        self._rng = np.random.default_rng(seed)
        self.readings: List[IRMonitorReading] = []

    def reset(self) -> None:
        self.readings.clear()

    def sample(self, cycle: int, effective_voltage: float, threshold_voltage: float) -> bool:
        """Return True when an IRFailure must be raised for this cycle."""
        sensed = effective_voltage + self._rng.normal(0.0, self.sensing_noise) \
            if self.sensing_noise > 0 else effective_voltage
        failure = sensed < threshold_voltage + self.min_voltage_margin
        self.readings.append(IRMonitorReading(
            cycle=cycle, effective_voltage=effective_voltage,
            threshold_voltage=threshold_voltage, failure=failure))
        return failure

    @property
    def failure_count(self) -> int:
        return sum(1 for r in self.readings if r.failure)

    @property
    def failure_rate(self) -> float:
        if not self.readings:
            return 0.0
        return self.failure_count / len(self.readings)

    @property
    def overhead_area_fraction(self) -> float:
        """Paper Sec. 6.10.2: the simplified monitor costs < 0.1 % chip area."""
        return 0.001

    @property
    def overhead_power_fraction(self) -> float:
        """Paper Sec. 6.10.2: the simplified monitor costs < 0.5 % chip power."""
        return 0.005
