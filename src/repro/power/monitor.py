"""IR monitor: the on-chip voltage sensor that raises IRFailure signals.

The paper embeds simplified VCO-based voltage monitors between each macro group
and its LDO (Sec. 5.5.2, Fig. 10-(b)).  The monitor compares the effective
supply voltage of the group against the minimum voltage the currently selected
V-f pair was signed off for; dropping below that threshold (plus a small sensor
margin) raises ``IRFailure``, which the Booster Controller turns into a level
change and a recompute.

The behavioural model keeps the two properties that matter to Algorithm 2:

* detection is *thresholded* — small excursions within the signed-off margin
  never fire;
* detection is *noisy* — a configurable Gaussian sensing error means operating
  exactly at the margin produces stochastic failures, whose rate grows with the
  overshoot.  This is what creates the beta trade-off of Fig. 18.

The sensing error is modelled per *cycle*, not per sample: the monitor is one
physical sensor, so every comparison made against it within the same cycle sees
the same sensed value.  The noise stream is indexed by cycle number — cycle
``c`` always consumes the ``c``-th draw of the monitor's RNG regardless of how
many (or how few) samples were actually taken — which keeps seeded runs
reproducible across simulation engines that sample the monitor in different
orders or skip stalled cycles entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

__all__ = ["IRMonitorReading", "IRMonitor"]


@dataclass
class IRMonitorReading:
    """One sampling of a group's supply state."""

    cycle: int
    effective_voltage: float
    threshold_voltage: float
    failure: bool

    @property
    def margin(self) -> float:
        """Positive margin means the group is operating safely."""
        return self.effective_voltage - self.threshold_voltage


class IRMonitor:
    """Per-group threshold voltage monitor with cycle-indexed sensing noise.

    ``record_readings`` keeps the per-sample :class:`IRMonitorReading` history
    (handy for analysis and tests, but one Python object per sample).  Long
    simulation runs disable it — failure statistics stay available through the
    counters either way.  ``max_readings`` bounds the history when recording is
    on: the most recent readings win.
    """

    def __init__(self, min_voltage_margin: float = 0.0, sensing_noise: float = 0.004,
                 seed: int = 0, record_readings: bool = True,
                 max_readings: Optional[int] = None) -> None:
        if max_readings is not None and max_readings <= 0:
            raise ValueError("max_readings must be positive (or None for unbounded)")
        self.min_voltage_margin = min_voltage_margin
        self.sensing_noise = sensing_noise
        self.record_readings = record_readings
        self.max_readings = max_readings
        self._seed = seed
        self.readings: List[IRMonitorReading] = []
        self._reset_stream()

    def _reset_stream(self) -> None:
        self._rng = np.random.default_rng(self._seed)
        self._next_cycle = 0
        self._current_noise = 0.0
        self._samples = 0
        self._failures = 0

    def reset(self) -> None:
        self.readings.clear()
        self._reset_stream()

    # ------------------------------------------------------------------ #
    # noise stream
    # ------------------------------------------------------------------ #
    def noise_at(self, cycle: int) -> float:
        """Sensing error for ``cycle`` (the ``cycle``-th draw of the stream).

        Cycles must be visited in non-decreasing order; skipped cycles still
        consume their draw so the stream stays aligned with the cycle index.
        """
        if self.sensing_noise <= 0:
            return 0.0
        if cycle < self._next_cycle - 1:
            raise ValueError(
                f"monitor noise stream already advanced past cycle {cycle}")
        if cycle >= self._next_cycle:
            draws = self._rng.normal(0.0, self.sensing_noise,
                                     size=cycle - self._next_cycle + 1)
            self._current_noise = float(draws[-1])
            self._next_cycle = cycle + 1
        return self._current_noise

    def noise_for_cycles(self, cycles: int) -> np.ndarray:
        """The next ``cycles`` per-cycle noise values as one array.

        Equivalent to ``[noise_at(c) for c in range(next, next + cycles)]`` but
        drawn in a single batch; used by the vectorized simulation engine.
        """
        if cycles <= 0:
            return np.zeros(0)
        if self.sensing_noise <= 0:
            return np.zeros(cycles)
        draws = self._rng.normal(0.0, self.sensing_noise, size=cycles)
        self._current_noise = float(draws[-1])
        self._next_cycle += cycles
        return draws

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def sample(self, cycle: int, effective_voltage: float, threshold_voltage: float) -> bool:
        """Return True when an IRFailure must be raised for this cycle."""
        sensed = effective_voltage + self.noise_at(cycle)
        failure = bool(sensed < threshold_voltage + self.min_voltage_margin)
        self._samples += 1
        self._failures += failure
        if self.record_readings:
            self.readings.append(IRMonitorReading(
                cycle=cycle, effective_voltage=effective_voltage,
                threshold_voltage=threshold_voltage, failure=failure))
            if self.max_readings is not None and len(self.readings) > self.max_readings:
                del self.readings[:len(self.readings) - self.max_readings]
        return failure

    def sample_batch(self, start_cycle: int, effective_voltages: np.ndarray,
                     threshold_voltage: float) -> np.ndarray:
        """Vectorized :meth:`sample` over consecutive cycles.

        ``effective_voltages[i]`` is the group's effective voltage at cycle
        ``start_cycle + i``; returns the boolean failure array.  Readings are
        captured only when ``record_readings`` is on (bounded by
        ``max_readings``), so long horizons stay allocation-free.
        """
        effective_voltages = np.asarray(effective_voltages, dtype=np.float64)
        n = effective_voltages.size
        if n == 0:
            return np.zeros(0, dtype=bool)
        if self.sensing_noise > 0:
            if start_cycle < self._next_cycle:
                raise ValueError(
                    f"monitor noise stream already advanced past cycle {start_cycle}")
            if start_cycle > self._next_cycle:
                # Skipped cycles still consume their draws (stream stays
                # aligned with the cycle index).
                self._rng.normal(0.0, self.sensing_noise,
                                 size=start_cycle - self._next_cycle)
                self._next_cycle = start_cycle
        noise = self.noise_for_cycles(n)
        sensed = effective_voltages + noise
        failures = sensed < threshold_voltage + self.min_voltage_margin
        self._samples += n
        self._failures += int(failures.sum())
        if self.record_readings:
            capture = range(n)
            if self.max_readings is not None:
                capture = range(max(0, n - self.max_readings), n)
            for i in capture:
                self.readings.append(IRMonitorReading(
                    cycle=start_cycle + i,
                    effective_voltage=float(effective_voltages[i]),
                    threshold_voltage=threshold_voltage, failure=bool(failures[i])))
            if self.max_readings is not None and len(self.readings) > self.max_readings:
                del self.readings[:len(self.readings) - self.max_readings]
        return failures

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    @property
    def failure_count(self) -> int:
        return self._failures

    @property
    def failure_rate(self) -> float:
        if self._samples == 0:
            return 0.0
        return self._failures / self._samples

    @property
    def overhead_area_fraction(self) -> float:
        """Paper Sec. 6.10.2: the simplified monitor costs < 0.1 % chip area."""
        return 0.001

    @property
    def overhead_power_fraction(self) -> float:
        """Paper Sec. 6.10.2: the simplified monitor costs < 0.5 % chip power."""
        return 0.005
