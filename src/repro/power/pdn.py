"""Power delivery network (PDN) model: a resistive mesh solved with sparse LA.

The paper validates AIM with RedHawk post-layout IR-drop maps (Fig. 16) and
bump current/voltage traces (Fig. 17).  This module substitutes a classical
resistive-grid PDN: supply bumps at fixed pads feed a 2-D mesh of on-chip power
rails; each macro injects its demand current at its floorplan node; nodal
analysis (a sparse Laplacian solve) yields the voltage at every node, and the
IR-drop map is ``V_supply - V_node``.

The mesh preserves exactly the properties AIM depends on: IR-drop grows with
local current density, neighbouring macros couple through shared rails, and
the worst drop concentrates where the most active macros cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = ["PDNResult", "PowerDeliveryNetwork"]


@dataclass
class PDNResult:
    """Solved PDN state for one current injection pattern."""

    node_voltage: np.ndarray        #: (rows, cols) node voltages in volts
    ir_drop: np.ndarray             #: (rows, cols) V_supply - V_node
    bump_current: np.ndarray        #: per-bump current in amperes
    total_current: float

    @property
    def worst_drop(self) -> float:
        return float(self.ir_drop.max()) if self.ir_drop.size else 0.0

    @property
    def mean_drop(self) -> float:
        return float(self.ir_drop.mean()) if self.ir_drop.size else 0.0


class PowerDeliveryNetwork:
    """Resistive mesh PDN with supply bumps at the grid corners and edges."""

    def __init__(self, rows: int, cols: int, supply_voltage: float = 0.75,
                 rail_resistance: float = 0.05, bump_resistance: float = 0.01,
                 bumps_per_edge: int = 2) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("grid dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.supply_voltage = supply_voltage
        self.rail_resistance = rail_resistance
        self.bump_resistance = bump_resistance
        self.bump_nodes = self._place_bumps(bumps_per_edge)
        self._laplacian = self._build_laplacian()
        self._factorized = spla.factorized(self._laplacian.tocsc())

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _node_index(self, row: int, col: int) -> int:
        return row * self.cols + col

    def _place_bumps(self, bumps_per_edge: int) -> List[int]:
        """Distribute supply bumps along the grid perimeter (plus corners)."""
        positions = set()
        for i in range(max(2, bumps_per_edge)):
            frac = i / max(1, bumps_per_edge - 1) if bumps_per_edge > 1 else 0.0
            r = int(round(frac * (self.rows - 1)))
            c = int(round(frac * (self.cols - 1)))
            positions.add(self._node_index(0, c))
            positions.add(self._node_index(self.rows - 1, c))
            positions.add(self._node_index(r, 0))
            positions.add(self._node_index(r, self.cols - 1))
        return sorted(positions)

    def _build_laplacian(self) -> sp.csr_matrix:
        """Conductance (Laplacian) matrix of the mesh plus bump conductances."""
        n = self.rows * self.cols
        g_rail = 1.0 / self.rail_resistance
        g_bump = 1.0 / self.bump_resistance
        rows_idx: List[int] = []
        cols_idx: List[int] = []
        values: List[float] = []

        def add(i: int, j: int, g: float) -> None:
            rows_idx.extend([i, j, i, j])
            cols_idx.extend([j, i, i, j])
            values.extend([-g, -g, g, g])

        for r in range(self.rows):
            for c in range(self.cols):
                node = self._node_index(r, c)
                if c + 1 < self.cols:
                    add(node, self._node_index(r, c + 1), g_rail)
                if r + 1 < self.rows:
                    add(node, self._node_index(r + 1, c), g_rail)
        matrix = sp.coo_matrix((values, (rows_idx, cols_idx)), shape=(n, n)).tolil()
        # Bump conductance to the ideal supply acts as a diagonal term.
        for node in self.bump_nodes:
            matrix[node, node] += g_bump
        return matrix.tocsr()

    # ------------------------------------------------------------------ #
    # solve
    # ------------------------------------------------------------------ #
    def solve(self, current_map: np.ndarray) -> PDNResult:
        """Solve node voltages for a (rows, cols) map of demand currents (amperes).

        Nodal analysis with the supply folded in: ``G * v = i_bump - i_demand``
        where bump nodes source ``g_bump * V_supply``.
        """
        current_map = np.asarray(current_map, dtype=np.float64)
        if current_map.shape != (self.rows, self.cols):
            raise ValueError(
                f"current map shape {current_map.shape} != grid {(self.rows, self.cols)}")
        if np.any(current_map < 0):
            raise ValueError("demand currents must be non-negative")
        injection = -current_map.reshape(-1).copy()
        g_bump = 1.0 / self.bump_resistance
        for node in self.bump_nodes:
            injection[node] += g_bump * self.supply_voltage
        voltages = self._factorized(injection)
        grid_v = voltages.reshape(self.rows, self.cols)
        ir_drop = self.supply_voltage - grid_v
        bump_current = np.array([
            (self.supply_voltage - voltages[node]) * g_bump for node in self.bump_nodes])
        return PDNResult(node_voltage=grid_v, ir_drop=ir_drop,
                         bump_current=bump_current,
                         total_current=float(current_map.sum()))

    def solve_for_macros(self, macro_currents: Sequence[float],
                         macro_positions: Sequence[Tuple[int, int]]) -> PDNResult:
        """Solve with per-macro currents placed at their floorplan positions."""
        current_map = np.zeros((self.rows, self.cols))
        for current, (r, c) in zip(macro_currents, macro_positions):
            if not (0 <= r < self.rows and 0 <= c < self.cols):
                raise IndexError(f"macro position {(r, c)} outside the PDN grid")
            current_map[r, c] += current
        return self.solve(current_map)
