"""Voltage-frequency pair tables for IR-Booster and the DVFS baseline.

The paper's IR-Booster reserves, per macro group, a grid of V-f pairs indexed
by *level* — the Rtog fraction the pair is signed off for (Sec. 5.5.1, Fig. 9).
The level range is 20 %–60 % in 5 % steps plus the 100 % DVFS signoff level.

The underlying electrical model used to generate the pairs:

* the worst-case dynamic IR-drop at supply ``V`` and frequency ``f`` is
  ``drop = signoff_drop * (V / V_nom) * (f / f_nom)`` (current scales with both);
* a pair signed off at level ``L`` only has to tolerate ``L * drop``;
* timing closure at frequency ``f`` requires the *effective* voltage
  ``V - L*drop`` to satisfy the alpha-power delay model
  ``f <= f_nom * ((V_eff - V_th) / (V_nom - V_th)) ** alpha``.

Solving for the minimum safe ``V`` at each (level, f) yields the IR-Booster
property shown in Fig. 9: at the same frequency a lower level allows a lower
voltage, and at the same voltage a lower level allows a higher frequency —
whereas classic DVFS (level = 100 %) can only move along its single V-f curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["VFPair", "VFTable", "DEFAULT_LEVELS", "build_default_vf_table"]

#: IR-Booster levels (Rtog percentages) from the paper: 20..60 step 5, plus DVFS 100.
DEFAULT_LEVELS: Tuple[int, ...] = (20, 25, 30, 35, 40, 45, 50, 55, 60, 100)


@dataclass(frozen=True)
class VFPair:
    """One validated operating point of a macro group."""

    level: int            #: signed-off Rtog level in percent
    voltage: float        #: supply voltage in volts
    frequency: float      #: clock frequency in hertz

    @property
    def dynamic_power_factor(self) -> float:
        """Relative C*V^2*f factor (1.0 at the nominal point of the table)."""
        return self.voltage ** 2 * self.frequency


class VFTable:
    """The per-group grid of V-f pairs indexed by level and frequency step."""

    def __init__(self, nominal_voltage: float = 0.75, nominal_frequency: float = 1.0e9,
                 signoff_ir_drop: float = 0.140, threshold_voltage: float = 0.30,
                 alpha: float = 1.3, frequency_steps: int = 5,
                 frequency_range: Tuple[float, float] = (0.7, 1.3),
                 levels: Sequence[int] = DEFAULT_LEVELS) -> None:
        if not 0 < threshold_voltage < nominal_voltage:
            raise ValueError("threshold voltage must be below the nominal supply")
        self.nominal_voltage = nominal_voltage
        self.nominal_frequency = nominal_frequency
        self.signoff_ir_drop = signoff_ir_drop
        self.threshold_voltage = threshold_voltage
        self.alpha = alpha
        self.levels: Tuple[int, ...] = tuple(sorted(set(int(l) for l in levels)))
        low, high = frequency_range
        self.frequencies: np.ndarray = np.linspace(low, high, frequency_steps) * nominal_frequency
        self._pairs: Dict[int, List[VFPair]] = {
            level: [self._solve_pair(level, f) for f in self.frequencies]
            for level in self.levels
        }
        # Neighbor lookups are pure functions of the (immutable) level
        # ladder and sit on the Algorithm-2 transition hot path — one
        # memoized entry per distinct queried level.
        self._below_memo: Dict[int, int] = {}
        self._above_memo: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # electrical model
    # ------------------------------------------------------------------ #
    def minimum_voltage(self, level: int, frequency: float) -> float:
        """Smallest supply voltage that closes timing at ``frequency`` for ``level``.

        The timing reference point is the nominal design: at ``f_nom`` the cells
        were closed against an effective voltage of ``V_nom - signoff_drop``
        (the supply minus the worst-case IR-drop margin), which is why the DVFS
        row of the table reproduces the paper's 0.75 V nominal supply.
        """
        ratio = frequency / self.nominal_frequency
        nominal_effective = self.nominal_voltage - self.signoff_ir_drop
        v_eff_required = self.threshold_voltage + \
            (nominal_effective - self.threshold_voltage) * ratio ** (1.0 / self.alpha)
        # V - (level/100) * signoff_drop * (V/V_nom) * ratio >= v_eff_required
        drop_coefficient = (level / 100.0) * self.signoff_ir_drop * ratio / self.nominal_voltage
        if drop_coefficient >= 1.0:
            raise ValueError("IR-drop model diverges; check signoff drop and frequency range")
        return v_eff_required / (1.0 - drop_coefficient)

    def worst_case_drop(self, level: int, voltage: float, frequency: float) -> float:
        """Largest IR-drop (volts) the pair was signed off to tolerate."""
        ratio = frequency / self.nominal_frequency
        return (level / 100.0) * self.signoff_ir_drop * (voltage / self.nominal_voltage) * ratio

    def _solve_pair(self, level: int, frequency: float) -> VFPair:
        return VFPair(level=level, voltage=self.minimum_voltage(level, frequency),
                      frequency=frequency)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def pairs_for_level(self, level: int) -> List[VFPair]:
        if level not in self._pairs:
            raise KeyError(f"level {level} not in table; available: {self.levels}")
        return list(self._pairs[level])

    def nearest_level_at_or_above(self, rtog_fraction: float) -> int:
        """Smallest table level that still covers ``rtog_fraction`` (HR-based safe level)."""
        percent = rtog_fraction * 100.0
        candidates = [lvl for lvl in self.levels if lvl >= percent - 1e-9]
        if not candidates:
            return max(self.levels)
        return min(candidates)

    def level_below(self, level: int) -> int:
        """The next lower (safer-performance, more aggressive) level, clamped."""
        hit = self._below_memo.get(level)
        if hit is None:
            lower = [lvl for lvl in self.levels if lvl < level and lvl != 100]
            hit = max(lower) if lower \
                else min(l for l in self.levels if l != 100)
            self._below_memo[level] = hit
        return hit

    def level_above(self, level: int) -> int:
        """The next higher (more conservative) level, clamped below 100."""
        hit = self._above_memo.get(level)
        if hit is None:
            upper = [lvl for lvl in self.levels if level < lvl < 100]
            hit = min(upper) if upper \
                else max(l for l in self.levels if l != 100)
            self._above_memo[level] = hit
        return hit

    def select_pair(self, level: int, mode: str = "sprint") -> VFPair:
        """Pick the pair within a level's subset according to the operating mode.

        ``sprint``      — highest frequency (throughput-first, Sec. 5.5.1);
        ``low_power``   — lowest dynamic power factor (V^2 * f).
        """
        pairs = self.pairs_for_level(level)
        if mode == "sprint":
            return max(pairs, key=lambda p: p.frequency)
        if mode == "low_power":
            return min(pairs, key=lambda p: p.dynamic_power_factor)
        raise ValueError(f"unknown mode {mode!r}; expected 'sprint' or 'low_power'")

    def dvfs_pair(self, mode: str = "sprint") -> VFPair:
        """The baseline DVFS operating point (always the 100 % signoff level)."""
        return self.select_pair(100, mode)

    def nominal_dvfs_pair(self) -> VFPair:
        """The signoff operating point: the 100 %-level pair at the nominal frequency.

        This is the paper's baseline (0.75 V / 1 GHz on the reference chip): the
        point every AIM improvement is measured against.
        """
        pairs = self.pairs_for_level(100)
        return min(pairs, key=lambda p: abs(p.frequency - self.nominal_frequency))

    def booster_levels(self) -> List[int]:
        """Levels available to IR-Booster (everything except the 100 % DVFS row)."""
        return [lvl for lvl in self.levels if lvl != 100]

    def as_grid(self) -> Dict[int, List[VFPair]]:
        """Full level -> pairs mapping (copy), handy for reports and tests."""
        return {level: list(pairs) for level, pairs in self._pairs.items()}
