"""Quantization, PTQ and pruning flows used by the AIM software experiments."""

from .observer import MinMaxObserver, PercentileObserver, quantize_activations
from .pruning import PruningConfig, PruningResult, gradual_magnitude_prune, model_sparsity
from .ptq import PTQConfig, PTQResult, ptq_brecq_like, ptq_omniquant_like
from .qat import QATConfig, QATResult, evaluate_task_metric, hr_summary, run_qat
from .quantizer import (
    QuantizedLayer,
    dequantize,
    fake_quantize,
    model_scales,
    model_weight_codes,
    quantization_error,
    quantize,
    quantize_model,
    symmetric_scale,
)

__all__ = [
    "symmetric_scale", "quantize", "dequantize", "fake_quantize", "quantization_error",
    "QuantizedLayer", "quantize_model", "model_weight_codes", "model_scales",
    "MinMaxObserver", "PercentileObserver", "quantize_activations",
    "QATConfig", "QATResult", "run_qat", "evaluate_task_metric", "hr_summary",
    "PTQConfig", "PTQResult", "ptq_omniquant_like", "ptq_brecq_like",
    "PruningConfig", "PruningResult", "gradual_magnitude_prune", "model_sparsity",
]
