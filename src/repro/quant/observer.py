"""Activation observers used to calibrate input quantization.

The PIM macros receive activations as bit-serial integer streams, so the
compiler needs a per-operator activation scale.  Observers accumulate
statistics over calibration batches and emit a symmetric scale, either from the
running max-abs (:class:`MinMaxObserver`) or from a percentile of the absolute
values (:class:`PercentileObserver`), which is more robust to outliers in
transformer activations.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .quantizer import quantize

__all__ = ["MinMaxObserver", "PercentileObserver", "quantize_activations"]


class MinMaxObserver:
    """Tracks the running maximum absolute activation value."""

    def __init__(self, bits: int = 8) -> None:
        self.bits = bits
        self._max_abs = 0.0
        self._observed = False

    def observe(self, activations: np.ndarray) -> None:
        activations = np.asarray(activations)
        if activations.size == 0:
            return
        self._max_abs = max(self._max_abs, float(np.abs(activations).max()))
        self._observed = True

    @property
    def scale(self) -> float:
        if not self._observed:
            raise RuntimeError("observer has not seen any activations")
        qmax = (1 << (self.bits - 1)) - 1
        return max(self._max_abs / qmax, 1e-12)


class PercentileObserver:
    """Tracks a percentile of absolute activations (clips extreme outliers)."""

    def __init__(self, bits: int = 8, percentile: float = 99.5,
                 reservoir_size: int = 16384, seed: int = 0) -> None:
        if not 0 < percentile <= 100:
            raise ValueError("percentile must be in (0, 100]")
        self.bits = bits
        self.percentile = percentile
        self.reservoir_size = reservoir_size
        self._samples: List[np.ndarray] = []
        self._count = 0
        self._rng = np.random.default_rng(seed)

    def observe(self, activations: np.ndarray) -> None:
        values = np.abs(np.asarray(activations, dtype=np.float64)).reshape(-1)
        if values.size == 0:
            return
        if values.size > self.reservoir_size:
            values = self._rng.choice(values, self.reservoir_size, replace=False)
        self._samples.append(values)
        self._count += values.size
        # Keep the reservoir bounded.
        total = sum(s.size for s in self._samples)
        while total > 4 * self.reservoir_size and len(self._samples) > 1:
            total -= self._samples.pop(0).size

    @property
    def scale(self) -> float:
        if not self._samples:
            raise RuntimeError("observer has not seen any activations")
        values = np.concatenate(self._samples)
        limit = float(np.percentile(values, self.percentile))
        qmax = (1 << (self.bits - 1)) - 1
        return max(limit / qmax, 1e-12)


def quantize_activations(activations: np.ndarray, observer) -> np.ndarray:
    """Quantize activations with a calibrated observer's scale."""
    return quantize(activations, observer.scale, observer.bits)
