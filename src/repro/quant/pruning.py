"""Gradual magnitude pruning (GMP*-like) used in the Fig. 15 comparison.

The paper compares LHR/WDS against — and combines them with — magnitude
pruning at sparsity targets of 10–50 %.  Pruning reduces HR "for free" because
pruned weights become the all-zero code, but it changes weight values far more
aggressively than LHR and therefore costs more accuracy at high sparsity.

The implementation follows the gradual-magnitude-pruning recipe: sparsity is
increased over several steps following a cubic schedule, the smallest-magnitude
weights are masked at each step, and the surviving weights are fine-tuned for a
few mini-batches between steps with the mask re-applied after every optimizer
update.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.metrics import hamming_rate
from ..models.registry import ModelSpec
from ..nn.data import Dataset
from ..nn.layers import Module
from ..nn.optim import Adam
from .qat import _batch_loss, evaluate_task_metric
from .quantizer import QuantizedLayer, model_scales, quantize_model

__all__ = ["PruningConfig", "PruningResult", "gradual_magnitude_prune", "model_sparsity"]


@dataclass
class PruningConfig:
    """Hyper-parameters of a gradual-magnitude-pruning run."""

    target_sparsity: float = 0.3
    steps: int = 4
    finetune_batches: int = 8
    batch_size: int = 32
    learning_rate: float = 5e-4
    bits: int = 8                      #: bit-width used for the post-pruning HR snapshot
    seed: int = 0

    def sparsity_schedule(self) -> List[float]:
        """Cubic ramp from 0 to ``target_sparsity`` (the GMP schedule)."""
        fractions = 1.0 - (1.0 - np.arange(1, self.steps + 1) / self.steps) ** 3
        return [float(self.target_sparsity * f) for f in fractions]


@dataclass
class PruningResult:
    """Outcome of a pruning run: masks, sparsity, HR and task metric."""

    model: Module
    config: PruningConfig
    masks: Dict[str, np.ndarray]
    metric: float
    metric_name: str
    quantized: Dict[str, QuantizedLayer] = field(default_factory=dict)

    @property
    def sparsity(self) -> float:
        total = sum(mask.size for mask in self.masks.values())
        zeros = sum(int((~mask.astype(bool)).sum()) for mask in self.masks.values())
        return zeros / max(1, total)

    @property
    def hr_average(self) -> float:
        rates = [hamming_rate(q.codes, q.bits) for q in self.quantized.values()]
        return float(np.mean(rates)) if rates else 0.0

    def weight_codes(self) -> Dict[str, np.ndarray]:
        return {name: q.codes for name, q in self.quantized.items()}


def model_sparsity(model: Module) -> float:
    """Fraction of exactly-zero weights across the model's weight layers."""
    total = 0
    zeros = 0
    for _, layer in model.weight_layers():
        total += layer.weight.size
        zeros += int(np.count_nonzero(layer.weight.data == 0.0))
    return zeros / max(1, total)


def _apply_masks(model: Module, masks: Dict[str, np.ndarray]) -> None:
    for name, layer in model.weight_layers():
        if name in masks:
            layer.weight.data = layer.weight.data * masks[name]


def _compute_masks(model: Module, sparsity: float) -> Dict[str, np.ndarray]:
    """Global magnitude threshold so that ``sparsity`` of all weights are zeroed."""
    magnitudes = np.concatenate([
        np.abs(layer.weight.data).reshape(-1) for _, layer in model.weight_layers()])
    if magnitudes.size == 0 or sparsity <= 0:
        return {name: np.ones_like(layer.weight.data) for name, layer in model.weight_layers()}
    threshold = np.quantile(magnitudes, min(sparsity, 0.9999))
    return {
        name: (np.abs(layer.weight.data) > threshold).astype(np.float64)
        for name, layer in model.weight_layers()
    }


def gradual_magnitude_prune(spec: ModelSpec, config: PruningConfig,
                            model: Optional[Module] = None,
                            dataset: Optional[Dataset] = None) -> PruningResult:
    """Prune ``model`` to the target sparsity with interleaved fine-tuning."""
    model = model if model is not None else spec.build()
    dataset = dataset if dataset is not None else spec.dataset()
    rng = np.random.default_rng(config.seed)
    optimizer = Adam(model.parameters(), lr=config.learning_rate)

    masks: Dict[str, np.ndarray] = {}
    for step_sparsity in config.sparsity_schedule():
        masks = _compute_masks(model, step_sparsity)
        _apply_masks(model, masks)
        # Short fine-tuning with the mask re-applied after each update.
        batches_done = 0
        model.train()
        for batch in dataset.batches(config.batch_size, shuffle=True, rng=rng):
            loss = _batch_loss(spec.task, model, batch.inputs, batch.targets)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            _apply_masks(model, masks)
            batches_done += 1
            if batches_done >= config.finetune_batches:
                break

    scales = model_scales(model, config.bits)
    quantized = quantize_model(model, config.bits, scales=scales)
    metric = evaluate_task_metric(spec.task, model, dataset, config.batch_size)
    return PruningResult(model=model, config=config, masks=masks, metric=metric,
                         metric_name=spec.metric_name, quantized=quantized)
