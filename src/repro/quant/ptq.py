"""Post-training quantization (PTQ) methods with optional LHR integration.

Table 3 of the paper combines LHR with two published PTQ algorithms:
OmniQuant (learned clipping for LLMs) and BRECQ (block reconstruction with
adaptive rounding for CNNs).  Neither original implementation is available
offline, so this module provides *-like* stand-ins that exercise the same
decision structure:

* :func:`ptq_omniquant_like` — per-layer **clipping search**: grid-search the
  symmetric-scale quantile that minimizes weight reconstruction error (plus an
  optional HR penalty when LHR is enabled), mirroring OmniQuant's learnable
  weight clipping.
* :func:`ptq_brecq_like` — per-layer **adaptive rounding**: start from
  round-to-nearest and greedily flip individual weights to their other
  neighbouring code when doing so reduces the blended
  reconstruction-error/HR objective, mirroring BRECQ/AdaRound's learned
  rounding but with a deterministic coordinate-descent search.

Both methods leave the float model untouched (PTQ never retrains), produce
per-layer :class:`~repro.quant.quantizer.QuantizedLayer` snapshots, and report
the task metric of the deployed quantized model — exactly the quantities
Table 3 tracks (HRaver plus ppl/accuracy, with and without LHR).

The key qualitative behaviour reproduced: because PTQ cannot move weights far
from their trained values, the HR reduction from "+LHR" is smaller than under
QAT, while the accuracy/perplexity impact stays negligible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.lhr import integer_hamming_table
from ..core.metrics import hamming_rate
from ..models.registry import ModelSpec
from ..nn.data import Dataset
from ..nn.layers import Module
from .qat import evaluate_task_metric
from .quantizer import (
    QuantizedLayer,
    dequantize,
    quantize,
    symmetric_scale,
)

__all__ = ["PTQConfig", "PTQResult", "ptq_omniquant_like", "ptq_brecq_like"]


@dataclass
class PTQConfig:
    """Hyper-parameters shared by the PTQ flows."""

    bits: int = 8
    use_lhr: bool = False
    lhr_weight: float = 0.15          #: blend factor between HR and reconstruction error
    clip_quantiles: Sequence[float] = (1.0, 0.999, 0.995, 0.99, 0.97, 0.95)
    rounding_tolerance: float = 0.6   #: max extra rounding error (in LSBs) LHR may add
    max_flip_fraction: float = 0.35   #: cap on the fraction of weights adaptive rounding may flip
    seed: int = 0


@dataclass
class PTQResult:
    """Outcome of a PTQ run."""

    model: Module
    config: PTQConfig
    quantized: Dict[str, QuantizedLayer]
    metric: float
    metric_name: str
    method: str

    @property
    def layer_hr(self) -> Dict[str, float]:
        return {name: hamming_rate(q.codes, q.bits) for name, q in self.quantized.items()}

    @property
    def hr_average(self) -> float:
        values = list(self.layer_hr.values())
        return float(np.mean(values)) if values else 0.0

    @property
    def hr_max(self) -> float:
        values = list(self.layer_hr.values())
        return float(np.max(values)) if values else 0.0

    def weight_codes(self) -> Dict[str, np.ndarray]:
        return {name: q.codes for name, q in self.quantized.items()}


# --------------------------------------------------------------------------- #
# shared helpers
# --------------------------------------------------------------------------- #
def _deploy(model: Module, quantized: Dict[str, QuantizedLayer]) -> None:
    for name, layer in model.weight_layers():
        if name in quantized:
            layer.weight.data = quantized[name].dequantized


def _hamming_rates_of_codes(codes: np.ndarray, bits: int) -> np.ndarray:
    """Per-element HR lookup for integer codes."""
    table = integer_hamming_table(bits)
    qmin = -(1 << (bits - 1))
    return table[np.asarray(codes, dtype=np.int64) - qmin]


# --------------------------------------------------------------------------- #
# OmniQuant-like: clipping (scale quantile) search
# --------------------------------------------------------------------------- #
def ptq_omniquant_like(spec: ModelSpec, config: PTQConfig,
                       model: Optional[Module] = None,
                       dataset: Optional[Dataset] = None) -> PTQResult:
    """Per-layer clipping search, optionally HR-aware (OmniQuant stand-in)."""
    model = model if model is not None else spec.build()
    dataset = dataset if dataset is not None else spec.dataset()
    quantized: Dict[str, QuantizedLayer] = {}

    for name, layer in model.weight_layers():
        weight = layer.weight.data
        best: Optional[QuantizedLayer] = None
        best_score = np.inf
        for quantile in config.clip_quantiles:
            scale = symmetric_scale(weight, config.bits, quantile)
            codes = quantize(weight, scale, config.bits)
            reconstruction = float(np.mean((weight - dequantize(codes, scale)) ** 2))
            normalizer = float(np.mean(weight ** 2)) + 1e-12
            score = reconstruction / normalizer
            if config.use_lhr:
                score = (1.0 - config.lhr_weight) * score + \
                    config.lhr_weight * hamming_rate(codes, config.bits)
            if score < best_score:
                best_score = score
                best = QuantizedLayer(name=name, codes=codes, scale=scale, bits=config.bits)
        assert best is not None
        if config.use_lhr:
            best = _lhr_biased_rounding(best, weight, config)
        quantized[name] = best

    _deploy(model, quantized)
    metric = evaluate_task_metric(spec.task, model, dataset)
    return PTQResult(model=model, config=config, quantized=quantized, metric=metric,
                     metric_name=spec.metric_name, method="omniquant-like")


# --------------------------------------------------------------------------- #
# BRECQ-like: adaptive rounding by coordinate descent
# --------------------------------------------------------------------------- #
def ptq_brecq_like(spec: ModelSpec, config: PTQConfig,
                   model: Optional[Module] = None,
                   dataset: Optional[Dataset] = None) -> PTQResult:
    """Per-layer adaptive rounding, optionally HR-aware (BRECQ stand-in)."""
    model = model if model is not None else spec.build()
    dataset = dataset if dataset is not None else spec.dataset()
    quantized: Dict[str, QuantizedLayer] = {}

    for name, layer in model.weight_layers():
        weight = layer.weight.data
        scale = symmetric_scale(weight, config.bits)
        base = QuantizedLayer(name=name, codes=quantize(weight, scale, config.bits),
                              scale=scale, bits=config.bits)
        if config.use_lhr:
            base = _lhr_biased_rounding(base, weight, config)
        quantized[name] = base

    _deploy(model, quantized)
    metric = evaluate_task_metric(spec.task, model, dataset)
    return PTQResult(model=model, config=config, quantized=quantized, metric=metric,
                     metric_name=spec.metric_name, method="brecq-like")


def _lhr_biased_rounding(layer: QuantizedLayer, float_weight: np.ndarray,
                         config: PTQConfig) -> QuantizedLayer:
    """Re-round weights toward lower-HR neighbouring codes when cheap.

    For each weight the round-to-nearest code and its other neighbour (the code
    on the opposite side of the float value) are compared.  The neighbour is
    taken when it strictly lowers HR and the extra rounding error stays below
    ``rounding_tolerance`` LSBs; the total number of flipped weights is capped
    at ``max_flip_fraction`` (largest HR gains first), which keeps the layer
    output perturbation — and hence the accuracy impact — small.
    """
    bits = config.bits
    qmin, qmax = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    scale = layer.scale
    ratio = np.asarray(float_weight, dtype=np.float64) / scale
    nearest = np.clip(np.round(ratio), qmin, qmax).astype(np.int64)
    direction = np.where(ratio >= nearest, 1, -1)
    neighbour = np.clip(nearest + direction, qmin, qmax).astype(np.int64)

    hr_nearest = _hamming_rates_of_codes(nearest, bits)
    hr_neighbour = _hamming_rates_of_codes(neighbour, bits)
    error_nearest = np.abs(ratio - nearest)
    error_neighbour = np.abs(ratio - neighbour)
    extra_error = error_neighbour - error_nearest

    improves = (hr_neighbour < hr_nearest) & (extra_error <= config.rounding_tolerance)
    gain = np.where(improves, hr_nearest - hr_neighbour, 0.0)

    # Respect the flip budget: keep the flips with the largest HR gain.
    budget = int(config.max_flip_fraction * gain.size)
    if improves.sum() > budget > 0:
        threshold = np.partition(gain.reshape(-1), -budget)[-budget]
        improves = improves & (gain >= threshold)

    codes = np.where(improves, neighbour, nearest)
    return QuantizedLayer(name=layer.name, codes=codes.astype(np.int64),
                          scale=scale, bits=bits)
