"""Quantization-aware training (QAT) with optional LHR regularization.

This is the reproduction of the paper's baseline quantizer [64] and of the
"+LHR" rows of Table 2 / Fig. 13.  The implementation uses the classic
shadow-weight / straight-through-estimator recipe:

1. keep full-precision *shadow* weights as the trainable parameters;
2. before every forward pass, fake-quantize the shadow weights in place
   (round-to-nearest on the symmetric grid) and remember the float values;
3. run forward/backward on the quantized weights — with the straight-through
   estimator the gradient w.r.t. the shadow weight equals the gradient w.r.t.
   the quantized weight (zeroed outside the clipping range);
4. restore the shadow weights and let the optimizer update them.

When LHR is enabled the loss gains the ``lambda * sum_i HR_mean(layer_i)^2``
term of Eq. 6, computed on the *shadow* weights with the interpolated hamming
rate of Eq. 5, so gradients push weights toward low-HR codes (Fig. 7-(a)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.lhr import LHRRegularizer
from ..core.metrics import hamming_rate
from ..models.registry import (
    TASK_CLASSIFICATION,
    TASK_DETECTION,
    TASK_LANGUAGE_MODELING,
    ModelSpec,
)
from ..nn import functional as F
from ..nn.data import Dataset
from ..nn.layers import Module
from ..nn.optim import Adam
from ..nn.tensor import Tensor
from ..nn.training import (
    evaluate_accuracy,
    evaluate_perplexity,
    evaluate_regression_error,
)
from .quantizer import (
    QuantizedLayer,
    fake_quantize,
    model_scales,
    quantize,
    quantize_model,
    symmetric_scale,
)

__all__ = ["QATConfig", "QATResult", "run_qat", "evaluate_task_metric", "hr_summary"]


@dataclass
class QATConfig:
    """Hyper-parameters of a QAT run."""

    bits: int = 8
    epochs: int = 3
    batch_size: int = 32
    learning_rate: float = 1e-3
    lhr_lambda: float = 0.0          #: 0 disables LHR (the baseline [64] configuration)
    weight_decay: float = 0.0
    grad_clip: Optional[float] = None
    seed: int = 0
    scale_quantile: float = 1.0       #: quantile used for the symmetric scale

    @property
    def uses_lhr(self) -> bool:
        return self.lhr_lambda > 0.0


@dataclass
class QATResult:
    """Outcome of a QAT run: trained model, integer codes, HR and task metric."""

    model: Module
    config: QATConfig
    scales: Dict[str, float]
    quantized: Dict[str, QuantizedLayer]
    metric: float
    metric_name: str
    loss_history: List[float] = field(default_factory=list)

    @property
    def layer_hr(self) -> Dict[str, float]:
        return {name: hamming_rate(q.codes, q.bits) for name, q in self.quantized.items()}

    @property
    def hr_average(self) -> float:
        values = list(self.layer_hr.values())
        return float(np.mean(values)) if values else 0.0

    @property
    def hr_max(self) -> float:
        values = list(self.layer_hr.values())
        return float(np.max(values)) if values else 0.0

    def weight_codes(self) -> Dict[str, np.ndarray]:
        return {name: q.codes for name, q in self.quantized.items()}


# --------------------------------------------------------------------------- #
# task plumbing
# --------------------------------------------------------------------------- #
def _batch_loss(task: str, model: Module, inputs: np.ndarray, targets: np.ndarray) -> Tensor:
    if task == TASK_CLASSIFICATION:
        return F.cross_entropy(model(Tensor(inputs)), targets)
    if task == TASK_DETECTION:
        return F.mse_loss(model(Tensor(inputs)), targets)
    if task == TASK_LANGUAGE_MODELING:
        return F.cross_entropy(model(inputs), targets)
    raise ValueError(f"unknown task {task!r}")


def evaluate_task_metric(task: str, model: Module, dataset: Dataset,
                         batch_size: int = 64) -> float:
    """Accuracy (%), detection MSE, or perplexity depending on the task."""
    if task == TASK_CLASSIFICATION:
        return evaluate_accuracy(model, dataset, batch_size)
    if task == TASK_DETECTION:
        return evaluate_regression_error(model, dataset, batch_size)
    if task == TASK_LANGUAGE_MODELING:
        return evaluate_perplexity(model, dataset, batch_size)
    raise ValueError(f"unknown task {task!r}")


def hr_summary(codes: Dict[str, np.ndarray], bits: int) -> Tuple[float, float]:
    """(HR_average, HR_max) over a per-layer code dictionary."""
    rates = [hamming_rate(c, bits) for c in codes.values()]
    if not rates:
        return 0.0, 0.0
    return float(np.mean(rates)), float(np.max(rates))


# --------------------------------------------------------------------------- #
# the QAT loop
# --------------------------------------------------------------------------- #
class _ShadowQuantizer:
    """Swap shadow float weights for fake-quantized ones around each step."""

    def __init__(self, model: Module, bits: int, quantile: float) -> None:
        self.model = model
        self.bits = bits
        self.quantile = quantile
        self._saved: Dict[str, np.ndarray] = {}
        self._masks: Dict[str, np.ndarray] = {}
        self.scales: Dict[str, float] = {}

    def quantize_in_place(self) -> None:
        qmax = (1 << (self.bits - 1)) - 1
        for name, layer in self.model.weight_layers():
            weight = layer.weight
            self._saved[name] = weight.data.copy()
            scale = symmetric_scale(weight.data, self.bits, self.quantile)
            self.scales[name] = scale
            # STE clipping mask: gradients are zeroed where the float weight
            # saturates the integer range.
            self._masks[name] = (np.abs(weight.data / scale) <= qmax).astype(np.float64)
            weight.data = fake_quantize(weight.data, scale, self.bits)

    def restore_and_mask_grads(self) -> None:
        for name, layer in self.model.weight_layers():
            weight = layer.weight
            weight.data = self._saved[name]
            if weight.grad is not None:
                weight.grad = weight.grad * self._masks[name]
        self._saved.clear()
        self._masks.clear()


def run_qat(spec: ModelSpec, config: QATConfig,
            model: Optional[Module] = None,
            dataset: Optional[Dataset] = None) -> QATResult:
    """Run quantization-aware training for one workload.

    ``spec`` supplies the model factory, dataset and task; ``model``/``dataset``
    override them (used when chaining: e.g. LHR fine-tuning of an already
    float-trained network, or pruning + LHR combinations).
    """
    model = model if model is not None else spec.build()
    dataset = dataset if dataset is not None else spec.dataset()
    rng = np.random.default_rng(config.seed)
    optimizer = Adam(model.parameters(), lr=config.learning_rate,
                     weight_decay=config.weight_decay)
    shadow = _ShadowQuantizer(model, config.bits, config.scale_quantile)

    regularizer: Optional[LHRRegularizer] = None
    if config.uses_lhr:
        regularizer = LHRRegularizer(
            scales=model_scales(model, config.bits, config.scale_quantile),
            bits=config.bits, lam=config.lhr_lambda)

    loss_history: List[float] = []
    for _ in range(config.epochs):
        model.train()
        epoch_losses = []
        for batch in dataset.batches(config.batch_size, shuffle=True, rng=rng):
            shadow.quantize_in_place()
            loss = _batch_loss(spec.task, model, batch.inputs, batch.targets)
            # The LHR term is computed on the shadow (float) weights, but at this
            # point the parameters hold the fake-quantized values; restore first,
            # then add the regularizer so its gradient targets the float weights.
            optimizer.zero_grad()
            loss.backward()
            shadow.restore_and_mask_grads()
            if regularizer is not None:
                regularizer.scales = shadow.scales or regularizer.scales
                reg_loss = regularizer(model)
                reg_loss.backward()
                loss_value = loss.item() + reg_loss.item()
            else:
                loss_value = loss.item()
            if config.grad_clip is not None:
                _clip_gradients(model, config.grad_clip)
            optimizer.step()
            epoch_losses.append(loss_value)
        loss_history.append(float(np.mean(epoch_losses)))

    # Final snapshot: quantize the trained shadow weights to integer codes and
    # evaluate the task metric with the deployed (fake-quantized) weights.
    scales = model_scales(model, config.bits, config.scale_quantile)
    quantized = quantize_model(model, config.bits, scales=scales)
    _deploy_quantized(model, quantized)
    metric = evaluate_task_metric(spec.task, model, dataset, config.batch_size)
    return QATResult(model=model, config=config, scales=scales, quantized=quantized,
                     metric=metric, metric_name=spec.metric_name,
                     loss_history=loss_history)


def _deploy_quantized(model: Module, quantized: Dict[str, QuantizedLayer]) -> None:
    """Overwrite layer weights with their dequantized integer codes (deployment)."""
    for name, layer in model.weight_layers():
        if name in quantized:
            layer.weight.data = quantized[name].dequantized


def _clip_gradients(model: Module, max_norm: float) -> None:
    total = 0.0
    params = [p for p in model.parameters() if p.grad is not None]
    for p in params:
        total += float((p.grad ** 2).sum())
    norm = np.sqrt(total)
    if norm > max_norm and norm > 0:
        factor = max_norm / norm
        for p in params:
            p.grad = p.grad * factor
