"""Uniform quantization primitives shared by the QAT and PTQ flows.

The paper's baseline quantizer is the standard symmetric uniform scheme of the
"white paper on neural network quantization" [64]: a per-tensor scale maps
floating-point weights onto ``bits``-bit two's-complement integer codes which
become the PIM in-memory data.  The helpers here convert in both directions,
compute scales (max-abs or quantile clipped), and snapshot an entire model into
the per-layer integer-code dictionaries consumed by the HR/WDS/compiler stages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..nn.layers import Conv2d, Linear, Module

__all__ = [
    "symmetric_scale",
    "quantize",
    "dequantize",
    "fake_quantize",
    "quantization_error",
    "QuantizedLayer",
    "quantize_model",
    "model_weight_codes",
    "model_scales",
]


def symmetric_scale(weights: np.ndarray, bits: int, quantile: float = 1.0) -> float:
    """Per-tensor symmetric scale ``s = max|w| / (2^(b-1) - 1)``.

    ``quantile < 1`` clips outliers (used by the OmniQuant-like PTQ search);
    the scale is floored at a tiny epsilon so all-zero layers stay finite.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.size == 0:
        return 1.0
    magnitude = np.abs(weights)
    limit = float(np.quantile(magnitude, quantile)) if quantile < 1.0 else float(magnitude.max())
    qmax = (1 << (bits - 1)) - 1
    return max(limit / qmax, 1e-12)


def quantize(weights: np.ndarray, scale: float, bits: int) -> np.ndarray:
    """Round-to-nearest integer codes clipped to the two's-complement range."""
    qmin = -(1 << (bits - 1))
    qmax = (1 << (bits - 1)) - 1
    codes = np.round(np.asarray(weights, dtype=np.float64) / scale)
    return np.clip(codes, qmin, qmax).astype(np.int64)


def dequantize(codes: np.ndarray, scale: float) -> np.ndarray:
    """Map integer codes back to floating point: ``w_hat = codes * scale``."""
    return np.asarray(codes, dtype=np.float64) * scale


def fake_quantize(weights: np.ndarray, scale: float, bits: int) -> np.ndarray:
    """Quantize-then-dequantize, the forward path of QAT fake quantization."""
    return dequantize(quantize(weights, scale, bits), scale)


def quantization_error(weights: np.ndarray, scale: float, bits: int) -> float:
    """Mean squared error introduced by quantizing ``weights`` at ``scale``."""
    return float(np.mean((np.asarray(weights) - fake_quantize(weights, scale, bits)) ** 2))


@dataclass
class QuantizedLayer:
    """Integer snapshot of one weight layer: codes, scale, bit-width."""

    name: str
    codes: np.ndarray
    scale: float
    bits: int

    @property
    def dequantized(self) -> np.ndarray:
        return dequantize(self.codes, self.scale)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.codes.shape


def quantize_model(model: Module, bits: int = 8,
                   quantile: float = 1.0,
                   scales: Optional[Dict[str, float]] = None) -> Dict[str, QuantizedLayer]:
    """Quantize every Linear/Conv2d weight of ``model`` to integer codes.

    ``scales`` overrides the computed per-layer scales (used when a PTQ method
    has already calibrated clipping values).
    """
    quantized: Dict[str, QuantizedLayer] = {}
    for name, layer in model.weight_layers():
        weight = layer.weight.data
        scale = scales[name] if scales and name in scales else \
            symmetric_scale(weight, bits, quantile)
        quantized[name] = QuantizedLayer(
            name=name, codes=quantize(weight, scale, bits), scale=scale, bits=bits)
    return quantized


def model_weight_codes(model: Module, bits: int = 8,
                       scales: Optional[Dict[str, float]] = None) -> Dict[str, np.ndarray]:
    """Convenience wrapper returning only the per-layer integer codes."""
    return {name: q.codes for name, q in quantize_model(model, bits, scales=scales).items()}


def model_scales(model: Module, bits: int = 8, quantile: float = 1.0) -> Dict[str, float]:
    """Per-layer symmetric scales for the model's weight layers."""
    return {
        name: symmetric_scale(layer.weight.data, bits, quantile)
        for name, layer in model.weight_layers()
    }
