"""Sweep-as-a-service: a crash-safe daemon over the sweep machinery.

The package turns :mod:`repro.sweep` from a library call into a resident
service: clients submit :class:`~repro.sweep.spec.SweepSpec` jobs over a
thin REST API, a supervised executor fleet (with its shared physics store)
stays warm across jobs, and a durable write-ahead journal makes the whole
thing ``kill -9``-proof — a restarted daemon replays the journal, re-admits
interrupted jobs, and resumes them from their sweep checkpoints to results
bit-identical to an uninterrupted run.

Modules:

* :mod:`~repro.service.journal` — fsync'd, per-line-checksummed JSONL WAL
  with torn-tail recovery and compaction;
* :mod:`~repro.service.registry` — the journal-backed job state machine
  (idempotent submission, restart re-admission, circuit-breaker
  ``suspended`` quarantine with an explicit resume);
* :mod:`~repro.service.lease` — single-writer state-dir ownership via a
  heartbeat lease file (stale-lease takeover, stolen-lease fencing);
* :mod:`~repro.service.daemon` — :class:`SweepService`: bounded admission
  queue, resident fleet, fair-share multi-job scheduler with per-job fault
  isolation, graceful drain, disk-exhaustion degraded mode, health; per-job
  results persist in sharded record stores (:mod:`repro.store`) with legacy
  single-JSON checkpoints migrated on first resume;
* :mod:`~repro.service.api` — transport-neutral router + stdlib HTTP server;
* :mod:`~repro.service.client` — HTTP and in-process clients.
"""

from .api import ServiceAPI, ServiceHTTPServer, serve_forever
from .client import InProcessClient, ServiceClient, ServiceError
from .daemon import (
    Backpressure,
    ResidentFleet,
    ServiceUnavailable,
    SweepService,
    install_signal_handlers,
)
from .journal import JobJournal, JournalError, JournalEvent
from .lease import LeaseHeld, StateDirLease
from .registry import JOB_STATES, TERMINAL_STATES, Job, JobRegistry, JobStateError

__all__ = [
    "SweepService", "ResidentFleet", "Backpressure", "ServiceUnavailable",
    "install_signal_handlers",
    "StateDirLease", "LeaseHeld",
    "ServiceAPI", "ServiceHTTPServer", "serve_forever",
    "ServiceClient", "InProcessClient", "ServiceError",
    "JobJournal", "JournalEvent", "JournalError",
    "Job", "JobRegistry", "JobStateError", "JOB_STATES", "TERMINAL_STATES",
]
