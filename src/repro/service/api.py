"""Transport layer of the sweep service: routing core + stdlib HTTP binding.

The routing lives in :class:`ServiceAPI` — a plain object mapping
``(method, path, body)`` to ``(status, payload, headers)`` — so the REST
surface is testable fully in-process and the HTTP server is a thin shim
(``http.server.ThreadingHTTPServer``; swapping in another transport means
re-binding ``ServiceAPI.handle``, nothing else).

Endpoints::

    POST /jobs                submit {"spec": .., "job_key"?: .., "options"?: ..}
                              -> 202 created | 200 attached (idempotent dup)
                              -> 429 + Retry-After (queue full)
                              -> 409 (job_key bound to a different spec)
                              -> 503 (draining)  | 400 (bad spec)
    GET  /jobs                list job statuses
    GET  /jobs/{id}           one job's status                  -> 404 unknown
    GET  /jobs/{id}/result    terminal job's records+aggregates -> 409 not done
                              (``?records=0`` elides the record list)
    GET  /jobs/{id}/records   page records off the job's record store
                              (``?offset=N&limit=M``; any job state — a
                              running job's durable records page out live;
                              ``?wait_seq=N[&wait_timeout=S]`` long-polls
                              until more than N records exist or the job
                              comes to rest)
    POST /jobs/{id}/cancel    request cancellation
    POST /jobs/{id}/resume    lift a suspended (circuit-broken) job back
                              into the queue           -> 409 not suspended
    GET  /health              fleet liveness, queue depth, active jobs,
                              lease state, degraded-mode reason rollup,
                              journal/store stats, record-store damage
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .daemon import Backpressure, ServiceUnavailable, SweepService
from .registry import JobStateError

__all__ = ["ServiceAPI", "ServiceHTTPServer", "serve_forever"]

logger = logging.getLogger("repro.service")

Response = Tuple[int, Dict, Dict]


class ServiceAPI:
    """Transport-neutral request router over a :class:`SweepService`."""

    def __init__(self, service: SweepService) -> None:
        self.service = service

    def handle(self, method: str, path: str,
               body: Optional[Dict] = None) -> Response:
        """Route one request; returns ``(status, payload, extra_headers)``.

        Never raises for client-visible conditions — they come back as the
        proper status code — so every transport shares one error contract.
        """
        parsed = urlparse(path)
        parts = [part for part in parsed.path.split("/") if part]
        query = parse_qs(parsed.query)
        try:
            return self._route(method.upper(), parts, body or {}, query)
        except KeyError as error:
            return 404, {"error": str(error).strip("'\"")}, {}
        except Backpressure as error:
            return (429, {"error": str(error),
                          "retry_after": error.retry_after},
                    {"Retry-After": f"{error.retry_after:.0f}"})
        except ServiceUnavailable as error:
            return 503, {"error": str(error)}, {}
        except JobStateError as error:
            return 409, {"error": str(error)}, {}
        except (TypeError, ValueError) as error:
            return 400, {"error": f"bad request: {error}"}, {}

    def _route(self, method: str, parts, body: Dict, query) -> Response:
        if parts == ["health"] and method == "GET":
            return 200, self.service.health(), {}
        if parts == ["jobs"]:
            if method == "POST":
                return self._submit(body)
            if method == "GET":
                return 200, {"jobs": self.service.jobs()}, {}
        if len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            return 200, self.service.status(parts[1]), {}
        if len(parts) == 3 and parts[0] == "jobs":
            job_id, action = parts[1], parts[2]
            if action == "result" and method == "GET":
                include = query.get("records", ["1"])[0] not in ("0", "false")
                if self.service.status(job_id)["state"] not in \
                        ("done", "failed", "cancelled"):
                    return (409, {"error": f"job {job_id} is not terminal; "
                                  "poll GET /jobs/{id} until it is"}, {})
                return (200,
                        self.service.result(job_id, include_records=include),
                        {})
            if action == "records" and method == "GET":
                offset = int(query.get("offset", ["0"])[0])
                limit = int(query.get("limit", ["256"])[0])
                wait_seq_raw = query.get("wait_seq", [None])[0]
                wait_seq = None if wait_seq_raw is None else int(wait_seq_raw)
                wait_timeout = float(query.get("wait_timeout", ["10"])[0])
                return (200, self.service.records(
                    job_id, offset=offset, limit=limit, wait_seq=wait_seq,
                    wait_timeout=wait_timeout), {})
            if action == "cancel" and method == "POST":
                return 200, self.service.cancel(job_id).public_status(), {}
            if action == "resume" and method == "POST":
                return 200, self.service.resume(job_id).public_status(), {}
        return 404, {"error": f"no route for {method} /{'/'.join(parts)}"}, {}

    def _submit(self, body: Dict) -> Response:
        spec = body.get("spec")
        if not isinstance(spec, dict):
            raise ValueError("body must carry a 'spec' object "
                             "(SweepSpec.to_json_dict() form)")
        job, created = self.service.submit(
            spec, job_key=body.get("job_key"), options=body.get("options"))
        payload = job.public_status()
        payload["created"] = created
        return (202 if created else 200), payload, {}


class _Handler(BaseHTTPRequestHandler):
    """One-method shim: decode JSON, call ``ServiceAPI.handle``, encode JSON."""

    api: ServiceAPI = None      # set per-server via type() subclassing
    protocol_version = "HTTP/1.1"

    def _respond(self) -> None:
        body = None
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            try:
                body = json.loads(self.rfile.read(length))
            except ValueError:
                self._send(400, {"error": "request body is not JSON"}, {})
                return
        status, payload, headers = self.api.handle(self.command,
                                                   self.path, body)
        self._send(status, payload, headers)

    def _send(self, status: int, payload: Dict, headers: Dict) -> None:
        encoded = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(encoded)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(encoded)

    do_GET = do_POST = do_DELETE = _respond

    def log_message(self, fmt, *args):       # route through logging, quietly
        logger.debug("http: " + fmt, *args)


class ServiceHTTPServer:
    """The stdlib HTTP binding: a threaded server wrapping a ServiceAPI.

    ``port=0`` picks a free port (exposed as ``.port`` after construction).
    ``start()`` serves from a daemon thread; ``stop()`` shuts the listener
    down (it does not touch the SweepService — the daemon owns its own
    shutdown so the listener can die first and drain second).
    """

    def __init__(self, service: SweepService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.api = ServiceAPI(service)
        handler = type("_BoundHandler", (_Handler,), {"api": self.api})
        self.server = ThreadingHTTPServer((host, port), handler)
        self.server.daemon_threads = True
        self.host, self.port = self.server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceHTTPServer":
        self._thread = threading.Thread(target=self.server.serve_forever,
                                        name="sweep-service-http",
                                        daemon=True)
        self._thread.start()
        logger.info("service: listening on %s", self.url)
        return self

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def serve_forever(service: SweepService, host: str = "127.0.0.1",
                  port: int = 8023, poll: float = 0.2) -> None:
    """Foreground daemon loop: start, serve, drain gracefully on SIGTERM.

    This is the ``python -m``-style entrypoint the demo uses: it installs
    signal handlers, then blocks until a drain is requested (signal or an
    external ``service.shutdown()``), shutting the listener before the fleet
    so in-flight HTTP responses finish while the running job checkpoints.
    """
    import time

    from .daemon import install_signal_handlers

    http_server = ServiceHTTPServer(service, host=host, port=port)
    install_signal_handlers(service)
    service.start()
    http_server.start()
    try:
        while not service.draining:
            time.sleep(poll)
    finally:
        http_server.stop()
        service.shutdown()
