"""Clients for the sweep service: HTTP (urllib) and in-process.

Both speak the same surface, so a test (or notebook) can swap
:class:`InProcessClient` — which calls :class:`~repro.service.api.ServiceAPI`
directly, no sockets — for :class:`ServiceClient` without changing a line.

Error contract: non-2xx responses raise :class:`ServiceError` carrying the
status code, the decoded payload, and (for 429s) the service's
``retry_after`` hint.  :meth:`submit` can absorb backpressure itself with
``wait_on_backpressure=True``, sleeping the hinted interval and retrying.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, List, Optional, Union

from ..sweep.spec import SweepSpec
from .api import ServiceAPI

__all__ = ["InProcessClient", "ServiceClient", "ServiceError"]

_TERMINAL = ("done", "failed", "cancelled")


class ServiceError(RuntimeError):
    """A non-2xx service response."""

    def __init__(self, status: int, payload: Dict) -> None:
        super().__init__(
            f"service returned {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload
        self.retry_after = float(payload.get("retry_after", 0.0) or 0.0)


class _ClientCore:
    """Shared verbs over an abstract ``_request`` transport."""

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None,
                 timeout: Optional[float] = None) -> Dict:
        raise NotImplementedError

    def submit(self, spec: Union[SweepSpec, Dict],
               job_key: Optional[str] = None,
               options: Optional[Dict] = None,
               wait_on_backpressure: bool = False,
               max_wait: float = 60.0) -> Dict:
        """Submit a sweep; returns the job status (``created`` flags dedup).

        ``wait_on_backpressure=True`` turns 429s into polite waiting: sleep
        the service's ``retry_after`` hint and resubmit, up to ``max_wait``
        seconds in total.
        """
        if isinstance(spec, SweepSpec):
            spec = spec.to_json_dict()
        body = {"spec": spec}
        if job_key is not None:
            body["job_key"] = job_key
        if options is not None:
            body["options"] = options
        deadline = time.monotonic() + max_wait
        while True:
            try:
                return self._request("POST", "/jobs", body)
            except ServiceError as error:
                if not (wait_on_backpressure and error.status == 429):
                    raise
                if time.monotonic() >= deadline:
                    raise
                time.sleep(min(max(error.retry_after, 0.05),
                               max(deadline - time.monotonic(), 0.0) or 0.05))

    def status(self, job_id: str) -> Dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[Dict]:
        return self._request("GET", "/jobs")["jobs"]

    def result(self, job_id: str, include_records: bool = True) -> Dict:
        suffix = "" if include_records else "?records=0"
        return self._request("GET", f"/jobs/{job_id}/result{suffix}")

    def records(self, job_id: str, offset: int = 0, limit: int = 256,
                wait_seq: Optional[int] = None,
                wait_timeout: float = 10.0) -> Dict:
        """Page records off the job's durable record store (any job state).

        ``wait_seq=n`` long-polls: the service holds the request until the
        store has *more* than ``n`` records, the job comes to rest (terminal
        or suspended — see the response's ``resting``), or ``wait_timeout``
        seconds pass.  Stream a live job by feeding each response's ``seq``
        back in as the next ``wait_seq``.
        """
        path = (f"/jobs/{job_id}/records?offset={int(offset)}"
                f"&limit={int(limit)}")
        if wait_seq is None:
            return self._request("GET", path)
        path += f"&wait_seq={int(wait_seq)}&wait_timeout={float(wait_timeout)}"
        # The HTTP read deadline must outlive the service-side hold.
        return self._request("GET", path, timeout=float(wait_timeout) + 30.0)

    def cancel(self, job_id: str) -> Dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def resume(self, job_id: str) -> Dict:
        """Lift a suspended (circuit-broken) job back into the queue."""
        return self._request("POST", f"/jobs/{job_id}/resume")

    def health(self) -> Dict:
        return self._request("GET", "/health")

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.05) -> Dict:
        """Poll until ``job_id`` is terminal; returns its final status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in _TERMINAL:
                return status
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s")
            time.sleep(poll)


class ServiceClient(_ClientCore):
    """Thin stdlib-``urllib`` client for a running :mod:`repro.service` daemon."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None,
                 timeout: Optional[float] = None) -> Dict:
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(
                    request,
                    timeout=self.timeout if timeout is None else timeout
                    ) as response:
                return json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as error:
            try:
                payload = json.loads(error.read() or b"{}")
            except ValueError:
                payload = {"error": str(error)}
            raise ServiceError(error.code, payload) from None


class InProcessClient(_ClientCore):
    """Same client surface, wired straight into a ``ServiceAPI`` (no HTTP)."""

    def __init__(self, api: ServiceAPI) -> None:
        self.api = api

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None,
                 timeout: Optional[float] = None) -> Dict:
        status, payload, _headers = self.api.handle(method, path, body)
        if status >= 400:
            raise ServiceError(status, payload)
        return payload
