"""The sweep daemon: a crash-safe, long-running multi-job sweep service.

:class:`SweepService` accepts :class:`~repro.sweep.spec.SweepSpec` jobs,
schedules them one at a time onto a *resident* executor fleet (the fleet —
and its attached :class:`~repro.sim.shared_store.SharedPhysicsStore` — lives
for the daemon's lifetime, so physics derived for one client's job is reused
by every later job), and journals every lifecycle transition to the durable
write-ahead :class:`~repro.service.journal.JobJournal`.

The robustness contract, end to end:

* **Crash safety** — ``kill -9`` the daemon at any instant, restart it over
  the same data directory, and every admitted job completes with records
  bit-identical to an uninterrupted run: the journal replays the job table,
  interrupted jobs are re-admitted, and each resumes from its last durable
  PR-6 checkpoint (deterministic seeds make re-running the tail harmless).
* **Admission control** — the job queue is bounded; a full queue rejects new
  work with :class:`Backpressure` (HTTP 429 + ``retry_after``) instead of
  accepting unbounded liabilities.
* **Idempotent submission** — a client-supplied ``job_key`` makes resubmits
  (retries after a lost response, duplicate users asking the same question)
  attach to the existing job instead of recomputing.
* **Cancellation** — a queued job cancels instantly; a running job drains
  cleanly (in-flight work checkpoints, the fleet tears down, the partial
  result stays resumable).
* **Graceful shutdown** — ``shutdown()`` (wire it to SIGTERM via
  :func:`install_signal_handlers`) stops admitting, drains the running job
  to a checkpoint, journals a clean stop, and exits; queued jobs re-admit on
  the next start.
* **Health** — :meth:`SweepService.health` reports fleet liveness, queue
  depth, journal and store counters for monitoring.

On-disk layout (everything under one ``data_dir``)::

    data_dir/
      journal.jsonl            the write-ahead job journal
      store/                   persistent shared physics store
      jobs/<job_id>/records/   per-job sharded record store (see repro.store)
      jobs/<job_id>/checkpoint.json   legacy single-JSON checkpoints (+ .bak);
                                      still readable — a job resumed over one
                                      migrates into the sharded store

Per-job persistence goes through :class:`repro.store.ShardedRecordStore`:
records append as they complete and checkpoints are fsync-batched flushes,
so checkpoint cost stays flat as jobs grow.  A data directory created by an
older daemon (``checkpoint.json`` only) recovers seamlessly — the first
resume seeds the sharded store from the legacy checkpoint and continues
shard-incrementally, bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import logging
import os
import signal
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..sweep import faults
from ..sweep.records import SweepResult
from ..sweep.runner import PoolExecutor, SerialExecutor, SweepRunner
from ..sweep.spec import RetryPolicy, SweepSpec
from .journal import JobJournal
from .registry import Job, JobRegistry, TERMINAL_STATES

__all__ = ["Backpressure", "ResidentFleet", "ServiceUnavailable",
           "SweepService", "install_signal_handlers"]

logger = logging.getLogger("repro.service")

Executor = Union[SerialExecutor, PoolExecutor]


class Backpressure(RuntimeError):
    """The job queue is full — retry after ``retry_after`` seconds (429)."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(
            f"job queue is full; retry after {retry_after:.1f}s")
        self.retry_after = retry_after


class ServiceUnavailable(RuntimeError):
    """The daemon is shutting down and no longer admits work (503)."""


class ResidentFleet:
    """The daemon's long-lived executor plus its shared physics store.

    Unlike a per-sweep executor pass, the fleet persists across jobs: the
    store directory is attached once (parent process included, so even a
    serial fleet reuses physics across jobs *and* daemon restarts), and the
    executor object is reused for every job the scheduler runs.  Heartbeats
    come from the runner's streaming progress callback — a fleet that stops
    beating while a job is active is wedged, and the health endpoint says so.
    """

    def __init__(self, executor: Executor, store_dir: Optional[str]) -> None:
        self.executor = executor
        self.store_dir = store_dir
        self.store = None
        self._beat_lock = threading.Lock()
        self._beat: Tuple[Optional[str], float] = (None, 0.0)

    def start(self) -> None:
        if self.store_dir is not None:
            from ..sim.level_cache import attach_shared_store
            self.store = attach_shared_store(self.store_dir,
                                             record_events=False)

    def stop(self) -> None:
        if self.store is not None:
            from ..sim.level_cache import detach_shared_store
            detach_shared_store()
            self.store = None

    def beat(self, job_id: str) -> None:
        with self._beat_lock:
            self._beat = (job_id, time.monotonic())

    def liveness(self) -> Dict:
        with self._beat_lock:
            job_id, ts = self._beat
        supervised = getattr(self.executor, "supervised",
                             getattr(self.executor, "retry_policy", None)
                             is not None)
        return {
            "executor": type(self.executor).__name__,
            "supervised": bool(supervised),
            "processes": getattr(self.executor, "processes", None) or 1,
            "last_progress_job": job_id,
            "last_progress_age_s": (round(time.monotonic() - ts, 3)
                                    if job_id is not None else None),
            "store_attached": self.store is not None,
        }


class SweepService:
    """The daemon: journal + registry + bounded queue + resident fleet.

    Jobs execute one at a time on the fleet (the fleet itself parallelizes
    *runs* across its workers; serializing jobs keeps the physics store and
    CPU contention predictable).  All public methods are thread-safe — the
    HTTP transport calls them from handler threads.
    """

    def __init__(self, data_dir: str,
                 executor: Optional[Executor] = None,
                 processes: Optional[int] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 run_timeout: Optional[float] = None,
                 max_queue: int = 8,
                 checkpoint_every: int = 4,
                 compact_bytes: int = 1 << 20,
                 attach_store: bool = True) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must admit at least one job")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be a positive "
                             "record count")
        self.data_dir = data_dir
        os.makedirs(data_dir, exist_ok=True)
        self.max_queue = max_queue
        self.checkpoint_every = checkpoint_every
        self.compact_bytes = compact_bytes
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, backoff=0.05, jitter="decorrelated",
            max_backoff=5.0)

        store_dir = os.path.join(data_dir, "store") if attach_store else None
        if executor is None:
            if processes is not None and processes > 1:
                executor = PoolExecutor(
                    processes=processes, retry_policy=self.retry_policy,
                    run_timeout=run_timeout, shared_cache_dir=store_dir,
                    shared_cache_events=False)
            else:
                executor = SerialExecutor(retry_policy=self.retry_policy)
        self.fleet = ResidentFleet(executor, store_dir)

        self.journal = JobJournal(os.path.join(data_dir, "journal.jsonl"))
        self.registry = JobRegistry.open(self.journal)

        self._queue: deque = deque()
        self._lock = threading.RLock()
        self._draining = threading.Event()
        self._wake = threading.Event()
        self._active: Optional[str] = None
        self._durations: deque = deque(maxlen=8)
        self._scheduler: Optional[threading.Thread] = None
        self._started_ts: Optional[float] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "SweepService":
        """Recover, re-admit interrupted jobs, and start scheduling."""
        if self._scheduler is not None:
            raise RuntimeError("service already started")
        self.registry.maybe_compact(self.compact_bytes)
        self.fleet.start()
        self.journal.append("service_start",
                            pid=os.getpid(), data_dir=self.data_dir)
        interrupted = self.registry.recover_interrupted()
        with self._lock:
            for job in interrupted:
                self._queue.append(job.job_id)
        if interrupted:
            logger.warning("service: recovered %d interrupted job(s): %s",
                           len(interrupted),
                           ", ".join(j.job_id for j in interrupted))
        self._started_ts = time.monotonic()
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="sweep-service-scheduler",
            daemon=True)
        self._scheduler.start()
        return self

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Graceful stop: drain, checkpoint, journal, release the fleet.

        Safe to call more than once.  The running job (if any) drains at its
        next record boundary and stays ``running`` in the journal — the next
        :meth:`start` re-admits it and resumes from its checkpoint.
        """
        self._draining.set()
        self._wake.set()
        faults.service_fault("daemon:drain")
        scheduler = self._scheduler
        if scheduler is not None:
            scheduler.join(timeout=timeout)
        self.journal.append("service_stop", pid=os.getpid())
        self.fleet.stop()
        self.journal.close()
        self._scheduler = None

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    # ------------------------------------------------------------------ #
    # client surface
    # ------------------------------------------------------------------ #
    def submit(self, spec_dict: Dict, job_key: Optional[str] = None,
               options: Optional[Dict] = None) -> Tuple[Job, bool]:
        """Admit a sweep job; returns ``(job, created)``.

        Raises :class:`Backpressure` when the queue is full (duplicate
        ``job_key`` submissions are exempt — attaching to existing work
        costs nothing) and :class:`ServiceUnavailable` while draining.
        The spec is validated by round-tripping it through
        :class:`~repro.sweep.spec.SweepSpec` before anything is journaled.
        """
        spec = SweepSpec.from_json_dict(spec_dict)   # validates; raises early
        with self._lock:
            existing = (self.registry.find_by_key(job_key)
                        if job_key is not None else None)
            if existing is None:
                if self._draining.is_set():
                    raise ServiceUnavailable(
                        "service is draining; resubmit after restart")
                if len(self._queue) >= self.max_queue:
                    raise Backpressure(self._retry_after())
            job, created = self.registry.submit(
                spec.to_json_dict(), job_key=job_key, options=options,
                total_runs=spec.n_runs)
            if created:
                self.registry.transition("admit", job.job_id)
                self._queue.append(job.job_id)
                self._wake.set()
            return job, created

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: instantly when queued, by draining when running."""
        with self._lock:
            job = self.registry.get(job_id)
            if job.state in TERMINAL_STATES:
                return job
            self.registry.transition("cancel_request", job_id)
            if job.state in ("submitted", "admitted"):
                # Not started: terminal immediately; the scheduler skips it.
                return self.registry.transition("cancelled", job_id)
            return job    # running: the runner's should_stop drains it

    def status(self, job_id: str) -> Dict:
        return self.registry.get(job_id).public_status()

    def jobs(self) -> List[Dict]:
        return [job.public_status() for job in self.registry.list_jobs()]

    def result(self, job_id: str, include_records: bool = True) -> Dict:
        """The result payload of a terminal job (records + aggregates).

        Raises ``KeyError`` for unknown jobs and :class:`JobNotDone` —
        well, ``RuntimeError`` — for jobs that have not reached a terminal
        state (the API maps it to 409).
        """
        job = self.registry.get(job_id)
        if job.state not in TERMINAL_STATES:
            raise RuntimeError(
                f"job {job_id} is {job.state}; results exist only for "
                f"terminal states {TERMINAL_STATES}")
        result = self._load_job_result(job_id)
        payload = result.summary_payload(include_records=include_records)
        payload.update(job.public_status())
        return payload

    def records(self, job_id: str, offset: int = 0,
                limit: int = 256) -> Dict:
        """A page of a job's records, straight off its record store.

        Unlike :meth:`result`, this works for *any* job state — a running
        job's durable records page out while it executes (the scan is
        non-mutating, so it cannot disturb the writer) — and never
        materializes aggregates, so it stays cheap for huge sweeps.
        """
        job = self.registry.get(job_id)            # KeyError for unknown ids
        offset = max(0, int(offset))
        limit = max(1, min(int(limit), 4096))
        store_dir = self.store_path(job_id)
        legacy = self.checkpoint_path(job_id)
        if os.path.isdir(store_dir):
            from ..store import scan_store
            report = scan_store(store_dir)
            records, failed = report.records, report.failed
        elif os.path.exists(legacy) or os.path.exists(f"{legacy}.bak"):
            loaded = SweepResult.load_resumable(legacy)
            records, failed = loaded.sorted_records(), loaded.failed_runs
        else:
            records, failed = [], []
        page = records[offset:offset + limit]
        return {
            "job_id": job_id, "state": job.state,
            "total_records": len(records), "total_failed": len(failed),
            "offset": offset, "limit": limit, "count": len(page),
            "records": [record.to_json_dict() for record in page],
        }

    def _load_job_result(self, job_id: str) -> SweepResult:
        """A job's merged result from whichever persistence it has.

        The sharded store is authoritative when present (it holds everything
        a migrated legacy checkpoint held, plus whatever ran since); the
        legacy single-JSON checkpoint covers pre-store data directories.
        """
        store_dir = self.store_path(job_id)
        legacy = self.checkpoint_path(job_id)
        if os.path.isdir(store_dir):
            return SweepResult.load_resumable(store_dir)
        if os.path.exists(legacy) or os.path.exists(f"{legacy}.bak"):
            return SweepResult.load_resumable(legacy)
        return SweepResult()

    #: per-job record-store damage/repair counters rolled up into health.
    _STORE_DAMAGE_KEYS = ("torn_tail_dropped", "corrupt_lines_dropped",
                          "shards_quarantined", "manifest_rebuilds")

    def health(self) -> Dict:
        """Liveness + load + durability counters, for monitors and tests.

        ``degraded`` aggregates every self-healing subsystem: the shared
        physics store's error counters, the journal's recovery counters, and
        the per-job record stores' damage counters — a daemon that survived
        corruption keeps serving, but monitors can see it happened.
        """
        journal_stats = vars(self.journal.stats).copy()
        journal_stats["size_bytes"] = self.journal.size_bytes()
        store = self.fleet.store
        physics_stats = store.stats() if store is not None else None
        with self._lock:
            queue_depth = len(self._queue)
            active = self._active
        record_stores: Dict = {"jobs_with_stats": 0, "compactions": 0}
        record_stores.update({key: 0 for key in self._STORE_DAMAGE_KEYS})
        for job in self.registry.list_jobs():
            if not job.store_stats:
                continue
            record_stores["jobs_with_stats"] += 1
            for key in (*self._STORE_DAMAGE_KEYS, "compactions"):
                record_stores[key] += int(job.store_stats.get(key, 0))
        degraded = bool(
            (physics_stats is not None
             and (physics_stats.get("degraded")
                  or physics_stats.get("load_errors")
                  or physics_stats.get("store_errors")
                  or physics_stats.get("corrupt_rejected")))
            or journal_stats.get("torn_tail_dropped")
            or journal_stats.get("corrupt_lines")
            or any(record_stores[key] for key in self._STORE_DAMAGE_KEYS))
        return {
            "status": "draining" if self._draining.is_set() else "ok",
            "degraded": degraded,
            "uptime_s": (round(time.monotonic() - self._started_ts, 3)
                         if self._started_ts is not None else None),
            "queue_depth": queue_depth,
            "max_queue": self.max_queue,
            "active_job": active,
            "jobs": self.registry.counts(),
            "fleet": self.fleet.liveness(),
            "scheduler_alive": (self._scheduler is not None
                                and self._scheduler.is_alive()),
            "journal": journal_stats,
            "store": physics_stats,
            "record_stores": record_stores,
        }

    def checkpoint_path(self, job_id: str) -> str:
        return os.path.join(self.data_dir, "jobs", job_id, "checkpoint.json")

    def store_path(self, job_id: str) -> str:
        """The job's sharded record-store directory (see :mod:`repro.store`)."""
        return os.path.join(self.data_dir, "jobs", job_id, "records")

    def wait_for(self, job_id: str, timeout: float = 60.0,
                 poll: float = 0.02) -> Dict:
        """Block until ``job_id`` reaches a terminal state (testing/demo aid)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s")
            time.sleep(poll)

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def _retry_after(self) -> float:
        """Backpressure hint: queue depth times the recent mean job time."""
        mean = (sum(self._durations) / len(self._durations)
                if self._durations else 1.0)
        with self._lock:
            waiting = len(self._queue) + (1 if self._active else 0)
        return round(max(0.1, mean * max(1, waiting)), 3)

    def _scheduler_loop(self) -> None:
        while not self._draining.is_set():
            with self._lock:
                job_id = self._queue.popleft() if self._queue else None
            if job_id is None:
                self._wake.wait(0.05)
                self._wake.clear()
                continue
            job = self.registry.get(job_id)
            if job.state in TERMINAL_STATES:     # cancelled while queued
                continue
            started = time.monotonic()
            self._active = job_id
            try:
                self._run_job(job)
            except Exception:                    # pragma: no cover - defensive
                logger.exception("service: job %s crashed the scheduler "
                                 "iteration; job stays journaled for "
                                 "recovery", job_id)
            finally:
                self._active = None
                self._durations.append(time.monotonic() - started)

    def _run_job(self, job: Job) -> None:
        """Execute one admitted job through the sweep machinery.

        Persistence is the per-job sharded record store; a legacy
        ``checkpoint.json`` left by an older daemon becomes the migration
        seed on the first resume (the runner appends its records to the
        store once, then continues shard-incrementally).
        """
        job_id = job.job_id
        legacy = self.checkpoint_path(job_id)
        store_dir = self.store_path(job_id)
        os.makedirs(os.path.dirname(store_dir), exist_ok=True)
        self.registry.transition("running", job_id)
        options = job.options or {}
        resume = legacy if (os.path.exists(legacy)
                            or os.path.exists(f"{legacy}.bak")) else None
        job_store = None

        def store_counters() -> Dict:
            if job_store is None:
                return {}
            return {key: value for key, value in job_store.stats().items()
                    if key != "kind"}

        def on_progress(progress) -> None:
            self.fleet.beat(job_id)
            if progress.checkpointed:
                # The store flush is durable at this point; the kill site
                # between it and the journal commit is the acceptance
                # criterion's "between checkpoint and journal commit".
                faults.service_fault(f"daemon:post_checkpoint:{job_id}")
                self.registry.transition(
                    "checkpoint", job_id, records_done=progress.records,
                    failed_runs=progress.failed,
                    store_counters=store_counters())

        def should_stop() -> bool:
            return (self.registry.get(job_id).cancel_requested
                    or self._draining.is_set())

        try:
            # Spec parsing sits inside the try: a journaled spec that no
            # longer round-trips (schema drift across versions, say) must
            # land the job in `failed`, not wedge it in `running`.  So does
            # the store open — an unrecoverably damaged store directory
            # fails the job visibly instead of wedging the scheduler.
            spec = SweepSpec.from_json_dict(job.spec)
            from ..store import ShardedRecordStore
            job_store = ShardedRecordStore(store_dir, spec=spec)
            runner = SweepRunner(spec, self.fleet.executor,
                                 ensembles=options.get("ensembles", False))
            result = runner.run(
                resume_from=resume, store=job_store,
                checkpoint_every=options.get("checkpoint_every",
                                             self.checkpoint_every),
                progress=on_progress, should_stop=should_stop)
        except Exception as error:
            logger.exception("service: job %s failed", job_id)
            self.registry.transition("failed", job_id, error=repr(error))
            return
        finally:
            if job_store is not None:
                job_store.close()
        finished = (len(result.records) + len(result.failed_runs)
                    >= job.total_runs)
        if self.registry.get(job_id).cancel_requested and not finished:
            self.registry.transition("cancelled", job_id)
            logger.info("service: job %s cancelled after draining (%d/%d "
                        "records checkpointed)", job_id, len(result.records),
                        job.total_runs)
            return
        if not finished:
            # Drained by shutdown: stay `running` in the journal so the next
            # start re-admits and resumes; record the final checkpoint depth.
            self.registry.transition(
                "checkpoint", job_id, records_done=len(result.records),
                failed_runs=len(result.failed_runs),
                store_counters=store_counters())
            logger.info("service: job %s drained at %d/%d records for "
                        "shutdown", job_id, len(result.records),
                        job.total_runs)
            return
        faults.service_fault(f"daemon:pre_commit:{job_id}")
        self.registry.transition(
            "done", job_id, records_done=len(result.records),
            failed_runs=len(result.failed_runs),
            store_counters=store_counters())
        logger.info("service: job %s done (%d records, %d quarantined)",
                    job_id, len(result.records), len(result.failed_runs))


def install_signal_handlers(service: SweepService,
                            signals: Tuple[int, ...] = (signal.SIGTERM,
                                                        signal.SIGINT),
                            on_shutdown: Optional[Callable[[], None]] = None,
                            ) -> None:
    """Wire SIGTERM/SIGINT to a graceful drain (call from the main thread).

    The handler only *requests* the drain (signal handlers must not block);
    the foreground loop — e.g. :func:`repro.service.api.serve_forever` —
    notices ``service.draining`` and performs the actual shutdown.
    """
    def _handler(signum, frame):              # pragma: no cover - signal path
        logger.warning("service: received signal %d; draining", signum)
        service._draining.set()
        service._wake.set()
        if on_shutdown is not None:
            on_shutdown()

    for signum in signals:
        signal.signal(signum, _handler)
