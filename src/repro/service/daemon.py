"""The sweep daemon: a crash-safe, fault-isolated multi-job sweep service.

:class:`SweepService` accepts :class:`~repro.sweep.spec.SweepSpec` jobs and
schedules up to ``max_concurrent`` of them *concurrently* onto one resident
executor fleet (the fleet — and its attached
:class:`~repro.sim.shared_store.SharedPhysicsStore` — lives for the daemon's
lifetime, so physics derived for one client's job is reused by every later
job).  Every lifecycle transition is journaled to the durable write-ahead
:class:`~repro.service.journal.JobJournal`.

Scheduling is round-based fair share: each round takes up to
``fair_share_quantum`` work units from every active job, executes the mixed
slice as one executor pass, and routes each outcome back to its owning job's
:class:`~repro.sweep.runner.SweepPass` — so per-job progress, checkpointing
and record stores stay fully independent while the fleet interleaves work
from all of them.

The robustness contract, end to end:

* **Crash safety** — ``kill -9`` the daemon at any instant, restart it over
  the same data directory, and every admitted job completes with records
  bit-identical to an uninterrupted run: the journal replays the job table,
  interrupted jobs are re-admitted, and each resumes from its last durable
  checkpoint (deterministic seeds make re-running the tail harmless).
* **Fault isolation (circuit breaker)** — a *poison* job whose runs
  repeatedly kill or hang workers tears the shared fleet down for everyone.
  Each fleet rebuild is attributed to the job(s) whose runs' deadlines
  expired; a job charged with ``breaker_budget`` rebuilds is quarantined to
  the ``suspended`` registry state (its partial records stay durable and
  resumable) while healthy jobs keep executing.  ``resume()`` lifts the
  quarantine explicitly; a suspended job stays suspended across restarts.
* **Single writer (lease)** — the state dir is fenced by a heartbeat lease
  (:class:`~repro.service.lease.StateDirLease`): a second daemon refuses to
  start over a live lease, a ``kill -9``'d holder is taken over immediately
  (same host) or after the TTL (foreign host), and a daemon that observes
  its lease stolen fences its journal writes and drains.
* **Disk exhaustion** — ``ENOSPC`` on the journal or a record store is a
  degraded mode, not a crash: writes buffer in memory, ``/health`` reports
  ``degraded`` with a reason rollup, admission returns 503, and the backlog
  drains automatically once space returns.
* **Admission control** — the job queue is bounded; a full queue rejects new
  work with :class:`Backpressure` (HTTP 429 + ``retry_after``) instead of
  accepting unbounded liabilities.
* **Idempotent submission** — a client-supplied ``job_key`` makes resubmits
  (retries after a lost response, duplicate users asking the same question)
  attach to the existing job instead of recomputing.
* **Cancellation** — a queued or suspended job cancels instantly; a running
  job drains cleanly (in-flight work checkpoints, the partial result stays
  resumable).
* **Graceful shutdown** — ``shutdown()`` (wire it to SIGTERM via
  :func:`install_signal_handlers`) stops admitting, drains every running job
  to a checkpoint, journals a clean stop, and releases the lease; queued
  jobs re-admit on the next start.
* **Health** — :meth:`SweepService.health` reports fleet liveness, queue
  depth, active jobs, lease state, journal and store counters.

On-disk layout (everything under one ``data_dir``)::

    data_dir/
      LEASE.json               single-writer ownership (repro.service.lease)
      journal.jsonl            the write-ahead job journal
      store/                   persistent shared physics store
      jobs/<job_id>/records/   per-job sharded record store (see repro.store)
      jobs/<job_id>/checkpoint.json   legacy single-JSON checkpoints (+ .bak);
                                      still readable — a job resumed over one
                                      migrates into the sharded store

Per-job persistence goes through :class:`repro.store.ShardedRecordStore`:
records append as they complete and checkpoints are fsync-batched flushes,
so checkpoint cost stays flat as jobs grow.  A data directory created by an
older daemon (``checkpoint.json`` only) recovers seamlessly — the first
resume seeds the sharded store from the legacy checkpoint and continues
shard-incrementally, bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import logging
import os
import signal
import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..sweep import faults
from ..sweep.records import SweepResult
from ..sweep.runner import (PoolExecutor, SerialExecutor, SweepPass,
                            SweepRunner, _as_outcomes, _member_runs,
                            execute_work)
from ..sweep.spec import RetryPolicy, SweepSpec
from .journal import JobJournal
from .lease import LeaseHeld, StateDirLease
from .registry import Job, JobRegistry, TERMINAL_STATES

__all__ = ["Backpressure", "LeaseHeld", "ResidentFleet", "ServiceUnavailable",
           "StateDirLease", "SweepService", "install_signal_handlers"]

logger = logging.getLogger("repro.service")

Executor = Union[SerialExecutor, PoolExecutor]


class Backpressure(RuntimeError):
    """The job queue is full — retry after ``retry_after`` seconds (429)."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(
            f"job queue is full; retry after {retry_after:.1f}s")
        self.retry_after = retry_after


class ServiceUnavailable(RuntimeError):
    """The daemon cannot admit work right now (503): draining, fenced by a
    stolen lease, or degraded by a full disk."""


class ResidentFleet:
    """The daemon's long-lived executor plus its shared physics store.

    Unlike a per-sweep executor pass, the fleet persists across jobs: the
    store directory is attached once (parent process included, so even a
    serial fleet reuses physics across jobs *and* daemon restarts), and the
    executor object is reused for every scheduler round.  Heartbeats come
    from the per-job progress callbacks — a fleet that stops beating while
    jobs are active is wedged, and the health endpoint says so.
    """

    def __init__(self, executor: Executor, store_dir: Optional[str]) -> None:
        self.executor = executor
        self.store_dir = store_dir
        self.store = None
        self._beat_lock = threading.Lock()
        self._beat: Tuple[Optional[str], float] = (None, 0.0)

    def start(self) -> None:
        if self.store_dir is not None:
            from ..sim.level_cache import attach_shared_store
            self.store = attach_shared_store(self.store_dir,
                                             record_events=False)

    def stop(self) -> None:
        if self.store is not None:
            from ..sim.level_cache import detach_shared_store
            detach_shared_store()
            self.store = None

    def beat(self, job_id: str) -> None:
        with self._beat_lock:
            self._beat = (job_id, time.monotonic())

    def liveness(self) -> Dict:
        with self._beat_lock:
            job_id, ts = self._beat
        supervised = getattr(self.executor, "supervised",
                             getattr(self.executor, "retry_policy", None)
                             is not None)
        return {
            "executor": type(self.executor).__name__,
            "supervised": bool(supervised),
            "processes": getattr(self.executor, "processes", None) or 1,
            "last_progress_job": job_id,
            "last_progress_age_s": (round(time.monotonic() - ts, 3)
                                    if job_id is not None else None),
            "store_attached": self.store is not None,
        }


class _ActiveJob:
    """Scheduler-side state for one job currently sharing the fleet."""

    def __init__(self, job: Job, sweep_pass: SweepPass, pending_items,
                 store) -> None:
        self.job_id = job.job_id
        self.total_runs = job.total_runs
        self.sweep_pass = sweep_pass
        self.pending: deque = deque(pending_items)
        self.store = store
        self.strikes = 0              #: fleet rebuilds attributed to this job
        self.cancelled = False        #: cancel observed mid-round
        self.started = time.monotonic()

    @property
    def finished(self) -> bool:
        """Every run has an outcome (a record or a quarantined failure)."""
        result = self.sweep_pass.result
        return (result is not None and not self.pending
                and len(result.records) + len(result.failed_runs)
                >= self.total_runs)

    def store_counters(self) -> Dict:
        if self.store is None:
            return {}
        return {key: value for key, value in self.store.stats().items()
                if key != "kind"}

    def close_store(self) -> None:
        if self.store is not None:
            self.store.close()
            self.store = None


class SweepService:
    """The daemon: journal + registry + bounded queue + resident fleet.

    Up to ``max_concurrent`` jobs execute concurrently, interleaved onto the
    fleet in fair-share rounds of ``fair_share_quantum`` work units per job.
    Fault isolation between them is the point: each job has its own record
    store, checkpoint cadence and circuit breaker, so one job's poison runs
    or full disk cannot take its neighbours down.  All public methods are
    thread-safe — the HTTP transport calls them from handler threads.
    """

    def __init__(self, data_dir: str,
                 executor: Optional[Executor] = None,
                 processes: Optional[int] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 run_timeout: Optional[float] = None,
                 max_queue: int = 8,
                 checkpoint_every: int = 4,
                 compact_bytes: int = 1 << 20,
                 attach_store: bool = True,
                 max_concurrent: int = 4,
                 fair_share_quantum: int = 4,
                 breaker_budget: int = 2,
                 lease_ttl: float = 2.0,
                 lease_wait: float = 0.0) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must admit at least one job")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be a positive "
                             "record count")
        if max_concurrent < 1:
            raise ValueError("max_concurrent must schedule at least one job")
        if fair_share_quantum < 1:
            raise ValueError("fair_share_quantum must take at least one "
                             "work unit per job per round")
        if breaker_budget < 1:
            raise ValueError("breaker_budget must allow at least one "
                             "fleet rebuild before tripping")
        self.data_dir = data_dir
        os.makedirs(data_dir, exist_ok=True)
        self.max_queue = max_queue
        self.checkpoint_every = checkpoint_every
        self.compact_bytes = compact_bytes
        self.max_concurrent = max_concurrent
        self.fair_share_quantum = fair_share_quantum
        self.breaker_budget = breaker_budget
        self.lease_ttl = lease_ttl
        self.lease_wait = lease_wait
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, backoff=0.05, jitter="decorrelated",
            max_backoff=5.0)

        store_dir = os.path.join(data_dir, "store") if attach_store else None
        if executor is None:
            if processes is not None and processes > 1:
                executor = PoolExecutor(
                    processes=processes, retry_policy=self.retry_policy,
                    run_timeout=run_timeout, shared_cache_dir=store_dir,
                    shared_cache_events=False)
            else:
                executor = SerialExecutor(retry_policy=self.retry_policy)
        self.fleet = ResidentFleet(executor, store_dir)

        self.journal = JobJournal(os.path.join(data_dir, "journal.jsonl"))
        self.registry = JobRegistry.open(self.journal)

        self._queue: deque = deque()
        self._lock = threading.RLock()
        self._draining = threading.Event()
        self._wake = threading.Event()
        self._active_jobs: Dict[str, _ActiveJob] = {}
        self._durations: deque = deque(maxlen=8)
        self._scheduler: Optional[threading.Thread] = None
        self._started_ts: Optional[float] = None
        self._lease: Optional[StateDirLease] = None
        self._lease_lost = threading.Event()
        self._records_cond = threading.Condition()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "SweepService":
        """Acquire the lease, recover, re-admit interrupted jobs, schedule.

        Raises :class:`~repro.service.lease.LeaseHeld` when another live
        daemon owns the state dir — refusing to double-run it is the whole
        point of the lease.
        """
        if self._scheduler is not None:
            raise RuntimeError("service already started")
        if self._lease is None:
            self._lease = StateDirLease(self.data_dir, ttl=self.lease_ttl,
                                        on_lost=self._on_lease_lost)
        self._lease.acquire(wait=self.lease_wait)
        self.registry.maybe_compact(self.compact_bytes)
        self.fleet.start()
        self.journal.append("service_start",
                            pid=os.getpid(), data_dir=self.data_dir)
        interrupted = self.registry.recover_interrupted()
        with self._lock:
            for job in interrupted:
                self._queue.append(job.job_id)
        if interrupted:
            logger.warning("service: recovered %d interrupted job(s): %s",
                           len(interrupted),
                           ", ".join(j.job_id for j in interrupted))
        self._started_ts = time.monotonic()
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="sweep-service-scheduler",
            daemon=True)
        self._scheduler.start()
        return self

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Graceful stop: drain, checkpoint, journal, release fleet + lease.

        Safe to call more than once.  Running jobs (if any) drain at their
        next round boundary and stay ``running`` in the journal — the next
        :meth:`start` re-admits them and resumes from their checkpoints.
        """
        self._draining.set()
        self._wake.set()
        faults.service_fault("daemon:drain")
        scheduler = self._scheduler
        if scheduler is not None:
            scheduler.join(timeout=timeout)
        if not self._lease_lost.is_set():
            # Fenced when the lease was stolen: the thief owns the journal
            # now, and our stop event would interleave with its appends.
            self.journal.append("service_stop", pid=os.getpid())
        self.fleet.stop()
        self.journal.close()
        if self._lease is not None:
            self._lease.release()
            self._lease = None
        self._scheduler = None

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def _on_lease_lost(self, record: Dict) -> None:
        logger.error("service: state-dir lease lost to %r — fencing the "
                     "journal and draining", record.get("owner"))
        self._lease_lost.set()
        self._draining.set()
        self._wake.set()
        self._notify_records()

    def _notify_records(self) -> None:
        with self._records_cond:
            self._records_cond.notify_all()

    # ------------------------------------------------------------------ #
    # client surface
    # ------------------------------------------------------------------ #
    def submit(self, spec_dict: Dict, job_key: Optional[str] = None,
               options: Optional[Dict] = None) -> Tuple[Job, bool]:
        """Admit a sweep job; returns ``(job, created)``.

        Raises :class:`Backpressure` when the queue is full (duplicate
        ``job_key`` submissions are exempt — attaching to existing work
        costs nothing) and :class:`ServiceUnavailable` while draining,
        fenced by a stolen lease, or disk-degraded — a full disk must not
        be handed new durability obligations it cannot meet.  The spec is
        validated by round-tripping it through
        :class:`~repro.sweep.spec.SweepSpec` before anything is journaled.
        """
        spec = SweepSpec.from_json_dict(spec_dict)   # validates; raises early
        with self._lock:
            existing = (self.registry.find_by_key(job_key)
                        if job_key is not None else None)
            if existing is None:
                if self._draining.is_set():
                    raise ServiceUnavailable(
                        "service is draining; resubmit after restart")
                # Probe the backlog before judging: admission must resume by
                # itself the moment space returns, not wait for the next
                # scheduler append to happen to drain it.
                self.journal.flush_pending()
                disk_reasons = self._disk_degraded_reasons()
                if disk_reasons:
                    raise ServiceUnavailable(
                        "service is degraded (disk full: "
                        f"{', '.join(disk_reasons)}); retry after space "
                        "is freed")
                if len(self._queue) >= self.max_queue:
                    raise Backpressure(self._retry_after())
            job, created = self.registry.submit(
                spec.to_json_dict(), job_key=job_key, options=options,
                total_runs=spec.n_runs)
            if created:
                self.registry.transition("admit", job.job_id)
                self._queue.append(job.job_id)
                self._wake.set()
            return job, created

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: instantly when queued or suspended, by draining
        at the next outcome boundary when running."""
        with self._lock:
            job = self.registry.get(job_id)
            if job.state in TERMINAL_STATES:
                return job
            self.registry.transition("cancel_request", job_id)
            if job.state in ("submitted", "admitted", "suspended"):
                # Not on the fleet: terminal immediately; the scheduler
                # skips it if it is still queued.
                job = self.registry.transition("cancelled", job_id)
                self._notify_records()
                return job
            return job    # running: the scheduler drains it mid-round

    def resume(self, job_id: str) -> Job:
        """Lift a suspended (circuit-broken) job back into the queue.

        The quarantine is sticky by design — a poison job must not sneak
        back onto the fleet via crash recovery — so resumption is this
        explicit operator action.  Raises
        :class:`~repro.service.registry.JobStateError` (HTTP 409) unless
        the job is actually suspended.
        """
        with self._lock:
            job = self.registry.transition("resume", job_id)
            self._queue.append(job_id)
            self._wake.set()
        logger.info("service: job %s resumed from suspension", job_id)
        self._notify_records()
        return job

    def status(self, job_id: str) -> Dict:
        return self.registry.get(job_id).public_status()

    def jobs(self) -> List[Dict]:
        return [job.public_status() for job in self.registry.list_jobs()]

    def result(self, job_id: str, include_records: bool = True) -> Dict:
        """The result payload of a terminal job (records + aggregates).

        Raises ``KeyError`` for unknown jobs and :class:`JobNotDone` —
        well, ``RuntimeError`` — for jobs that have not reached a terminal
        state (the API maps it to 409).
        """
        job = self.registry.get(job_id)
        if job.state not in TERMINAL_STATES:
            raise RuntimeError(
                f"job {job_id} is {job.state}; results exist only for "
                f"terminal states {TERMINAL_STATES}")
        result = self._load_job_result(job_id)
        payload = result.summary_payload(include_records=include_records)
        payload.update(job.public_status())
        return payload

    def records(self, job_id: str, offset: int = 0, limit: int = 256,
                wait_seq: Optional[int] = None,
                wait_timeout: float = 10.0) -> Dict:
        """A page of a job's records, straight off its record store.

        Unlike :meth:`result`, this works for *any* job state — a running
        job's durable records page out while it executes (the scan is
        non-mutating, so it cannot disturb the writer) — and never
        materializes aggregates, so it stays cheap for huge sweeps.

        Long-polling: ``wait_seq=n`` blocks (up to ``wait_timeout``
        seconds, capped at 60) until the store holds *more* than ``n``
        records, or the job comes to rest (terminal or suspended) —
        whichever is first.  A client streams a job live by passing the
        ``seq`` of its previous response, paying one request per batch of
        records instead of one per poll interval.
        """
        self.registry.get(job_id)                  # KeyError for unknown ids
        offset = max(0, int(offset))
        limit = max(1, min(int(limit), 4096))
        deadline = None
        if wait_seq is not None:
            wait_seq = max(0, int(wait_seq))
            deadline = time.monotonic() + max(0.0, min(float(wait_timeout),
                                                       60.0))
        while True:
            records, failed = self._scan_job_records(job_id)
            job = self.registry.get(job_id)
            resting = (job.state in TERMINAL_STATES
                       or job.state == "suspended")
            if deadline is None or len(records) > wait_seq or resting \
                    or time.monotonic() >= deadline:
                break
            remaining = deadline - time.monotonic()
            with self._records_cond:
                self._records_cond.wait(
                    timeout=min(0.25, max(0.01, remaining)))
        page = records[offset:offset + limit]
        return {
            "job_id": job_id, "state": job.state, "resting": resting,
            "seq": len(records),
            "total_records": len(records), "total_failed": len(failed),
            "offset": offset, "limit": limit, "count": len(page),
            "records": [record.to_json_dict() for record in page],
        }

    def _scan_job_records(self, job_id: str) -> Tuple[List, List]:
        store_dir = self.store_path(job_id)
        legacy = self.checkpoint_path(job_id)
        if os.path.isdir(store_dir):
            from ..store import scan_store
            report = scan_store(store_dir)
            return report.records, report.failed
        if os.path.exists(legacy) or os.path.exists(f"{legacy}.bak"):
            loaded = SweepResult.load_resumable(legacy)
            return loaded.sorted_records(), loaded.failed_runs
        return [], []

    def _load_job_result(self, job_id: str) -> SweepResult:
        """A job's merged result from whichever persistence it has.

        The sharded store is authoritative when present (it holds everything
        a migrated legacy checkpoint held, plus whatever ran since); the
        legacy single-JSON checkpoint covers pre-store data directories.
        """
        store_dir = self.store_path(job_id)
        legacy = self.checkpoint_path(job_id)
        if os.path.isdir(store_dir):
            return SweepResult.load_resumable(store_dir)
        if os.path.exists(legacy) or os.path.exists(f"{legacy}.bak"):
            return SweepResult.load_resumable(legacy)
        return SweepResult()

    #: per-job record-store damage/repair counters rolled up into health.
    _STORE_DAMAGE_KEYS = ("torn_tail_dropped", "corrupt_lines_dropped",
                          "shards_quarantined", "manifest_rebuilds")

    def _disk_degraded_reasons(self) -> List[str]:
        """Subsystems currently buffering writes because the disk is full."""
        reasons = []
        if self.journal.disk_degraded():
            reasons.append(
                f"journal ({self.journal.pending_lines()} buffered line(s))")
        with self._lock:
            entries = list(self._active_jobs.items())
        for job_id, entry in entries:
            store = entry.store
            if store is not None and store.disk_degraded():
                reasons.append(f"record store {job_id}")
        return reasons

    def health(self) -> Dict:
        """Liveness + load + durability counters, for monitors and tests.

        ``degraded`` aggregates every self-healing subsystem: the shared
        physics store's error counters, the journal's recovery counters,
        the per-job record stores' damage counters, disk-full write
        buffering, and a stolen lease — a daemon that survived any of them
        keeps serving, but monitors can see it happened.
        ``degraded_reasons`` names the live conditions (a stolen lease, a
        full disk) as opposed to the historical counters.
        """
        journal_stats = vars(self.journal.stats).copy()
        journal_stats["size_bytes"] = self.journal.size_bytes()
        journal_stats["pending_lines"] = self.journal.pending_lines()
        store = self.fleet.store
        physics_stats = store.stats() if store is not None else None
        with self._lock:
            queue_depth = len(self._queue)
            active_ids = sorted(self._active_jobs)
        record_stores: Dict = {"jobs_with_stats": 0, "compactions": 0}
        record_stores.update({key: 0 for key in self._STORE_DAMAGE_KEYS})
        for job in self.registry.list_jobs():
            if not job.store_stats:
                continue
            record_stores["jobs_with_stats"] += 1
            for key in (*self._STORE_DAMAGE_KEYS, "compactions"):
                record_stores[key] += int(job.store_stats.get(key, 0))
        reasons = []
        if self._lease_lost.is_set():
            reasons.append("lease_stolen")
        reasons.extend(f"disk_full: {what}"
                       for what in self._disk_degraded_reasons())
        degraded = bool(
            reasons
            or (physics_stats is not None
                and (physics_stats.get("degraded")
                     or physics_stats.get("load_errors")
                     or physics_stats.get("store_errors")
                     or physics_stats.get("corrupt_rejected")))
            or journal_stats.get("torn_tail_dropped")
            or journal_stats.get("corrupt_lines")
            or journal_stats.get("disk_full_errors")
            or any(record_stores[key] for key in self._STORE_DAMAGE_KEYS))
        lease = self._lease
        return {
            "status": "draining" if self._draining.is_set() else "ok",
            "degraded": degraded,
            "degraded_reasons": reasons,
            "uptime_s": (round(time.monotonic() - self._started_ts, 3)
                         if self._started_ts is not None else None),
            "queue_depth": queue_depth,
            "max_queue": self.max_queue,
            "active_job": active_ids[0] if active_ids else None,
            "active_jobs": active_ids,
            "max_concurrent": self.max_concurrent,
            "jobs": self.registry.counts(),
            "fleet": self.fleet.liveness(),
            "scheduler_alive": (self._scheduler is not None
                                and self._scheduler.is_alive()),
            "lease": (None if lease is None else
                      {"owner": lease.owner, "lost": lease.lost,
                       "takeovers": lease.takeovers, "ttl": lease.ttl}),
            "journal": journal_stats,
            "store": physics_stats,
            "record_stores": record_stores,
        }

    def checkpoint_path(self, job_id: str) -> str:
        return os.path.join(self.data_dir, "jobs", job_id, "checkpoint.json")

    def store_path(self, job_id: str) -> str:
        """The job's sharded record-store directory (see :mod:`repro.store`)."""
        return os.path.join(self.data_dir, "jobs", job_id, "records")

    def wait_for(self, job_id: str, timeout: float = 60.0,
                 poll: float = 0.02,
                 states: Optional[Tuple[str, ...]] = None) -> Dict:
        """Block until ``job_id`` reaches one of ``states`` (default: any
        terminal state) — a testing/demo aid.  Pass
        ``states=("suspended", *TERMINAL_STATES)`` to also return when the
        circuit breaker quarantines the job."""
        states = TERMINAL_STATES if states is None else states
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in states:
                return status
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s")
            time.sleep(poll)

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def _retry_after(self) -> float:
        """Backpressure hint: queue depth times the recent mean job time."""
        mean = (sum(self._durations) / len(self._durations)
                if self._durations else 1.0)
        with self._lock:
            waiting = len(self._queue) + len(self._active_jobs)
        return round(max(0.1, mean * max(1, waiting)), 3)

    def _scheduler_loop(self) -> None:
        try:
            while not self._draining.is_set():
                self._admit_waiting()
                with self._lock:
                    idle = not self._active_jobs
                if idle:
                    self._wake.wait(0.05)
                    self._wake.clear()
                    continue
                try:
                    self._run_round()
                except Exception:        # pragma: no cover - defensive
                    logger.exception(
                        "service: scheduler round crashed; active jobs stay "
                        "journaled for recovery")
                    time.sleep(0.05)
        finally:
            self._drain_all()

    def _admit_waiting(self) -> None:
        """Move queued jobs into the active set up to ``max_concurrent``."""
        while True:
            with self._lock:
                if len(self._active_jobs) >= self.max_concurrent \
                        or not self._queue:
                    return
                job_id = self._queue.popleft()
                if job_id in self._active_jobs:
                    continue             # duplicate queue entry
            job = self.registry.get(job_id)
            if job.state != "admitted":
                # Cancelled or re-suspended while queued, or a duplicate
                # entry for a job that already ran (recovery re-queues what
                # a pre-start submit already queued).
                continue
            try:
                entry = self._activate(job)
            except Exception:            # pragma: no cover - defensive
                logger.exception("service: job %s failed to activate; it "
                                 "stays journaled for recovery", job_id)
                continue
            if entry is not None:
                with self._lock:
                    self._active_jobs[job_id] = entry

    def _activate(self, job: Job) -> Optional[_ActiveJob]:
        """Open one admitted job's persistence and plan its pending work.

        A legacy ``checkpoint.json`` left by an older daemon becomes the
        migration seed on the first resume (its records are appended to the
        sharded store once, then execution continues shard-incrementally).
        """
        job_id = job.job_id
        legacy = self.checkpoint_path(job_id)
        store_dir = self.store_path(job_id)
        os.makedirs(os.path.dirname(store_dir), exist_ok=True)
        self.registry.transition("running", job_id)
        options = job.options or {}
        resume = legacy if (os.path.exists(legacy)
                            or os.path.exists(f"{legacy}.bak")) else None
        job_store = None
        try:
            # Spec parsing sits inside the try: a journaled spec that no
            # longer round-trips (schema drift across versions, say) must
            # land the job in `failed`, not wedge it in `running`.  So does
            # the store open — an unrecoverably damaged store directory
            # fails the job visibly instead of wedging the scheduler.
            spec = SweepSpec.from_json_dict(job.spec)
            from ..store import ShardedRecordStore
            job_store = ShardedRecordStore(store_dir, spec=spec)
            runner = SweepRunner(spec, self.fleet.executor,
                                 ensembles=options.get("ensembles", False))
            sweep_pass = SweepPass(
                runner, resume_from=resume, store=job_store,
                checkpoint_every=options.get("checkpoint_every",
                                             self.checkpoint_every))
            pending_items = sweep_pass.prepare()
        except Exception as error:
            logger.exception("service: job %s failed", job_id)
            if job_store is not None:
                job_store.close()
            self.registry.transition("failed", job_id, error=repr(error))
            self._notify_records()
            return None
        entry = _ActiveJob(job, sweep_pass, pending_items, job_store)

        def on_progress(progress, job_id=job_id, entry=entry) -> None:
            self.fleet.beat(job_id)
            if progress.checkpointed:
                # The store flush is durable at this point; the kill site
                # between it and the journal commit is the acceptance
                # criterion's "between checkpoint and journal commit".
                faults.service_fault(f"daemon:post_checkpoint:{job_id}")
                self.registry.transition(
                    "checkpoint", job_id, records_done=progress.records,
                    failed_runs=progress.failed,
                    store_counters=entry.store_counters())

        sweep_pass.progress = on_progress
        return entry

    def _run_round(self) -> None:
        """One fair-share round: slice, execute, route, judge.

        Takes up to ``fair_share_quantum`` work units from every active job
        (round-robin), executes the mixed slice as a single executor pass,
        routes each outcome to its owning job's :class:`SweepPass`, then
        settles the round: breakers charged from the pass's fleet-rebuild
        attribution, cancelled jobs drained, complete jobs committed.
        """
        with self._lock:
            round_ids = list(self._active_jobs)
        # Cancel sweep first: a job cancelled while between rounds drains
        # without costing it another slice.
        for job_id in round_ids:
            if self.registry.get(job_id).cancel_requested:
                self._cancel_job(job_id)
        slice_items: List = []
        owners: Dict[str, str] = {}
        with self._lock:
            round_ids = list(self._active_jobs)
        for job_id in round_ids:
            entry = self._active_jobs.get(job_id)
            if entry is None:
                continue
            taken = 0
            while entry.pending and taken < self.fair_share_quantum:
                item = entry.pending[0]
                ids = [run.run_id for run in _member_runs(item)]
                if any(rid in owners for rid in ids):
                    # Two jobs sharing a run id (same spec name) cannot fly
                    # in one slice — ownership would be ambiguous.  Defer
                    # this job's remainder a round.
                    break
                entry.pending.popleft()
                slice_items.append(item)
                owners.update((rid, job_id) for rid in ids)
                taken += 1
        if not slice_items:
            for job_id in round_ids:
                entry = self._active_jobs.get(job_id)
                if entry is not None and not entry.pending:
                    self._finish_job(job_id)
            return
        executor = self.fleet.executor
        imap = getattr(executor, "imap_unordered", None)
        stream = imap(execute_work, slice_items) if imap is not None \
            else iter(executor.map(execute_work, slice_items))
        interrupted = False
        try:
            for outcome in stream:
                for record in _as_outcomes(outcome):
                    owner = owners.get(record.run_id)
                    entry = (self._active_jobs.get(owner)
                             if owner is not None else None)
                    if entry is None or entry.cancelled:
                        continue
                    if self.registry.get(owner).cancel_requested:
                        # Stop folding this job's outcomes right here: its
                        # durable records freeze at the cancel point, like
                        # the old per-outcome drain.
                        entry.cancelled = True
                        continue
                    try:
                        entry.sweep_pass.consume(record)
                    except Exception as error:
                        logger.exception(
                            "service: job %s failed consuming run %s",
                            owner, record.run_id)
                        self._fail_job(owner, error)
                        continue
                    self._notify_records()
                if self._draining.is_set():
                    interrupted = True
                    break
        finally:
            if interrupted:
                close = getattr(stream, "close", None)
                if close is not None:
                    close()
        self._charge_breakers(owners)
        for job_id in round_ids:
            entry = self._active_jobs.get(job_id)
            if entry is None:
                continue
            if entry.cancelled \
                    or self.registry.get(job_id).cancel_requested:
                self._cancel_job(job_id)
            elif entry.strikes >= self.breaker_budget \
                    and not entry.finished:
                self._suspend_job(job_id)
            elif not interrupted and entry.finished:
                self._finish_job(job_id)

    def _charge_breakers(self, owners: Dict[str, str]) -> None:
        """Attribute the pass's fleet rebuilds to the jobs that caused them.

        ``ExecutorStats.rebuild_victims`` lists, per teardown, the run ids
        whose deadlines expired (the suspects — innocent in-flight runs are
        requeued but not listed).  Each teardown charges one strike to every
        distinct owning job; ``breaker_budget`` strikes trip the breaker.
        """
        stats = getattr(self.fleet.executor, "stats", None)
        for victim_ids in list(getattr(stats, "rebuild_victims", []) or []):
            culprits = {owners[rid] for rid in victim_ids if rid in owners}
            for job_id in culprits:
                entry = self._active_jobs.get(job_id)
                if entry is None:
                    continue
                entry.strikes += 1
                logger.warning(
                    "service: job %s charged with a fleet rebuild "
                    "(strike %d/%d)", job_id, entry.strikes,
                    self.breaker_budget)

    def _pop_active(self, job_id: str) -> Optional[_ActiveJob]:
        with self._lock:
            entry = self._active_jobs.pop(job_id, None)
        if entry is not None:
            self._durations.append(time.monotonic() - entry.started)
        return entry

    def _settle_store(self, entry: _ActiveJob, stopped: bool) -> Dict:
        """Finalize a departing job's persistence; returns store counters."""
        try:
            entry.sweep_pass.finalize(stopped=stopped)
        finally:
            counters = entry.store_counters()
            entry.close_store()
        return counters

    def _finish_job(self, job_id: str) -> None:
        """Commit one complete job: flush, seal, journal ``done``."""
        entry = self._pop_active(job_id)
        if entry is None:
            return
        try:
            counters = self._settle_store(entry, stopped=False)
        except Exception as error:
            # A full disk at the finish line must not fail the job: its
            # outcomes are re-runnable.  Requeue; the store backlog drains
            # once space returns and the next finish seals cleanly.
            logger.warning(
                "service: job %s could not finalize (%r); requeued to retry "
                "after the disk recovers", job_id, error)
            self.registry.transition(
                "checkpoint", job_id,
                records_done=len(entry.sweep_pass.result.records),
                failed_runs=len(entry.sweep_pass.result.failed_runs))
            with self._lock:
                self._queue.append(job_id)
            return
        result = entry.sweep_pass.summarize()
        faults.service_fault(f"daemon:pre_commit:{job_id}")
        self.registry.transition(
            "done", job_id, records_done=len(result.records),
            failed_runs=len(result.failed_runs),
            store_counters=counters)
        logger.info("service: job %s done (%d records, %d quarantined)",
                    job_id, len(result.records), len(result.failed_runs))
        self._notify_records()

    def _cancel_job(self, job_id: str) -> None:
        entry = self._pop_active(job_id)
        if entry is None:
            return
        result = entry.sweep_pass.result
        if entry.finished:
            # The work beat the cancellation: commit it rather than discard
            # a complete, durable result.
            counters = self._settle_store(entry, stopped=False)
            self.registry.transition(
                "done", job_id, records_done=len(result.records),
                failed_runs=len(result.failed_runs), store_counters=counters)
            self._notify_records()
            return
        self._settle_store(entry, stopped=True)
        self.registry.transition("cancelled", job_id)
        logger.info("service: job %s cancelled after draining (%d/%d "
                    "records checkpointed)", job_id, len(result.records),
                    entry.total_runs)
        self._notify_records()

    def _suspend_job(self, job_id: str) -> None:
        """Quarantine a poison job; its partial records stay resumable."""
        entry = self._pop_active(job_id)
        if entry is None:
            return
        counters = self._settle_store(entry, stopped=True)
        result = entry.sweep_pass.result
        reason = (f"circuit breaker: {entry.strikes} fleet rebuild(s) "
                  f"attributed to this job (budget {self.breaker_budget})")
        self.registry.transition(
            "suspend", job_id, reason=reason,
            records_done=len(result.records),
            failed_runs=len(result.failed_runs),
            store_counters=counters)
        logger.warning(
            "service: job %s suspended — %s; %d/%d records stay durable "
            "and resumable", job_id, reason, len(result.records),
            entry.total_runs)
        self._notify_records()

    def _fail_job(self, job_id: str, error: Exception) -> None:
        entry = self._pop_active(job_id)
        if entry is not None:
            try:
                self._settle_store(entry, stopped=True)
            except Exception:            # pragma: no cover - best effort
                logger.exception(
                    "service: job %s store finalize failed during failure "
                    "handling", job_id)
        self.registry.transition("failed", job_id, error=repr(error))
        self._notify_records()

    def _drain_all(self) -> None:
        """Shutdown path: checkpoint every active job, leave it ``running``.

        The next :meth:`start` re-admits drained jobs and resumes them from
        their durable stores.  When the lease was stolen the journal is
        fenced — stores still flush (they are per-job files the thief has
        not touched yet), but no transitions are appended.
        """
        fenced = self._lease_lost.is_set()
        with self._lock:
            job_ids = list(self._active_jobs)
        for job_id in job_ids:
            entry = self._pop_active(job_id)
            if entry is None:
                continue
            try:
                counters = self._settle_store(entry, stopped=True)
            except Exception:            # pragma: no cover - best effort
                logger.exception("service: job %s store flush failed during "
                                 "drain", job_id)
                continue
            if fenced:
                continue
            result = entry.sweep_pass.result
            if self.registry.get(job_id).cancel_requested:
                self.registry.transition("cancelled", job_id)
                continue
            self.registry.transition(
                "checkpoint", job_id, records_done=len(result.records),
                failed_runs=len(result.failed_runs),
                store_counters=counters)
            logger.info("service: job %s drained at %d/%d records for "
                        "shutdown", job_id, len(result.records),
                        entry.total_runs)
        self._notify_records()


def install_signal_handlers(service: SweepService,
                            signals: Tuple[int, ...] = (signal.SIGTERM,
                                                        signal.SIGINT),
                            on_shutdown: Optional[Callable[[], None]] = None,
                            ) -> None:
    """Wire SIGTERM/SIGINT to a graceful drain (call from the main thread).

    The handler only *requests* the drain (signal handlers must not block);
    the foreground loop — e.g. :func:`repro.service.api.serve_forever` —
    notices ``service.draining`` and performs the actual shutdown.
    """
    def _handler(signum, frame):              # pragma: no cover - signal path
        logger.warning("service: received signal %d; draining", signum)
        service._draining.set()
        service._wake.set()
        if on_shutdown is not None:
            on_shutdown()

    for signum in signals:
        signal.signal(signum, _handler)
