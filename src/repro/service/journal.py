"""Durable append-only job journal: the sweep service's write-ahead log.

Every job state transition is journaled *before* the in-memory state (or any
derived work) changes — the WAL discipline.  A daemon killed at any instant
therefore restarts into one of exactly two worlds: the transition is in the
journal (replay applies it) or it is not (the work re-runs; run records are
deterministic, so re-running is harmless).  Either way no answer is lost and
no state is invented.

File format
-----------
One JSON object per line::

    {"seq": 12, "ts": 1754550000.123, "event": "running",
     "job_id": "j000003", "data": {...}, "sha256": "<hex>"}

``sha256`` is the digest of the line's canonical JSON (sorted keys, compact
separators) with the ``sha256`` field removed — the same convention as sweep
checkpoints — so any bit damage to a line is detectable.  ``seq`` increases
strictly by 1; a gap means lines were lost.

Durability: each append is written, flushed, and ``fsync``'d before
:meth:`JobJournal.append` returns.  The torn-write chaos fault
(:func:`repro.sweep.faults.journal_fault`) fires between the flush and the
fsync — the window a real crash tears.

Torn-tail tolerance
-------------------
A crash mid-append leaves a truncated (or digest-broken) *final* line.
:meth:`JobJournal.replay` drops it with a warning and remembers the last good
byte offset; opening the journal for append truncates back to that offset so
the next append starts on a clean line boundary.  Damage *before* the tail is
different — an append-only file does not tear mid-file, so that is disk
corruption: replay stops at the first bad line, quarantines the original file
to ``<path>.corrupt`` for post-mortem, and continues with what was recovered
(every line after a broken one is untrustworthy because ordering can no
longer be proven).

Compaction
----------
The journal grows by one line per transition forever; :meth:`compact`
rewrites it as one ``snapshot`` line per live job (atomic temp-file +
``fsync`` + ``os.replace``, like every other durable write in this repo),
preserving the ``seq`` counter so replay ordering stays monotonic across
compactions.

Disk exhaustion
---------------
``ENOSPC`` is an operations event, not a programming error, so it must not
crash the daemon: an append that hits it truncates any partial line back to
the last durable boundary and buffers the rendered line in memory instead
(:attr:`JournalStats.disk_full_errors` counts the hits,
:meth:`disk_degraded` reports the mode).  Every later append first retries
the backlog in FIFO order — ``seq`` stays monotonic on disk — so durability
resumes automatically the moment space returns.  The window's risk is
bounded and crash-shaped: dying with a non-empty backlog loses a *suffix*
of transitions, which replay already treats as "the work re-runs" — exactly
the contract a kill -9 between append and apply has always had.  Any other
``OSError`` still raises :class:`JournalError`.
"""

from __future__ import annotations

import errno
import hashlib
import json
import logging
import os
import threading
import time
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from ..sweep import faults

__all__ = ["JournalEvent", "JobJournal", "JournalError"]

logger = logging.getLogger("repro.service")


class JournalError(RuntimeError):
    """A journal invariant broke (bad seq ordering, unwritable file, ...)."""


def _line_digest(payload: Dict) -> str:
    canonical = json.dumps(
        {key: value for key, value in payload.items() if key != "sha256"},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class JournalEvent:
    """One journaled state transition."""

    seq: int
    ts: float
    event: str
    job_id: Optional[str]
    data: Dict = field(default_factory=dict)

    def to_json_dict(self) -> Dict:
        return {"seq": self.seq, "ts": self.ts, "event": self.event,
                "job_id": self.job_id, "data": self.data}

    @classmethod
    def from_json_dict(cls, payload: Dict) -> "JournalEvent":
        return cls(seq=int(payload["seq"]), ts=float(payload["ts"]),
                   event=str(payload["event"]), job_id=payload.get("job_id"),
                   data=payload.get("data") or {})


@dataclass
class JournalStats:
    """Counters of one journal instance's lifetime (for the health endpoint)."""

    appended: int = 0
    replayed: int = 0
    torn_tail_dropped: int = 0
    corrupt_lines: int = 0
    compactions: int = 0
    fsyncs: int = 0
    disk_full_errors: int = 0


class JobJournal:
    """Append-only, fsync'd, per-line-checksummed JSONL event log.

    Thread-safe: the service's scheduler thread and its HTTP handler threads
    append concurrently under one lock, so ``seq`` stays strictly monotonic
    and lines never interleave.
    """

    def __init__(self, path: str, fsync: bool = True) -> None:
        self.path = path
        self.fsync = fsync
        self.stats = JournalStats()
        self._lock = threading.Lock()
        self._seq = 0
        self._handle = None
        #: rendered-but-not-yet-durable lines deferred by ENOSPC (FIFO).
        self._pending: Deque[Tuple[bytes, str, Optional[str]]] = deque()
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)

    # ------------------------------------------------------------------ #
    # replay
    # ------------------------------------------------------------------ #
    def replay(self) -> List[JournalEvent]:
        """Read every intact event, tolerating a torn tail (see module doc).

        Also positions the append cursor: the next :meth:`append` continues
        from the last good line (physically truncating a torn tail first).
        """
        with self._lock:
            return self._replay_locked()

    def _replay_locked(self) -> List[JournalEvent]:
        events: List[JournalEvent] = []
        good_offset = 0
        damage: Optional[str] = None
        if os.path.exists(self.path):
            with open(self.path, "rb") as handle:
                offset = 0
                for raw in handle:
                    line_end = offset + len(raw)
                    event, problem = self._parse_line(raw)
                    if event is None:
                        damage = problem
                        break
                    if event.seq != self._last_seq(events) + 1 \
                            and events:
                        damage = (f"seq jumped {self._last_seq(events)} -> "
                                  f"{event.seq}")
                        break
                    events.append(event)
                    good_offset = line_end
                    offset = line_end
        rewritten = False
        if damage is not None:
            rewritten = self._handle_damage(damage, good_offset, events)
        self._seq = self._last_seq(events)
        self.stats.replayed = len(events)
        # A quarantine-rewrite already produced a clean file; otherwise
        # truncate any torn tail back to the last good line boundary.
        self._reopen(None if rewritten else good_offset)
        return events

    @staticmethod
    def _last_seq(events: List[JournalEvent]) -> int:
        return events[-1].seq if events else 0

    def _parse_line(self, raw: bytes):
        """(event, None) for an intact line, (None, reason) otherwise."""
        try:
            text = raw.decode()
            if not text.endswith("\n"):
                return None, "torn tail (no newline)"
            payload = json.loads(text)
            if payload.get("sha256") != _line_digest(payload):
                return None, "line digest mismatch"
            return JournalEvent.from_json_dict(payload), None
        except (ValueError, KeyError, UnicodeDecodeError) as error:
            return None, f"unparseable line ({error})"

    def _handle_damage(self, damage: str, good_offset: int,
                       events: List[JournalEvent]) -> bool:
        """Classify damage: a torn tail is expected, anything deeper is not.

        Returns True when the journal file was quarantined and rewritten
        (mid-file corruption), False for a plain torn tail.
        """
        size = os.path.getsize(self.path)
        trailing = size - good_offset
        # A torn tail is (at most) one damaged line at EOF.  Count the
        # newline-terminated lines beyond the last good offset: more than one
        # line's worth of data means intact-looking lines follow the damage —
        # that is mid-file corruption, not a crash artifact.
        with open(self.path, "rb") as handle:
            handle.seek(good_offset)
            remainder = handle.read()
        tail_lines = remainder.count(b"\n")
        if tail_lines <= 1:
            self.stats.torn_tail_dropped += 1
            logger.warning(
                "journal %s: dropping torn tail (%d byte(s), %s); recovered "
                "%d event(s)", self.path, trailing, damage, len(events))
            return False
        self.stats.corrupt_lines += 1
        corrupt_path = f"{self.path}.corrupt"
        warnings.warn(
            f"journal {self.path!r} is corrupt beyond its tail ({damage}, "
            f"{tail_lines} line(s) after the damage); quarantining the "
            f"original to {corrupt_path!r} and continuing with the "
            f"{len(events)} recovered event(s)", RuntimeWarning, stacklevel=4)
        logger.error(
            "journal %s: mid-file corruption (%s); original quarantined to "
            "%s, %d event(s) recovered", self.path, damage, corrupt_path,
            len(events))
        os.replace(self.path, corrupt_path)
        # Rewrite only the recovered prefix so the journal is intact again.
        self._rewrite(events)
        return True

    def _reopen(self, good_offset: Optional[int]) -> None:
        """(Re)open for append, truncating a torn tail when one was found."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        if os.path.exists(self.path) and good_offset is not None \
                and os.path.getsize(self.path) > good_offset:
            with open(self.path, "r+b") as handle:
                handle.truncate(good_offset)
                handle.flush()
                os.fsync(handle.fileno())

    # ------------------------------------------------------------------ #
    # append
    # ------------------------------------------------------------------ #
    def append(self, event: str, job_id: Optional[str] = None,
               **data) -> JournalEvent:
        """Append one event — durably, or buffered when the disk is full.

        Returns once the line is on disk, *or* — on ``ENOSPC`` — once it is
        queued in the in-memory backlog behind every earlier deferred line
        (see the module doc's *Disk exhaustion* section).  Callers can
        observe the degraded mode via :meth:`disk_degraded`.
        """
        with self._lock:
            self._seq += 1
            entry = JournalEvent(seq=self._seq, ts=time.time(), event=event,
                                 job_id=job_id, data=data)
            line = self._render(entry)
            self._drain_pending_locked()
            if self._pending:
                # Still blocked: keep FIFO order, queue behind the backlog.
                self._pending.append((line, event, job_id))
            else:
                try:
                    self._write_line_locked(line, event, job_id)
                except OSError as error:
                    if error.errno != errno.ENOSPC:
                        raise JournalError(
                            f"journal {self.path!r} append failed: "
                            f"{error}") from error
                    self.stats.disk_full_errors += 1
                    self._pending.append((line, event, job_id))
                    logger.warning(
                        "journal %s: disk full on append of %r; buffering "
                        "(%d line(s) pending)", self.path, event,
                        len(self._pending))
            self.stats.appended += 1
            return entry

    def _write_line_locked(self, line: bytes, event: str,
                           job_id: Optional[str]) -> None:
        """One durable line write; on failure no partial line stays on disk."""
        faults.disk_full_fault(self.path, f"journal:{event}")
        start = self.size_bytes()
        handle = self._append_handle()
        try:
            handle.write(line)
            handle.flush()
            # Chaos site: a crash between write and fsync is exactly a
            # torn write.  The fault tears the line and kills the process.
            faults.journal_fault(self.path, len(line),
                                 f"{event}:{job_id or ''}")
            if self.fsync:
                os.fsync(handle.fileno())
                self.stats.fsyncs += 1
        except OSError:
            self._truncate_back(start)
            raise

    def _truncate_back(self, offset: int) -> None:
        """Drop a possibly-partial write so retries start on a clean boundary.

        Truncation *releases* space, so it succeeds on a full disk; a failure
        here is swallowed because replay's torn-tail handling covers exactly
        this shape of damage anyway.
        """
        try:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            if os.path.exists(self.path) \
                    and os.path.getsize(self.path) > offset:
                with open(self.path, "r+b") as handle:
                    handle.truncate(offset)
                    handle.flush()
                    os.fsync(handle.fileno())
        except OSError:                       # pragma: no cover - best effort
            pass

    def _drain_pending_locked(self) -> None:
        while self._pending:
            line, event, job_id = self._pending[0]
            try:
                self._write_line_locked(line, event, job_id)
            except OSError as error:
                if error.errno != errno.ENOSPC:
                    raise JournalError(
                        f"journal {self.path!r} backlog flush failed: "
                        f"{error}") from error
                self.stats.disk_full_errors += 1
                return
            self._pending.popleft()

    def flush_pending(self) -> int:
        """Retry the ENOSPC backlog now; returns the lines still deferred."""
        with self._lock:
            self._drain_pending_locked()
            return len(self._pending)

    def disk_degraded(self) -> bool:
        """True while deferred appends are waiting for disk space."""
        return bool(self._pending)

    def pending_lines(self) -> int:
        return len(self._pending)

    @staticmethod
    def _render(entry: JournalEvent) -> bytes:
        payload = entry.to_json_dict()
        payload["sha256"] = _line_digest(payload)
        return (json.dumps(payload, sort_keys=True,
                           separators=(",", ":")) + "\n").encode()

    def _append_handle(self):
        if self._handle is None or self._handle.closed:
            self._handle = open(self.path, "ab")
        return self._handle

    # ------------------------------------------------------------------ #
    # compaction
    # ------------------------------------------------------------------ #
    def size_bytes(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    def compact(self, snapshots: Iterable[Dict]) -> int:
        """Atomically rewrite the journal as ``snapshot`` events.

        ``snapshots`` are the caller's per-job state dicts (the registry
        passes one per live job).  The ``seq`` counter continues — snapshot
        lines take the next values — so any observer ordering by ``seq``
        stays consistent across compactions.  Returns the new line count.
        """
        with self._lock:
            events = []
            for data in snapshots:
                self._seq += 1
                events.append(JournalEvent(
                    seq=self._seq, ts=time.time(), event="snapshot",
                    job_id=data.get("job_id"), data=data))
            self._rewrite(events)
            # The snapshots describe state *after* every buffered transition
            # applied, so an ENOSPC backlog is superseded by the rewrite.
            self._pending.clear()
            self.stats.compactions += 1
            logger.info("journal %s: compacted to %d snapshot line(s)",
                        self.path, len(events))
            return len(events)

    def _rewrite(self, events: List[JournalEvent]) -> None:
        """Atomic whole-file rewrite (tmp + fsync + replace + dir fsync)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        tmp_path = f"{self.path}.tmp"
        with open(tmp_path, "wb") as handle:
            for entry in events:
                handle.write(self._render(entry))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        directory = os.path.dirname(os.path.abspath(self.path))
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:                       # non-POSIX / odd filesystem
            dir_fd = None
        if dir_fd is not None:
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)

    def close(self) -> None:
        with self._lock:
            try:
                self._drain_pending_locked()
            except JournalError:              # pragma: no cover - best effort
                pass
            if self._handle is not None:
                self._handle.close()
                self._handle = None
