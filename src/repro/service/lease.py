"""Lease-based single-writer ownership of a service state directory.

Two daemons appending to one journal would interleave seqs, double-run jobs
and corrupt each other's checkpoints — so the state dir is fenced by a lease
file (``LEASE.json``) holding the current owner and its last heartbeat::

    {"owner": "host:pid:8hex", "pid": 1234, "host": "...",
     "heartbeat_ts": 1754550000.123}

Protocol
--------
* **Acquire**: read the file.  A *live* lease (heartbeat younger than the
  TTL, and — when the holder is on this host — its pid still alive) refuses
  the start with :class:`LeaseHeld`; a stale or missing lease is taken over
  by atomically writing our own record (tmp + fsync + ``os.replace``, the
  repo's durable-write discipline).  The same-host pid check makes takeover
  after a ``kill -9`` immediate instead of a full TTL wait; a foreign-host
  holder gets the full TTL benefit of the doubt.
* **Heartbeat**: a daemon thread re-reads and rewrites the file every
  ``ttl / 4``.  Reading *first* is the fencing half: if the file now names a
  different owner (an operator takeover, a split-brain peer — or the
  ``lease_stolen`` chaos fault), the thread must not fight for the file; it
  reports the loss via ``on_lost`` and stops renewing.  The holder is
  expected to stop writing to the state dir — a lease that can be silently
  reclaimed from a live writer is not a lease.
* **Release**: stop the heartbeat and unlink the file iff we still own it.

The lease protects against *daemons*, not against byte-level damage — the
journal's digests and the store's recovery paths handle that layer.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from typing import Callable, Dict, Optional

from ..sweep import faults

__all__ = ["LeaseHeld", "StateDirLease", "LEASE_NAME"]

LEASE_NAME = "LEASE.json"


class LeaseHeld(RuntimeError):
    """The state dir is owned by a live daemon; refusing to double-run it."""

    def __init__(self, message: str, holder: Optional[Dict] = None) -> None:
        super().__init__(message)
        self.holder = dict(holder or {})


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:               # alive, just not ours to signal
        return True
    except OSError:
        return False
    return True


class StateDirLease:
    """One daemon's claim on a state directory (see module doc).

    ``ttl`` is the staleness horizon: a holder that misses heartbeats for a
    full TTL is presumed dead and may be taken over.  ``on_lost`` is called
    (once, from the heartbeat thread) if the lease file stops naming us.
    """

    def __init__(self, directory: str, ttl: float = 2.0,
                 on_lost: Optional[Callable[[Dict], None]] = None) -> None:
        if ttl <= 0:
            raise ValueError("ttl must be a positive number of seconds")
        self.directory = os.path.abspath(os.fspath(directory))
        self.path = os.path.join(self.directory, LEASE_NAME)
        self.ttl = float(ttl)
        self.on_lost = on_lost
        self.owner = (f"{socket.gethostname()}:{os.getpid()}:"
                      f"{uuid.uuid4().hex[:8]}")
        self._host = socket.gethostname()
        self._stop = threading.Event()
        self._lost = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.takeovers = 0                #: stale leases displaced on acquire

    # ------------------------------------------------------------------ #
    # file plumbing
    # ------------------------------------------------------------------ #
    def _read(self) -> Optional[Dict]:
        try:
            with open(self.path, encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict) or "owner" not in payload:
                return None
            return payload
        except (OSError, ValueError):
            return None

    def _live(self, record: Dict) -> bool:
        age = time.time() - float(record.get("heartbeat_ts", 0.0))
        if age > self.ttl:
            return False
        if record.get("host") == self._host:
            # Same host: the pid is checkable, so a kill -9'd holder is
            # detectably dead now — no need to wait out the TTL.
            return _pid_alive(int(record.get("pid", 0)))
        return True

    def _write(self) -> None:
        payload = json.dumps({"owner": self.owner, "pid": os.getpid(),
                              "host": self._host,
                              "heartbeat_ts": time.time()})
        tmp_path = f"{self.path}.{os.getpid()}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def acquire(self, wait: float = 0.0) -> "StateDirLease":
        """Claim the state dir, or raise :class:`LeaseHeld`.

        ``wait > 0`` polls for up to that long for a live lease to go stale
        (a deploy-time convenience: the old daemon is draining).  Refusal is
        the default — silently queueing two daemons is how split brain
        starts.
        """
        os.makedirs(self.directory, exist_ok=True)
        deadline = time.monotonic() + max(0.0, wait)
        while True:
            record = self._read()
            if record is None or record.get("owner") == self.owner \
                    or not self._live(record):
                if record is not None and record.get("owner") != self.owner:
                    self.takeovers += 1
                break
            if time.monotonic() >= deadline:
                raise LeaseHeld(
                    f"state dir {self.directory!r} is leased by "
                    f"{record.get('owner')!r} (heartbeat "
                    f"{time.time() - float(record.get('heartbeat_ts', 0)):.1f}s "
                    f"ago, ttl {self.ttl:g}s); refusing to double-run it",
                    holder=record)
            time.sleep(min(self.ttl / 4.0, 0.2))
        self._write()
        self._stop.clear()
        self._lost.clear()
        self._thread = threading.Thread(
            target=self._heartbeat_loop, name="state-dir-lease", daemon=True)
        self._thread.start()
        return self

    def _heartbeat_loop(self) -> None:
        interval = self.ttl / 4.0
        while not self._stop.wait(interval):
            record = self._read()
            if record is not None and record.get("owner") != self.owner:
                # Fencing: someone else holds the file now.  Do not fight
                # for it — report and stop renewing.
                self._lost.set()
                if self.on_lost is not None:
                    try:
                        self.on_lost(record)
                    except Exception:     # pragma: no cover - callback bug
                        pass
                return
            try:
                self._write()
            except OSError:
                # A full disk must not kill the heartbeat thread; the lease
                # just ages toward staleness until writes succeed again.
                continue
            # Chaos site: steal the lease right after a successful renewal.
            faults.lease_fault(self.path)

    @property
    def lost(self) -> bool:
        """True once the heartbeat observed a foreign owner in the file."""
        return self._lost.is_set()

    def release(self) -> None:
        """Stop heartbeating and drop the file (iff we still own it)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.ttl)
            self._thread = None
        record = self._read()
        if record is not None and record.get("owner") == self.owner:
            try:
                os.unlink(self.path)
            except OSError:               # pragma: no cover - best effort
                pass
