"""The job registry: journal-backed state machine of every service job.

Lifecycle::

    submitted --> admitted --> running --> done
                      ^           |   \\-> failed
                      ^           |   \\-> cancelled
                      |           |   \\-> suspended --(resume)--> admitted
                      |           v
                      +---- (daemon restart re-admits)    [checkpoint events
                                                           repeat while
                                                           running]

``suspended`` is the poison-job quarantine: the scheduler's per-job circuit
breaker parks a job whose runs keep killing or hanging workers (a budget of
fleet rebuilds attributable to that job), with the reason carried on the
``suspend`` event.  Unlike the other non-terminal states it is *sticky
across restarts* — ``recover_interrupted`` deliberately leaves suspended
jobs alone, because re-running a poison job on every daemon start would
defeat the quarantine.  A client-driven ``resume`` re-admits it (recovery
counter untouched: nothing crashed), and ``cancel`` works from suspension.

``checkpointed`` is a journaled *event*, not a resting state: it marks "the
records completed so far are durably on disk" while the job stays ``running``.
Every transition is appended to the :class:`~repro.service.journal.JobJournal`
**before** the in-memory table changes (write-ahead discipline), and replay
applies events through the same ``_apply`` code path as live execution, so a
restarted registry is bit-identical to one that never crashed.

Idempotent submission: clients may supply a ``job_key``; a second submit with
the same key attaches to the existing job (whatever its state) instead of
creating — and because submissions are journaled, the dedup map survives
restarts.  A same-key submit whose spec differs is a conflict, not a silent
attach.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sweep import faults
from .journal import JobJournal

__all__ = ["Job", "JobRegistry", "JobStateError", "JOB_STATES",
           "TERMINAL_STATES"]

logger = logging.getLogger("repro.service")

#: Every resting state a job can occupy.
JOB_STATES = ("submitted", "admitted", "running", "suspended", "done",
              "failed", "cancelled")
#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: event name -> states it may fire from (the state machine's edges).
_ALLOWED_FROM = {
    "admit": ("submitted", "admitted", "running"),   # re-admission on restart
    "running": ("admitted",),
    "checkpoint": ("running",),
    "done": ("running",),
    "failed": ("running", "admitted"),
    "suspend": ("running",),                 # circuit breaker quarantine
    "resume": ("suspended",),                # explicit client un-quarantine
    "cancel_request": ("submitted", "admitted", "running", "suspended"),
    "cancelled": ("submitted", "admitted", "running", "suspended"),
}

#: the state each event lands in (checkpoint/cancel_request keep the state).
_LANDS_IN = {
    "admit": "admitted",
    "running": "running",
    "done": "done",
    "failed": "failed",
    "suspend": "suspended",
    "resume": "admitted",
    "cancelled": "cancelled",
}


class JobStateError(RuntimeError):
    """An event fired from a state the machine does not allow."""


def spec_fingerprint(spec_dict: Dict) -> str:
    """Canonical identity of a submitted spec (for job-key conflict checks)."""
    return json.dumps(spec_dict, sort_keys=True, separators=(",", ":"))


@dataclass
class Job:
    """One service job: a submitted sweep and its lifecycle bookkeeping."""

    job_id: str
    job_key: str
    spec: Dict                       #: SweepSpec.to_json_dict() payload
    options: Dict = field(default_factory=dict)
    state: str = "submitted"
    created_ts: float = 0.0
    updated_ts: float = 0.0
    total_runs: int = 0
    records_done: int = 0
    failed_runs: int = 0
    checkpoints: int = 0
    #: daemon restarts that re-admitted this job mid-flight.
    recoveries: int = 0
    error: str = ""
    cancel_requested: bool = False
    #: why the circuit breaker quarantined this job ("" unless suspended).
    suspend_reason: str = ""
    #: times the breaker tripped over the job's lifetime (across resumes).
    suspensions: int = 0
    #: the job's record-store counters at its last checkpoint/done event —
    #: durability and damage-recovery visibility per job (see repro.store).
    store_stats: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "job_id": self.job_id, "job_key": self.job_key,
            "spec": self.spec, "options": self.options, "state": self.state,
            "created_ts": self.created_ts, "updated_ts": self.updated_ts,
            "total_runs": self.total_runs, "records_done": self.records_done,
            "failed_runs": self.failed_runs, "checkpoints": self.checkpoints,
            "recoveries": self.recoveries, "error": self.error,
            "cancel_requested": self.cancel_requested,
            "suspend_reason": self.suspend_reason,
            "suspensions": self.suspensions,
            "store_stats": self.store_stats,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "Job":
        return cls(**{key: data[key] for key in cls.__dataclass_fields__
                      if key in data})

    def public_status(self) -> Dict:
        """The status payload served over the API (spec elided to its name)."""
        return {
            "job_id": self.job_id, "job_key": self.job_key,
            "state": self.state, "sweep": self.spec.get("name", ""),
            "total_runs": self.total_runs, "records_done": self.records_done,
            "failed_runs": self.failed_runs, "checkpoints": self.checkpoints,
            "recoveries": self.recoveries, "error": self.error,
            "cancel_requested": self.cancel_requested,
            "suspend_reason": self.suspend_reason,
            "suspensions": self.suspensions,
            "created_ts": self.created_ts, "updated_ts": self.updated_ts,
            "store_stats": self.store_stats,
        }


class JobRegistry:
    """In-memory job table kept consistent with the journal (WAL order).

    Thread-safe; every mutation journals first, then applies via the same
    ``_apply`` used during replay.
    """

    def __init__(self, journal: JobJournal) -> None:
        self.journal = journal
        self.jobs: Dict[str, Job] = {}
        self._by_key: Dict[str, str] = {}
        self._submit_count = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # recovery
    # ------------------------------------------------------------------ #
    @classmethod
    def open(cls, journal: JobJournal) -> "JobRegistry":
        """Replay the journal into a live registry."""
        registry = cls(journal)
        for event in journal.replay():
            registry._apply(event.event, event.job_id, event.data)
        return registry

    def recover_interrupted(self) -> List[Job]:
        """Re-admit jobs a previous daemon left mid-flight.

        Jobs replayed into ``admitted``/``running``/``submitted`` were
        interrupted by the crash (or an unclean stop).  Each is journaled
        back to ``admitted`` — with its recovery counter bumped — and
        returned for the scheduler to queue.  Checkpoint resume makes the
        re-run cheap: only runs the last durable checkpoint is missing
        execute again.  ``suspended`` jobs stay quarantined: the breaker
        tripped on their *behavior*, which a restart does not change.
        """
        with self._lock:
            interrupted = [job for job in self.jobs.values()
                           if job.state not in TERMINAL_STATES
                           and job.state != "suspended"]
            for job in sorted(interrupted, key=lambda j: j.created_ts):
                self.transition("admit", job.job_id,
                                recoveries=job.recoveries + 1)
                logger.warning(
                    "service: re-admitted interrupted job %s (state was "
                    "journaled mid-flight; recovery #%d)", job.job_id,
                    job.recoveries)
            return interrupted

    def maybe_compact(self, max_bytes: int) -> bool:
        """Compact the journal when it outgrew ``max_bytes`` (0 disables)."""
        with self._lock:
            if max_bytes <= 0 or self.journal.size_bytes() <= max_bytes:
                return False
            self.journal.compact(
                job.to_dict()
                for job in sorted(self.jobs.values(),
                                  key=lambda j: j.created_ts))
            return True

    # ------------------------------------------------------------------ #
    # mutations (journal first, then apply)
    # ------------------------------------------------------------------ #
    def submit(self, spec_dict: Dict, job_key: Optional[str] = None,
               options: Optional[Dict] = None,
               total_runs: int = 0) -> Tuple[Job, bool]:
        """Create (or idempotently attach to) a job; returns (job, created).

        A duplicate ``job_key`` whose spec matches attaches without touching
        the journal — nothing changed, so nothing is logged and nothing
        recomputes.  A duplicate key with a *different* spec raises: silently
        serving job A's records for job B's spec would be corruption.
        """
        with self._lock:
            if job_key is not None and job_key in self._by_key:
                existing = self.jobs[self._by_key[job_key]]
                if spec_fingerprint(existing.spec) != \
                        spec_fingerprint(spec_dict):
                    raise JobStateError(
                        f"job key {job_key!r} is already bound to "
                        f"{existing.job_id} with a different spec — refusing "
                        "the conflicting submission")
                return existing, False
            self._submit_count += 1
            job_id = f"j{self._submit_count:06d}"
            job = Job(job_id=job_id, job_key=job_key or job_id,
                      spec=spec_dict, options=dict(options or {}),
                      created_ts=time.time(), updated_ts=time.time(),
                      total_runs=total_runs)
            payload = {key: value for key, value in job.to_dict().items()
                       if key != "job_id"}     # carried by the event itself
            self.journal.append("submit", job_id, **payload)
            faults.service_fault(f"registry:submit:{job_id}")
            self._apply("submit", job_id, job.to_dict())
            return self.jobs[job_id], True

    def transition(self, event: str, job_id: str, **data) -> Job:
        """Journal ``event`` for ``job_id`` and apply it (WAL order).

        The chaos site between the append and the apply is where a daemon
        kill proves the discipline: the journal already holds the event, so
        replay finishes what the crash interrupted.
        """
        with self._lock:
            job = self.get(job_id)
            allowed = _ALLOWED_FROM.get(event)
            if allowed is None:
                raise JobStateError(f"unknown job event {event!r}")
            if job.state not in allowed:
                raise JobStateError(
                    f"event {event!r} is not allowed from state "
                    f"{job.state!r} (job {job_id})")
            self.journal.append(event, job_id, **data)
            faults.service_fault(f"registry:{event}:{job_id}")
            self._apply(event, job_id, data)
            return self.jobs[job_id]

    # ------------------------------------------------------------------ #
    # the one true event application path (live and replay)
    # ------------------------------------------------------------------ #
    def _apply(self, event: str, job_id: Optional[str], data: Dict) -> None:
        if event in ("service_start", "service_stop"):
            return
        if event in ("submit", "snapshot"):
            job = Job.from_dict({**data,
                                 "job_id": job_id or data.get("job_id", "")})
            self.jobs[job.job_id] = job
            self._by_key[job.job_key] = job.job_id
            # Keep ids monotonic across replay/compaction: j000007 -> 7.
            try:
                self._submit_count = max(self._submit_count,
                                         int(job.job_id.lstrip("j")))
            except ValueError:
                pass
            return
        job = self.jobs.get(job_id or "")
        if job is None:
            logger.warning("journal replay: event %r for unknown job %r "
                           "ignored", event, job_id)
            return
        job.updated_ts = time.time()
        if event == "checkpoint":
            job.records_done = int(data.get("records_done", job.records_done))
            job.failed_runs = int(data.get("failed_runs", job.failed_runs))
            if data.get("store_counters"):
                job.store_stats = dict(data["store_counters"])
            job.checkpoints += 1
            return
        if event == "cancel_request":
            job.cancel_requested = True
            return
        if event == "admit":
            job.recoveries = int(data.get("recoveries", job.recoveries))
        if event == "failed":
            job.error = str(data.get("error", ""))
        if event == "suspend":
            job.suspend_reason = str(data.get("reason", ""))
            job.suspensions += 1
            if data.get("records_done") is not None:
                job.records_done = int(data["records_done"])
            if data.get("failed_runs") is not None:
                job.failed_runs = int(data["failed_runs"])
            if data.get("store_counters"):
                job.store_stats = dict(data["store_counters"])
        if event == "resume":
            job.suspend_reason = ""
        if event == "done":
            job.records_done = int(data.get("records_done", job.records_done))
            job.failed_runs = int(data.get("failed_runs", job.failed_runs))
            if data.get("store_counters"):
                job.store_stats = dict(data["store_counters"])
        landing = _LANDS_IN.get(event)
        if landing is not None:
            job.state = landing

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            return job

    def find_by_key(self, job_key: str) -> Optional[Job]:
        with self._lock:
            job_id = self._by_key.get(job_key)
            return self.jobs.get(job_id) if job_id else None

    def list_jobs(self) -> List[Job]:
        with self._lock:
            return sorted(self.jobs.values(), key=lambda j: j.job_id)

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self.jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return counts
