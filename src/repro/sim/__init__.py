"""Compilation and cycle-level simulation of workloads on the PIM chip."""

from .compiler import CompiledWorkload, CompilerConfig, compile_workload
from .engine import ENGINES, run_vectorized
from .ensemble import run_ensemble
from .kernels import active_kernel, set_kernel
from .level_cache import (
    attach_shared_store,
    clear_level_cache,
    detach_shared_store,
    level_cache_stats,
    set_level_cache_budget,
)
from .results import GroupResult, MacroResult, SimulationResult, assemble_result
from .runtime import (
    CONTROLLERS,
    PIMRuntime,
    RuntimeConfig,
    simulate,
    simulate_ensemble,
)
from .scheduler import OperatorSchedule, SchedulePhase, schedule_operators
from .trace import (
    OperatorRtogProfile,
    profile_operator_rtog,
    profile_task_rtog,
    rtog_histogram,
)

__all__ = [
    "CompilerConfig", "CompiledWorkload", "compile_workload",
    "RuntimeConfig", "PIMRuntime", "simulate", "simulate_ensemble",
    "CONTROLLERS", "ENGINES",
    "run_vectorized", "run_ensemble", "active_kernel", "set_kernel",
    "attach_shared_store", "clear_level_cache", "detach_shared_store",
    "level_cache_stats", "set_level_cache_budget",
    "SimulationResult", "MacroResult", "GroupResult", "assemble_result",
    "OperatorSchedule", "SchedulePhase", "schedule_operators",
    "OperatorRtogProfile", "profile_operator_rtog", "profile_task_rtog", "rtog_histogram",
]
