"""The AIM compiler: quantized model → WDS → tiles → task mapping → chip image.

This reproduces the compilation phase of the end-to-end flow in Sec. 5.2.2:

1. read the per-operator WDS ``delta`` configuration (or choose it per layer),
2. split every operator into macro-sized tasks,
3. map tasks onto macros with the selected strategy (HR-aware by default),
4. load the (optionally WDS-shifted) weights into the chip model, and
5. hand the per-group HR information to IR-Booster.

The output, :class:`CompiledWorkload`, is everything the runtime needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.ir_booster import safe_level_from_hr
from ..core.task_mapping import (
    AnnealingConfig,
    MappingEvaluator,
    TaskMapping,
    build_mapping,
)
from ..core.wds import choose_delta, recommended_deltas
from ..pim.chip import PIMChip
from ..pim.config import ChipConfig, default_chip_config
from ..pim.dataflow import Operator, Task, build_tasks
from ..power.vf_table import VFTable
from ..workloads.profiles import WorkloadProfile

__all__ = ["CompilerConfig", "CompiledWorkload", "compile_workload"]


@dataclass
class CompilerConfig:
    """Knobs of the compilation flow."""

    bits: int = 8
    wds_delta: Optional[int] = None          #: None = no WDS; -1 = auto per operator
    mapping_strategy: str = "hr_aware"
    mode: str = "low_power"                  #: objective used by the mapping evaluator
    max_tasks_per_operator: Optional[int] = None
    annealing: AnnealingConfig = field(default_factory=AnnealingConfig)
    seed: int = 0

    def resolve_delta(self, operator: Operator) -> int:
        """WDS delta for one operator (input-determined operators never get WDS)."""
        if operator.input_determined or self.wds_delta is None:
            return 0
        if self.wds_delta == -1:
            return choose_delta(operator.codes, self.bits)
        if self.wds_delta not in (0, *recommended_deltas(self.bits)):
            # Explicit but non-recommended deltas are allowed (Fig. 14 sweeps them).
            return self.wds_delta
        return self.wds_delta


@dataclass
class CompiledWorkload:
    """A workload ready to run: tasks, mapping, and the loaded chip."""

    profile_name: str
    chip_config: ChipConfig
    chip: PIMChip
    tasks: List[Task]
    mapping: TaskMapping
    config: CompilerConfig
    group_hr: Dict[int, float] = field(default_factory=dict)
    group_input_determined: Dict[int, bool] = field(default_factory=dict)
    group_safe_levels: Dict[int, int] = field(default_factory=dict)

    @property
    def used_groups(self) -> List[int]:
        return sorted(self.group_hr)

    def task_on_macro(self, macro_index: int) -> Optional[Task]:
        task_ids = self.mapping.tasks_on_macro(macro_index)
        if not task_ids:
            return None
        return self.tasks[task_ids[0]]

    @property
    def macro_hr(self) -> Dict[int, float]:
        """HR of each loaded macro (post-WDS), keyed by macro index."""
        result: Dict[int, float] = {}
        for task_id, macro_index in self.mapping.assignment.items():
            result[macro_index] = self.tasks[task_id].hamming_rate
        return result


def compile_workload(profile: WorkloadProfile, chip_config: Optional[ChipConfig] = None,
                     table: Optional[VFTable] = None,
                     config: Optional[CompilerConfig] = None) -> CompiledWorkload:
    """Run the full compilation flow for one workload profile."""
    chip_config = chip_config or default_chip_config()
    config = config or CompilerConfig()
    table = table or VFTable(
        nominal_voltage=chip_config.nominal_voltage,
        nominal_frequency=chip_config.nominal_frequency,
        signoff_ir_drop=chip_config.signoff_ir_drop)

    # 1. Attach WDS deltas to the operators.
    operators: List[Operator] = []
    for op in profile.operators:
        delta = config.resolve_delta(op)
        operators.append(Operator(name=op.name, kind=op.kind, codes=op.codes,
                                  bits=config.bits, wds_delta=delta))

    # 2. Tile into macro-sized tasks.
    tasks = build_tasks(operators, chip_config.macro,
                        max_tasks_per_operator=config.max_tasks_per_operator)
    if len(tasks) > chip_config.total_macros:
        # Keep the workload within one chip image: retain a proportional sample
        # of every operator's tiles (HR is uniform within a layer, Fig. 12).
        tasks = _downsample_tasks(tasks, chip_config.total_macros)

    # 3. Map tasks to macros.
    evaluator = MappingEvaluator(chip_config, table, mode=config.mode, seed=config.seed)
    mapping = build_mapping(config.mapping_strategy, tasks, chip_config,
                            evaluator=evaluator, annealing=config.annealing,
                            seed=config.seed)
    mapping.validate(tasks)

    # 4. Load the chip model.
    chip = PIMChip(chip_config)
    for task in tasks:
        macro_index = mapping.macro_of(task.task_id)
        if macro_index is None:
            continue
        chip.macro(macro_index).load_weight_matrix(task.codes, wds_delta=task.wds_delta)

    # 5. Per-group HR summary for IR-Booster.
    group_hr: Dict[int, float] = {}
    group_input_determined: Dict[int, bool] = {}
    for task in tasks:
        macro_index = mapping.macro_of(task.task_id)
        if macro_index is None:
            continue
        group_id, _ = chip_config.macro_location(macro_index)
        group_hr[group_id] = max(group_hr.get(group_id, 0.0), task.hamming_rate)
        group_input_determined[group_id] = (
            group_input_determined.get(group_id, False) or task.input_determined)
    group_safe_levels = {
        gid: safe_level_from_hr(hr, table, group_input_determined[gid])
        for gid, hr in group_hr.items()
    }

    return CompiledWorkload(
        profile_name=profile.name, chip_config=chip_config, chip=chip, tasks=tasks,
        mapping=mapping, config=config, group_hr=group_hr,
        group_input_determined=group_input_determined,
        group_safe_levels=group_safe_levels)


def _downsample_tasks(tasks: Sequence[Task], capacity: int) -> List[Task]:
    """Keep at most ``capacity`` tasks while preserving every operator's share."""
    by_set: Dict[int, List[Task]] = {}
    for task in tasks:
        by_set.setdefault(task.set_id, []).append(task)
    sets = sorted(by_set)
    budget_per_set = max(1, capacity // len(sets))
    kept: List[Task] = []
    for set_id in sets:
        kept.extend(by_set[set_id][:budget_per_set])
    kept = kept[:capacity]
    # Re-number task ids so they are contiguous for the mapping structures.
    renumbered: List[Task] = []
    for new_id, task in enumerate(kept):
        renumbered.append(Task(
            task_id=new_id, operator_name=task.operator_name, kind=task.kind,
            set_id=task.set_id, codes=task.codes, bits=task.bits,
            wds_delta=task.wds_delta, input_determined=task.input_determined))
    return renumbered
