"""Vectorized event-driven simulation engine for the cycle-level runtime.

The reference engine in :mod:`repro.sim.runtime` walks ``for cycle -> for group
-> for macro`` in pure Python: every cycle re-evaluates scalar Eq.-2 drops,
monitor comparisons and per-macro energy.  This module replaces that with an
*event-driven* formulation built on one observation: a group's V-f level only
changes at controller events — an IRFailure, or an Algorithm-2 beta-window
boundary.  Between two events every quantity of the simulation is a closed-form
array expression over the precomputed ``(n_macros, cycles)`` activity matrix:

* the per-macro IR-drop is ``static + dynamic * rtog * scale(V, f)`` — one
  ``drop_array`` call per (group, level) pair, shared through the process-level
  :mod:`~repro.sim.level_cache` so repeated runs on the same ``(workload, seed,
  stress settings)`` — a beta grid, a controller comparison — reuse the physics;
* the monitor decision is a thresholded comparison against the group's
  cycle-indexed noise stream (see :class:`~repro.power.monitor.IRMonitor`), so
  *candidate failure cycles* per (group, level) are precomputable with one
  vectorized compare + ``nonzero``;
* energy reduces to dot products of activity against per-cycle ``V^2`` and
  ``1/f`` vectors (:meth:`~repro.power.energy.EnergyModel.accumulate_trace`).

Event processing is split by *recompute-stall coupling*.  Stalls propagate
within a failing macro's logical Set, so a group whose Sets all live inside its
own row range can never interact with any other group: each such *independent*
group's entire failure timeline resolves through the closed-form timeline
kernels of :mod:`repro.sim.kernels` — groups whose level never changes
(``dvfs``, ``booster_safe``) as one greedy min-gap selection per Set over a
merged ``(cycle, row)`` candidate stream
(:meth:`_VectorizedEngine._run_group_kernel`), ``booster`` groups as the same
selection resumed across level-stable spans, with each *safe-level failure
run* (consecutive failures all within ``beta`` of each other) chained in a
tight controller-free inner loop and applied to Algorithm 2 in one
vectorized :meth:`~repro.core.ir_booster.IRBoosterController.\
apply_failures_at_cycles` call (:meth:`_VectorizedEngine.\
_run_group_span_kernel`).  Groups whose Sets
straddle group boundaries are *coupled* and run under a lazy-invalidation
heap scheduler that interleaves their events in global cycle order.  Failure
cycles are replayed with the exact scalar ordering of the reference loop
(failures propagate recompute stalls to the failing macro's logical Set
*within* the cycle, which suppresses later samples).  Controllers without
feedback (``dvfs``, ``booster_safe``) have no scheduled transitions at all,
so a failure-free run is a single fully vectorized pass.  Materialization is
mode-dependent: ``traces="full"`` (default) assembles every per-cycle trace,
stall mask (rebuilt from logged recompute windows with one
``bincount``/``cumsum`` pass) and energy matrix product once at the end;
``traces="none"`` — the scalar-record fast path sweeps run on — skips all of
that and computes the scalar record fields closed-form per level-stable span
from cached prefix sums and row statistics
(:meth:`_VectorizedEngine._materialize_scalar`).

Two baselines are retained for measurement and triangulation: the pre-kernel
batched loop — per-member candidate pointers advanced with ``bisect``, the
PR-3 implementation — as ``kernel=False``
(:meth:`_VectorizedEngine._run_group_batched`, measured by
``benchmarks/bench_kernels_store.py``), and the pre-batching event loop — a
per-event scan over all groups with per-member ``searchsorted`` queries — as
``batched=False`` (measured by ``benchmarks/bench_stress_failures.py``).

Bit-for-bit equivalence with the reference engine (same seed, same failures,
same stalls, same level traces; energy equal up to floating-point summation
order) is enforced by ``tests/test_sim_engine.py``.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from ..power.energy import EnergyBreakdown
from ..power.monitor import IRMonitor
from ..power.vf_table import VFPair
from .kernels import MergedCandidates, frontier_key, merge_candidates, \
    select_failures
from .level_cache import LEVEL_CACHE, LevelEntry, workload_cache_key
from .results import SimulationResult, assemble_scalar_result

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runtime import PIMRuntime

__all__ = ["ENGINES", "run_vectorized"]

#: Available simulation engines (``RuntimeConfig.engine``).
ENGINES = ("vectorized", "reference")


class _LazyLevelStreams:
    """Windowed per-Set candidate key streams for one ``(group, level)``.

    The ensemble's booster span kernel binds boost-ladder levels thousands
    of times but consumes only a handful of candidates per bind — one peek
    per Set, at most one selected key per failure — before the level drops
    back to safe.  Deriving each such level's full candidate pipeline
    (horizon-wide compare + ``nonzero`` + merge sort + key boxing) is mostly
    waste, and at ensemble scale the retained streams dominate the batch's
    memory footprint.  This class materializes a Set's packed-key stream
    lazily over expanding cycle windows instead, appending to the same
    ``keys`` list the kernel walks.

    Correctness rests on two invariants.  *Bit-exactness*: a window's fail
    mask is evaluated with the engine's own candidate expression
    (:meth:`_VectorizedEngine._fail_cycles_for` semantics — ``drop_array``
    and the monitor comparison are elementwise, so column slices produce
    identical floats) and keys pack ``(cycle, row)`` exactly like
    :func:`~repro.sim.kernels.merge_candidates`.  *Append-only*: windows
    cover whole cycles and only ever extend forward from ``upto`` (or from
    the *minimum* frontier across the level's Sets — earlier cycles are
    permanently ineligible for every Set once all frontiers have passed
    them), so every new key sorts after every existing one and the kernel's
    resume indices stay valid.

    The window is shared by all of the group's Sets: one ``drop_array`` +
    monitor compare over the group's contiguous activity rows extends every
    Set's key list in lockstep, so when Sets exhaust their streams within
    the same bind — the common case, since frontiers advance together —
    only the first pays for the derivation.
    """

    __slots__ = ("ir_model", "voltage", "frequency", "threshold", "noise",
                 "block", "lo", "n", "shift", "set_sel", "upto", "step")

    #: first-window cycle count; each consecutive refill doubles the
    #: window (capped) so sparse streams converge in a few passes.
    WINDOW = 512
    WINDOW_MAX = 4096

    def __init__(self, engine: "_VectorizedEngine", gid: int, level: int,
                 set_arrays: List[np.ndarray]) -> None:
        pair = engine._pair_for(gid, level)
        allowed_drop = engine.ir_model.drop(
            min(pair.level, 100) / 100.0, pair.voltage, pair.frequency)
        self.ir_model = engine.ir_model
        self.voltage = pair.voltage
        self.frequency = pair.frequency
        self.threshold = (pair.voltage - allowed_drop) \
            + engine.min_voltage_margin
        self.noise = engine._noise(gid)
        lo, hi = engine.group_rows[gid]
        self.block = engine.A[lo:hi]
        self.lo = lo
        self.n = engine.n
        self.shift = engine.row_shift
        # Per-Set membership over the group's local rows, to split the
        # window's cycle-major candidate walk into per-Set streams.
        sels = []
        for rows in set_arrays:
            sel = np.zeros(hi - lo, dtype=bool)
            sel[rows - lo] = True
            sels.append(sel)
        self.set_sel = sels
        self.upto = 0
        self.step = self.WINDOW

    def refill(self, s: int, fk: int, key_lists: List[List[int]], i: int,
               min_fk: int) -> int:
        """Extend the group window until Set ``s`` has a key above frontier
        ``fk``, returning its index into ``key_lists[s]`` (or the list
        length once the horizon is exhausted).  ``min_fk`` is the minimum
        frontier key over all Sets — cycles below it are ineligible for
        everyone, so the window may skip ahead to it.  Only called when the
        materialized stream has no key above ``fk``."""
        n = self.n
        shift = self.shift
        lo = self.lo
        upto = self.upto
        step = self.step
        block = self.block
        voltage = self.voltage
        noise = self.noise
        set_sel = self.set_sel
        keys = key_lists[s]
        while upto < n:
            start = min_fk >> shift
            if start < upto:
                start = upto
            end = start + step
            if end > n:
                end = n
            # The reference comparison on a column window (elementwise, so
            # floats match the full-horizon derivation bit for bit).
            drop = self.ir_model.drop_array(
                block[:, start:end], voltage, self.frequency)
            fail = (voltage - drop) + noise[start:end] < self.threshold
            # Transposed nonzero walks cycle-major with local rows ascending
            # within each cycle, so each Set's membership-filtered slice of
            # the packed keys comes out already in stream order (identical
            # to a sorted full-horizon merge).
            c_idx, r_idx = np.nonzero(fail.T)
            if r_idx.size:
                keys_all = ((c_idx + start) << shift) | (r_idx + lo)
                for t, sel in enumerate(set_sel):
                    part = keys_all[sel[r_idx]]
                    if part.size:
                        key_lists[t].extend(part.tolist())
            upto = end
            if step < self.WINDOW_MAX:
                step <<= 1
            m = len(keys)
            if i < m and keys[i] <= fk:
                i = bisect_right(keys, fk, i + 1)
            if i < m:
                break
        self.upto = upto
        self.step = step
        return i


class _VectorizedEngine:
    """One simulation run, event-driven.  Built fresh per :meth:`run` call.

    ``batched=False`` selects the pre-batching event loop (per-event scan over
    all groups, per-member ``searchsorted`` queries), kept as the measured
    baseline of the batched failure path.
    """

    def __init__(self, runtime: "PIMRuntime", batched: bool = True,
                 use_kernel: bool = True) -> None:
        self.runtime = runtime
        self.cfg = runtime.config
        self.compiled = runtime.compiled
        self.table = runtime.table
        self.ir_model = runtime.ir_model
        self.energy_model = runtime.energy_model
        self.n = self.cfg.cycles
        self.batched = batched
        self.use_kernel = use_kernel and batched

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #
    def _setup(self) -> None:
        self._setup_structure()
        self._bind_caches()

    def _setup_structure(self) -> None:
        """Everything up to (but excluding) the initial physics binds.

        Split from :meth:`_bind_caches` so the ensemble engine
        (:mod:`repro.sim.ensemble`) can interleave: structure first for every
        member, then one *batched* physics derivation across the whole batch,
        then the (now cache-hitting) per-member binds.
        """
        runtime, cfg = self.runtime, self.cfg
        # The realized-Rtog traces are pure functions of the workload and the
        # flip statistics — shared across runs like the level physics (a beta
        # grid reuses them for every point).  The raw flip matrices underneath
        # stay in their own memo (flip_factor_matrix, 64 MB budget) because
        # the reference engine still derives traces from them; both caches are
        # independently byte-bounded, so the duplication is capped.
        activity_key = ("activity", workload_cache_key(self.compiled),
                        cfg.cycles, cfg.flip_mean, cfg.flip_std,
                        cfg.flip_correlation, cfg.seed, cfg.input_determined_hr)
        self._activity_key = activity_key
        # Both the per-macro dict and its row-stacked matrix are lazy (and
        # shared across runs through the level cache): a trace-free run whose
        # physics and activity aggregates all hit the cache never touches
        # the flip RNG or copies a single trace.
        self._activity: Dict[int, np.ndarray] = LEVEL_CACHE.get(activity_key)
        self._A = None
        self.controller = runtime._controller()

        # Group membership in the reference engine's processing order: groups
        # in first-encounter order over sorted macro indices, members sorted.
        self.macro_indices = sorted(
            macro for macro in runtime.compiled.mapping.assignment.values())
        self.group_members = runtime._group_members(self.macro_indices)
        self.groups: List[int] = list(self.group_members)

        # Row layout: the activity matrix keeps macros in processing order, so
        # a row index doubles as the reference loop's within-cycle visit order
        # and each group's members occupy one contiguous row range.
        proc_order: List[int] = [m for gid in self.groups
                                 for m in self.group_members[gid]]
        self.proc_order = proc_order
        self.row_of = {m: r for r, m in enumerate(proc_order)}
        self.n_rows = len(proc_order)
        self.group_rows: Dict[int, Tuple[int, int]] = {}
        start = 0
        for gid in self.groups:
            count = len(self.group_members[gid])
            self.group_rows[gid] = (start, start + count)
            start += count
        self.group_of_row: List[int] = [0] * self.n_rows
        for gid, (lo, hi) in self.group_rows.items():
            for row in range(lo, hi):
                self.group_of_row[row] = gid
        #: bits to pack a global row into a timeline-kernel key (a pure
        #: function of the workload, so shared merged streams stay valid).
        self.row_shift = max(1, (self.n_rows - 1).bit_length()) \
            if self.n_rows > 1 else 1

        # Logical sets (recompute stalls propagate set-wide), as row indices.
        macro_set, set_members = runtime._logical_sets()
        self.set_of_row = [macro_set[m] for m in proc_order]
        self.set_rows = {sid: sorted(self.row_of[m] for m in members)
                         for sid, members in set_members.items()}

        # Stall-coupling analysis: a group is *independent* when every logical
        # Set touching its rows lives entirely inside the group, so its failure
        # timeline cannot interact with any other group's and can be processed
        # in one batched per-group pass.  Sets that straddle group boundaries
        # couple all their groups into the heap-scheduled event loop.
        coupled = set()
        for rows in self.set_rows.values():
            touched = {self.group_of_row[row] for row in rows}
            if len(touched) > 1:
                coupled.update(touched)
        self.coupled_groups = [gid for gid in self.groups if gid in coupled]
        self.independent_groups = [gid for gid in self.groups
                                   if gid not in coupled]

        macs = runtime._macs_per_cycle()
        self.macs_per_cycle = np.array([macs[m] for m in proc_order]) \
            if proc_order else np.zeros(0)

        # Cycle-indexed monitor noise, one stream per group (same construction
        # as the reference engine's monitors), generated lazily: a run whose
        # level physics all hit the shared cache never touches the noise RNG.
        self.noise: Dict[int, np.ndarray] = {}
        self.min_voltage_margin = 0.0

        # Everything the per-(group, level) physics depends on — the key under
        # which entries are shared across runs (see repro.sim.level_cache).
        ir = self.ir_model
        self._share_key = (
            workload_cache_key(self.compiled), cfg.cycles, cfg.flip_mean,
            cfg.flip_std, cfg.flip_correlation, cfg.monitor_noise, cfg.seed,
            cfg.input_determined_hr, ir.supply_voltage, ir.signoff_drop,
            ir.static_fraction, ir.nominal_frequency, self.min_voltage_margin)

        # Controller-facing state.
        self.level: Dict[int, int] = {}
        for gid in self.groups:
            if self.controller is None:
                self.level[gid] = 100
            else:
                self.level[gid] = self.controller.state(gid).level
        # Level breaks as parallel (cycle, level) lists: int appends during
        # event processing, one C-level np.array conversion at materialization.
        self.break_cycles: Dict[int, List[int]] = {
            gid: [0] for gid in self.groups}
        self.break_levels: Dict[int, List[int]] = {
            gid: [self.level[gid]] for gid in self.groups}

        self._caches: Dict[Tuple[int, int], LevelEntry] = {}
        #: ensemble-only: when set, the booster span kernel consumes levels
        #: it finds no ready entry for through lazily-windowed candidate
        #: streams instead of deriving the full candidate pipeline (see
        #: :class:`_LazyLevelStreams`); materialization then derives
        #: physics-only entries for those levels.  Per-run execution leaves
        #: this off and is unaffected.
        self.lazy_ladder = False

        # Event bookkeeping.
        inf = self.n
        self.stepping = self.cfg.controller == "booster"
        self.synced = {gid: 0 for gid in self.groups}
        self.scan_from = {gid: 0 for gid in self.groups}
        self.next_sched = {
            gid: (self.controller.cycles_to_next_transition(gid)
                  if self.stepping else inf)
            for gid in self.groups}
        self.stall_end = [0] * self.n_rows
        # Recompute windows and failure points are *logged* during event
        # processing (every window spans `recompute_cycles`) and rebuilt into
        # the stall mask with one bincount/cumsum pass at materialization.
        self.stall_log_rows: List[int] = []
        self.stall_log_starts: List[int] = []
        self.fail_log_rows: List[int] = []
        self.fail_log_cycles: List[int] = []
        # Closed-form kernel paths log whole selections as array chunks
        # (scalar appends would dominate their runtime); materialization
        # concatenates chunks and scalar logs alike.
        self.stall_chunk_rows: List[np.ndarray] = []
        self.stall_chunk_starts: List[np.ndarray] = []
        self.fail_chunk_rows: List[np.ndarray] = []
        self.fail_chunk_cycles: List[np.ndarray] = []
        self._group_sets_memo: Dict[int, List[np.ndarray]] = {}
        self.fail_counts = [0] * self.n_rows
        self.next_fail: Dict[int, int] = {}

    def _bind_caches(self) -> None:
        """Bind the active level's physics per group (derives on cache miss).

        A memoized entry carrying merged streams binds as-is even without
        per-row candidates (the ensemble's direct prebuild) — the timeline
        kernels walk merged keys only, and upgrading here would re-derive
        exactly the per-row split the prebuild skipped.  A lazy-ladder
        member binds even a physics-only memo entry: its span kernel
        windows the level's streams on demand.
        """
        #: the active level's cache per group (refreshed on level changes)
        self.cur_cache = {}
        for gid in self.groups:
            cached = self._caches.get((gid, self.level[gid]))
            if cached is None or (cached.fail_cycles is None
                                  and cached.merged is None
                                  and not self.lazy_ladder):
                cached = self._cache(gid, self.level[gid])
            self.cur_cache[gid] = cached

    # ------------------------------------------------------------------ #
    # lazy, cross-run-shared activity forms
    # ------------------------------------------------------------------ #
    @property
    def activity(self) -> Dict[int, np.ndarray]:
        """Per-macro realized-Rtog traces (lazily generated, cache-shared)."""
        activity = self._activity
        if activity is None:
            activity = self.runtime._macro_activity_traces()
            for trace in activity.values():
                trace.setflags(write=False)
            LEVEL_CACHE.put(self._activity_key, activity,
                            sum(trace.nbytes for trace in activity.values()))
            self._activity = activity
        return activity

    @property
    def A(self) -> np.ndarray:
        """The row-stacked ``(n_rows, cycles)`` activity matrix (lazy).

        Stacked once per ``(workload, seed, stress)`` and shared across runs
        through the level cache (row order is the workload-determined
        processing order, so the stacked form is as shareable as the dict).
        """
        A = self._A
        if A is None:
            if not self.proc_order:
                A = np.zeros((0, self.n))
            else:
                stack_key = ("activity_stack",) + self._activity_key[1:]
                A = LEVEL_CACHE.get(stack_key)
                if A is None:
                    activity = self.activity
                    A = np.vstack([activity[m] for m in self.proc_order])
                    A.setflags(write=False)
                    LEVEL_CACHE.put(stack_key, A, A.nbytes)
            self._A = A
        return A

    def _activity_prefix(self) -> np.ndarray:
        """``(n_rows, cycles + 1)`` activity prefix sums (cache-shared).

        The scalar fast path turns any span's per-row activity sum into two
        gathers, so warm trace-free runs never scan the activity matrix.
        """
        key = ("activity_prefix",) + self._activity_key[1:]
        prefix = LEVEL_CACHE.get(key)
        if prefix is None:
            A = self.A
            prefix = np.zeros((self.n_rows, self.n + 1))
            np.cumsum(A, axis=1, out=prefix[:, 1:])
            prefix.setflags(write=False)
            LEVEL_CACHE.put(key, prefix, prefix.nbytes)
        return prefix

    def _activity_stats(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row ``(mean, max)`` of the activity matrix (cache-shared)."""
        key = ("activity_stats",) + self._activity_key[1:]
        stats = LEVEL_CACHE.get(key)
        if stats is None:
            A = self.A
            means = A.mean(axis=1) if A.size else np.zeros(self.n_rows)
            maxes = A.max(axis=1) if A.size else np.zeros(self.n_rows)
            means.setflags(write=False)
            maxes.setflags(write=False)
            stats = (means, maxes)
            LEVEL_CACHE.put(key, stats, means.nbytes + maxes.nbytes)
        return stats

    # ------------------------------------------------------------------ #
    # per-(group, level) caches
    # ------------------------------------------------------------------ #
    def _noise(self, gid: int) -> np.ndarray:
        """The group's cycle-indexed monitor-noise stream (lazily generated).

        A run whose level physics all hit the shared cache never touches the
        noise RNG — the candidate cycles already bake the stream in.
        """
        noise = self.noise.get(gid)
        if noise is None:
            monitor = IRMonitor(sensing_noise=self.cfg.monitor_noise,
                                seed=self.cfg.seed + gid, record_readings=False)
            noise = monitor.noise_for_cycles(self.n)
            self.noise[gid] = noise
        return noise

    def _pair_for(self, gid: int, level: int) -> VFPair:
        if self.controller is None:
            return self.table.nominal_dvfs_pair()
        lookup = level if level in self.table.levels else 100
        return self.table.select_pair(lookup, self.cfg.mode)

    def _fail_mask(self, gid: int, pair: VFPair,
                   drop_rows: np.ndarray) -> np.ndarray:
        """The boolean candidate mask at ``pair`` — exactly the reference
        comparison: ``(V - drop) + noise < (V - allowed) + margin``.  Shared
        by the full derivation, the physics-only upgrade path, the ensemble's
        direct stream prebuild and its windowed streams (on column slices),
        so every consumer evaluates bit-identical floats."""
        allowed_drop = self.ir_model.drop(
            min(pair.level, 100) / 100.0, pair.voltage, pair.frequency)
        threshold = (pair.voltage - allowed_drop) + self.min_voltage_margin
        return (pair.voltage - drop_rows) + self._noise(gid) < threshold

    def _fail_cycles_for(self, gid: int, pair: VFPair,
                         drop_rows: np.ndarray) -> List[np.ndarray]:
        """Per-row sorted candidate cycles at ``pair`` (see ``_fail_mask``)."""
        fail_rows = self._fail_mask(gid, pair, drop_rows)
        return [np.nonzero(fail_rows[i])[0]
                for i in range(drop_rows.shape[0])]

    def _cache(self, gid: int, level: int) -> LevelEntry:
        key = (gid, level)
        cached = self._caches.get(key)
        if cached is not None and cached.fail_cycles is not None:
            return cached
        pair = self._pair_for(gid, level)
        # The physics depends on the pair, not the Algorithm-2 level that
        # selected it, so the shared entry is keyed by (V, f, signoff level).
        shared_key = (self._share_key, gid, pair.level, pair.voltage,
                      pair.frequency)
        entry = LEVEL_CACHE.get(shared_key)
        if entry is not None and entry.fail_cycles is None:
            # A physics-only entry (left by an ensemble materialization):
            # upgrade it in place, reusing its drop matrix and memoized
            # derived statistics.
            entry.fail_cycles = self._fail_cycles_for(gid, pair,
                                                      entry.drop_rows)
            LEVEL_CACHE.put(shared_key, entry, entry.nbytes_estimate())
        if entry is None:
            lo, hi = self.group_rows[gid]
            drop_rows = self.ir_model.drop_array(self.A[lo:hi], pair.voltage,
                                                 pair.frequency)
            fail_cycles = self._fail_cycles_for(gid, pair, drop_rows)
            drop_rows.setflags(write=False)
            entry = LevelEntry(pair=pair, drop_rows=drop_rows,
                               fail_cycles=fail_cycles)
            LEVEL_CACHE.put(shared_key, entry, entry.nbytes_estimate())
        self._caches[key] = entry
        return entry

    def _probe_cache(self, gid: int, level: int) -> Optional[LevelEntry]:
        """A stream-bearing entry if one is already available — in the
        engine memo or the shared cache — else ``None`` (never derives).
        Merged streams without per-row candidates qualify (the ensemble's
        direct prebuild): the span kernel only ever walks merged keys."""
        key = (gid, level)
        cached = self._caches.get(key)
        if cached is not None and (cached.fail_cycles is not None
                                   or cached.merged is not None):
            return cached
        pair = self._pair_for(gid, level)
        entry = LEVEL_CACHE.get((self._share_key, gid, pair.level,
                                 pair.voltage, pair.frequency))
        if entry is None or (entry.fail_cycles is None
                             and entry.merged is None):
            return None
        self._caches[key] = entry
        return entry

    def _physics_cache(self, gid: int, level: int) -> LevelEntry:
        """The level's entry for materialization: the full drop matrix (and
        its lazily-derived statistics) without requiring candidates.

        Levels bound during event processing return their memoized full
        entry unchanged; levels the ensemble consumed through windowed
        streams derive a *physics-only* entry here — ``drop_array`` over the
        same rows as the full derivation, so every float is bit-identical.
        """
        key = (gid, level)
        cached = self._caches.get(key)
        if cached is not None:
            return cached
        pair = self._pair_for(gid, level)
        shared_key = (self._share_key, gid, pair.level, pair.voltage,
                      pair.frequency)
        entry = LEVEL_CACHE.get(shared_key)
        if entry is None:
            lo, hi = self.group_rows[gid]
            drop_rows = self.ir_model.drop_array(self.A[lo:hi], pair.voltage,
                                                 pair.frequency)
            drop_rows.setflags(write=False)
            entry = LevelEntry(pair=pair, drop_rows=drop_rows,
                               fail_cycles=None)
            LEVEL_CACHE.put(shared_key, entry, entry.nbytes_estimate())
        self._caches[key] = entry
        return entry

    def _prebuild_streams(self, gid: int, level: int) -> LevelEntry:
        """Physics entry plus merged candidate streams, built directly.

        The ensemble's batched prebuild for *independent* groups: one
        full-matrix threshold compare and one transposed ``nonzero`` per Set
        yield each Set's packed-key stream already sorted (cycle-major, and
        Set rows ascend within a cycle — ``set_rows`` is sorted), skipping
        the per-row candidate split and the concatenate-and-sort merge of
        the lazy per-run derivation.  Same mask, same key packing — the
        exact ints ``merge_candidates`` would produce, so the timeline
        kernels walk identical streams.  Per-row candidates stay underived;
        a later per-run consumer upgrades the entry in place via ``_cache``.
        """
        entry = self._physics_cache(gid, level)
        if entry.merged is not None:
            return entry
        fail_rows = self._fail_mask(gid, entry.pair, entry.drop_rows)
        lo, _ = self.group_rows[gid]
        shift = self.row_shift
        mask = (1 << shift) - 1
        merged = []
        for set_rows in self._group_sets(gid):
            c_idx, r_idx = np.nonzero(fail_rows[set_rows - lo].T)
            keys = (c_idx.astype(np.int64) << shift) | set_rows[r_idx]
            merged.append(MergedCandidates(keys, keys.tolist(), shift, mask))
        entry.merged = merged
        return entry

    # ------------------------------------------------------------------ #
    # event queries
    # ------------------------------------------------------------------ #
    def _query_next_fail(self, gid: int) -> int:
        """First cycle >= scan_from with a non-stalled candidate failure.

        Valid until the group's level actually changes (the caller recomputes
        then) — scheduled Algorithm-2 transitions that keep the level are
        no-ops for failure candidates.  One ``bisect`` per member on the
        cached candidate lists.
        """
        lo, _ = self.group_rows[gid]
        base = self.scan_from[gid]
        stall_end = self.stall_end
        best = self.n
        for local, lst in enumerate(self.cur_cache[gid].fail_lists):
            first = stall_end[lo + local]
            if first < base:
                first = base
            if first >= best:
                continue
            j = bisect_left(lst, first)
            if j < len(lst) and lst[j] < best:
                best = lst[j]
        return best

    # ------------------------------------------------------------------ #
    # batched per-group failure runs (independent groups)
    # ------------------------------------------------------------------ #
    def _run_group_batched(self, gid: int) -> None:
        """Process a stall-independent group's entire event timeline.

        Applies the group's whole run of failure events in one pass: per-member
        candidate pointers advance monotonically (``bisect`` with a moving low
        bound — candidates behind ``scan_from`` or inside a recompute window
        are dead permanently, since both bounds only grow), and Algorithm 2 is
        driven through the controller's closed-form batch API.  Failure cycles
        keep the reference loop's exact member visit order and within-cycle
        stall suppression.
        """
        n = self.n
        recompute = self.cfg.recompute_cycles
        stepping = self.stepping
        controller = self.controller
        lo, hi = self.group_rows[gid]
        m_count = hi - lo
        members = range(m_count)
        stall_end = self.stall_end
        set_rows, set_of_row = self.set_rows, self.set_of_row
        fail_counts = self.fail_counts
        s_rows, s_starts = self.stall_log_rows, self.stall_log_starts
        f_rows, f_cycles = self.fail_log_rows, self.fail_log_cycles
        break_cycles = self.break_cycles[gid]
        break_levels = self.break_levels[gid]

        level = self.level[gid]
        caches: Dict[int, LevelEntry] = {level: self.cur_cache[gid]}
        lists = caches[level].fail_lists
        scan_from = self.scan_from[gid]
        synced = self.synced[gid]
        next_sched = self.next_sched[gid]

        # Per-member incremental candidate pointers, kept *per level* so the
        # frequent safe <-> a-level flips reuse each level's pointer state.
        # All bounds (scan_from, stall windows) only ever grow, so a pointer
        # whose candidate already clears the new bound needs no bisect at all,
        # and each level's lists are consumed at most once over the run.
        ptrs: Dict[int, Tuple[List[int], List[int]]] = {}

        def bind(to_level: int, from_cycle: int) -> Tuple[List[int], List[int]]:
            entry = ptrs.get(to_level)
            if entry is None:
                idxs = [0] * m_count
                next_c = [n] * m_count
                for m in members:
                    lst = lists[m]
                    bound = stall_end[lo + m]
                    if bound < from_cycle:
                        bound = from_cycle
                    j = bisect_left(lst, bound)
                    idxs[m] = j
                    next_c[m] = lst[j] if j < len(lst) else n
                entry = (idxs, next_c)
                ptrs[to_level] = entry
            else:
                idxs, next_c = entry
                for m in members:
                    bound = stall_end[lo + m]
                    if bound < from_cycle:
                        bound = from_cycle
                    if next_c[m] < bound:
                        lst = lists[m]
                        j = bisect_left(lst, bound, idxs[m])
                        idxs[m] = j
                        next_c[m] = lst[j] if j < len(lst) else n
            return entry

        idxs, next_c = bind(level, scan_from)

        while True:
            f = min(next_c) if next_c else n
            if stepping and next_sched <= f:
                if next_sched >= n:
                    break
                s = next_sched
                _, new_level, gap = controller.advance_to_transition(gid)
                synced = s
                next_sched = s + gap
                if new_level != level:
                    level = new_level
                    break_cycles.append(s)
                    break_levels.append(new_level)
                    cache = caches.get(new_level)
                    if cache is None:
                        cache = self._cache(gid, new_level)
                        caches[new_level] = cache
                    lists = cache.fail_lists
                    scan_from = s
                    idxs, next_c = bind(new_level, s)
                continue
            if f >= n:
                break

            # Failure cycle f, members visited in row order (the reference
            # loop's order): a failure stalls its whole Set immediately for
            # later rows, which suppresses their sample this cycle.
            group_failed = False
            for m in members:
                if next_c[m] != f:
                    continue
                row = lo + m
                if stall_end[row] <= f:
                    group_failed = True
                    fail_counts[row] += 1
                    f_rows.append(row)
                    f_cycles.append(f)
                    if recompute > 0:
                        for member_row in set_rows[set_of_row[row]]:
                            start = f + 1 if member_row <= row else f
                            end = start + recompute
                            s_rows.append(member_row)
                            s_starts.append(start)
                            if end > stall_end[member_row]:
                                stall_end[member_row] = end
                # Consume this member's cycle-f candidate.
                lst = lists[m]
                bound = stall_end[row]
                if bound < f + 1:
                    bound = f + 1
                j = bisect_left(lst, bound, idxs[m] + 1)
                idxs[m] = j
                next_c[m] = lst[j] if j < len(lst) else n
            scan_from = f + 1
            if recompute > 0 and group_failed:
                # Members stalled by this cycle's failures (including earlier
                # rows whose windows start next cycle) jump past the window.
                for m in members:
                    nc = next_c[m]
                    if nc < n and nc < stall_end[lo + m]:
                        lst = lists[m]
                        j = bisect_left(lst, stall_end[lo + m], idxs[m])
                        idxs[m] = j
                        next_c[m] = lst[j] if j < len(lst) else n
            if stepping and group_failed:
                _, new_level, gap = controller.advance_and_fail(gid, f - synced)
                synced = f + 1
                next_sched = f + 1 + gap
                if new_level != level:
                    level = new_level
                    break_cycles.append(f + 1)
                    break_levels.append(new_level)
                    cache = caches.get(new_level)
                    if cache is None:
                        cache = self._cache(gid, new_level)
                        caches[new_level] = cache
                    lists = cache.fail_lists
                    idxs, next_c = bind(new_level, scan_from)

        # Write back for the common controller flush and materialization.
        self.level[gid] = level
        self.cur_cache[gid] = caches[level]
        self.scan_from[gid] = scan_from
        self.synced[gid] = synced
        self.next_sched[gid] = next_sched

    # ------------------------------------------------------------------ #
    # closed-form kernel paths (independent groups)
    # ------------------------------------------------------------------ #
    def _group_sets(self, gid: int) -> List[np.ndarray]:
        """The group's logical Sets as sorted global-row arrays.

        First-row order (deterministic); only called for *independent*
        groups, whose Sets are contained in the group by definition.
        """
        cached = self._group_sets_memo.get(gid)
        if cached is None:
            lo, hi = self.group_rows[gid]
            seen = set()
            cached = []
            for row in range(lo, hi):
                sid = self.set_of_row[row]
                if sid not in seen:
                    seen.add(sid)
                    cached.append(np.asarray(self.set_rows[sid],
                                             dtype=np.int64))
            self._group_sets_memo[gid] = cached
        return cached

    def _merged(self, gid: int, entry: LevelEntry) -> List[MergedCandidates]:
        """Per-Set merged packed-key candidate streams of one entry.

        Memoized on the (shared) entry: the Set partition is a pure function
        of the workload the entry is already keyed on, so reuse across runs —
        and across processes via the shared store — is sound.  Keys pack
        ``(cycle, global row)`` — the reference loop's visit order.
        """
        merged = entry.merged
        if merged is None:
            lo, _ = self.group_rows[gid]
            shift = self.row_shift
            merged = []
            for set_rows in self._group_sets(gid):
                row_ids = set_rows.tolist()
                merged.append(merge_candidates(
                    [entry.fail_cycles[row - lo] for row in row_ids],
                    row_ids, shift))
            entry.merged = merged
        return merged

    def _run_group_kernel(self, gid: int) -> None:
        """Closed-form timeline for a no-level-change group.

        ``dvfs`` and ``booster_safe`` groups never change level, so each
        logical Set's whole failure timeline is one greedy min-gap selection
        over its merged candidate stream (see :mod:`repro.sim.kernels`);
        failure/stall logs materialize as array chunks in one pass per Set.
        """
        n = self.n
        recompute = self.cfg.recompute_cycles
        shift = self.row_shift
        entry = self.cur_cache[gid]
        start = frontier_key(self.scan_from[gid], -1, shift)
        last_cycle = -1
        for set_rows, merged in zip(self._group_sets(gid),
                                    self._merged(gid, entry)):
            if not merged.keys_list:
                continue
            out, _ = select_failures(merged, n, recompute, start)
            f = self._apply_set_selection(set_rows, out)
            if f > last_cycle:
                last_cycle = f
        if last_cycle >= 0:
            self.scan_from[gid] = last_cycle + 1

    def _apply_set_selection(self, set_rows: np.ndarray,
                             out: List[int]) -> int:
        """Decode and log one Set's selected packed keys (chunked).

        The materialization half of the no-level-change kernel path, shared
        with the ensemble engine's runs-axis dispatch — per-key failure
        chunks, per-row failure counts, stall window chunks and the final
        per-row stall bound.  Returns the last selected cycle (``-1`` when
        the selection is empty).
        """
        if not out:
            return -1
        shift = self.row_shift
        recompute = self.cfg.recompute_cycles
        stall_end = self.stall_end
        fail_counts = self.fail_counts
        sel = np.asarray(out, dtype=np.int64)
        sel_c = sel >> shift
        sel_r = sel & ((1 << shift) - 1)
        self.fail_chunk_rows.append(sel_r)
        self.fail_chunk_cycles.append(sel_c)
        for row, count in zip(*(arr.tolist() for arr in
                                np.unique(sel_r, return_counts=True))):
            fail_counts[row] += count
        f = int(sel_c[-1])
        if recompute > 0:
            # start = f + 1 for members at or before the failing row
            # (already visited this cycle), f for later members.
            starts = sel_c[:, None] + (set_rows[None, :] <= sel_r[:, None])
            self.stall_chunk_rows.append(np.tile(set_rows, sel_c.size))
            self.stall_chunk_starts.append(starts.ravel())
            last_r = int(sel_r[-1])
            for row in set_rows.tolist():
                end = f + recompute + (1 if row <= last_r else 0)
                if end > stall_end[row]:
                    stall_end[row] = end
        return f

    def _run_group_span_kernel(self, gid: int) -> None:
        """Kernel-driven timeline for a stall-independent ``booster`` group.

        Between level breaks the group is exactly a no-level-change span, so
        each Set advances through the packed-key candidate streams of the
        current level with the kernel's frontier key — at most one ``bisect``
        per *selected* failure instead of per-member ``bisect`` per event.
        The frontier encodes the Set's stall windows and survives level
        changes unchanged (stalls are level-independent).

        Failures arrive in *safe-level runs*: an IRFailure always lands the
        group on its safe level, every further failure keeps it there while
        pushing the next scheduled transition out, and the run ends exactly
        at the first ``beta``-long failure-free gap.  Each run is chained in
        a tight inner loop that never touches the controller, then applied
        to Algorithm 2 with one vectorized ``apply_failures_at_cycles``
        call; committed selections accumulate as packed keys and materialize
        as one array chunk per Set at the end.  Event ordering matches the
        reference loop exactly (scheduled transitions before failure
        detection at the same cycle).
        """
        n = self.n
        recompute = self.cfg.recompute_cycles
        controller = self.controller
        stall_end = self.stall_end
        fail_counts = self.fail_counts
        break_cycles = self.break_cycles[gid]
        break_levels = self.break_levels[gid]
        set_arrays = self._group_sets(gid)
        k = len(set_arrays)

        set_row_lists = [arr.tolist() for arr in set_arrays]
        shift = self.row_shift
        mask = (1 << shift) - 1
        jump = recompute << shift

        level = self.level[gid]
        cur = self.cur_cache[gid]
        # A physics-only binding (lazy-ladder members) has no candidate
        # streams — the level binds windowed below like any other.  Merged
        # streams alone (the ensemble's direct prebuild) are enough.
        entries: Dict[int, LevelEntry] = \
            {level: cur} if (cur.fail_cycles is not None
                             or cur.merged is not None) else {}
        scan_from = self.scan_from[gid]
        synced = self.synced[gid]
        next_sched = self.next_sched[gid]

        # Per-Set packed frontier key (level-independent eligibility bound)
        # plus, *per level*, the candidate key streams, each Set's resume
        # index into them and its cached next eligible key.  The index
        # doubles as the bisect ``lo`` bound, and a cached key stays valid
        # as long as it still clears the (only-growing) frontier — so the
        # frequent safe <-> a-level flips mostly revalidate with one scalar
        # compare instead of re-searching.  UNPEEKED forces the first look;
        # EXHAUSTED (sorts above every real key) means "none left".
        UNPEEKED = -2
        EXHAUSTED = 1 << 62
        fks = [frontier_key(scan_from, -1, shift)] * k
        next_f = [n] * k                    # next eligible candidate *cycle*
        level_state: Dict[int, Tuple] = {}
        lazy = self.lazy_ladder

        # NOTE: the warm path of this function (the per-set revalidation
        # loop) is deliberately inlined at its two hot call sites below —
        # the transition branch and the failure branch — because the call
        # overhead alone is measurable at one invocation per level flip.
        # A change to the eligibility logic here must be applied to all
        # three copies.  Levels consumed through windowed streams (``wins``
        # not None, ensemble only) refill on window exhaustion; their cached
        # ``nf_key`` is only ever EXHAUSTED once the horizon truly is, so
        # the revalidation shortcut stays sound.
        def bind(to_level: int, from_cycle: int) -> Tuple:
            state = level_state.get(to_level)
            if state is None:
                entry = entries.get(to_level)
                if entry is None:
                    entry = (self._probe_cache(gid, to_level) if lazy
                             else self._cache(gid, to_level))
                    if entry is not None:
                        entries[to_level] = entry
                if entry is None:
                    # No ready entry (ensemble): windowed per-Set streams.
                    state = ([[] for _ in range(k)], [0] * k, [UNPEEKED] * k,
                             _LazyLevelStreams(self, gid, to_level,
                                               set_arrays))
                else:
                    merged = self._merged(gid, entry)
                    state = ([m.keys_list for m in merged], [0] * k,
                             [UNPEEKED] * k, None)
                level_state[to_level] = state
            key_lists, idxs, nf_key, wins = state
            base = (from_cycle << shift) - 1
            for s in range(k):
                fk = fks[s]
                if fk < base:
                    fk = base
                    fks[s] = fk
                key = nf_key[s]
                if key > fk:                # cached candidate still eligible
                    next_f[s] = key >> shift if key < EXHAUSTED else n
                    continue
                keys = key_lists[s]
                m = len(keys)
                i = idxs[s]
                if i < m and keys[i] <= fk:
                    i = bisect_right(keys, fk, i + 1)
                if i >= m and wins is not None:
                    i = wins.refill(s, fk, key_lists, i, min(fks))
                    m = len(keys)
                idxs[s] = i
                if i < m:
                    nf_key[s] = keys[i]
                    next_f[s] = keys[i] >> shift
                else:
                    nf_key[s] = EXHAUSTED
                    next_f[s] = n
            return state

        key_lists, next_i, next_key, cur_wins = bind(level, scan_from)
        beta = controller.beta
        gstate = controller.state(gid)
        safe = gstate.safe_level
        advance_to_transition = controller.advance_to_transition
        advance_steady_transitions = controller.advance_steady_transitions
        apply_failures_at_cycles = controller.apply_failures_at_cycles
        lvl_below = controller.table.level_below
        #: per Set, every committed key of the whole run — decoded and logged
        #: as one array chunk at the end (per-key scalar logging would
        #: dominate the failure hot path) — and the run's last committed key,
        #: which alone determines the Set's final stall bound.
        span_keys: List[List[int]] = [[] for _ in range(k)]
        last_keys = [-1] * k
        single = k == 1
        pair = k == 2
        sets_range = range(k)

        while True:
            if single:
                f = next_f[0]
            elif pair:
                f = next_f[0]
                f2 = next_f[1]
                if f2 < f:
                    f = f2
            else:
                f = min(next_f) if k else n
            if next_sched <= f:
                if next_sched >= n:
                    break
                t = next_sched
                _, new_level, gap = advance_to_transition(gid)
                synced = t
                next_sched = t + gap
                if new_level != level:
                    level = new_level
                    break_cycles.append(t)
                    break_levels.append(new_level)
                    scan_from = t
                    # Inlined warm-path bind (one call per level flip makes
                    # the call overhead itself measurable; ``bind`` handles
                    # the cold first-sight path).
                    state = level_state.get(new_level)
                    if state is None:
                        key_lists, next_i, next_key, cur_wins = \
                            bind(new_level, t)
                    else:
                        key_lists, next_i, next_key, cur_wins = state
                        base = (t << shift) - 1
                        for s in sets_range:
                            fk = fks[s]
                            if fk < base:
                                fk = base
                                fks[s] = fk
                            key = next_key[s]
                            if key > fk:
                                next_f[s] = key >> shift \
                                    if key < EXHAUSTED else n
                                continue
                            keys = key_lists[s]
                            m = len(keys)
                            i = next_i[s]
                            if i < m and keys[i] <= fk:
                                i = bisect_right(keys, fk, i + 1)
                            if i >= m and cur_wins is not None:
                                i = cur_wins.refill(s, fk, key_lists, i,
                                                    min(fks))
                                m = len(keys)
                            next_i[s] = i
                            if i < m:
                                next_key[s] = keys[i]
                                next_f[s] = keys[i] >> shift
                            else:
                                next_key[s] = EXHAUSTED
                                next_f[s] = n
                elif gstate.a_level == lvl_below(gstate.a_level):
                    # Steady ladder floor: the safe counter sits at ``beta``
                    # (every transition lands it there) and the a-level is
                    # its own clamp, so until the next failure — or the
                    # horizon — every scheduled transition is the same
                    # no-op else-branch step at the same ``beta + 1`` gap.
                    # Apply them in bulk instead of one controller
                    # round-trip (and one loop pass) each.
                    t_max = f if f < n else n - 1
                    if next_sched <= t_max:
                        count = (t_max - next_sched) // gap + 1
                        advance_steady_transitions(gid, count)
                        synced = next_sched + (count - 1) * gap
                        next_sched = synced + gap
                continue
            if f >= n:
                break

            # Failure cycle f opens a *safe-level failure run*: an IRFailure
            # always lands the group on its safe level, every further
            # failure keeps it there while pushing the next scheduled
            # transition out, and the run ends exactly at the first
            # beta-long failure-free gap.  The inner loop chains through the
            # run without touching the controller — cycle f consumes the
            # current level's streams, the rest the safe level's — and the
            # whole run is then applied to Algorithm 2 in one closed-form
            # ``apply_failures_at_cycles`` call: no per-failure controller
            # round-trip, no per-failure transition bookkeeping.
            run_base = synced
            run_offsets: List[int] = [f - run_base]
            cur = f
            while True:
                # Every Set whose next eligible candidate sits at ``cur``
                # fails (streams are tie-broken by the reference loop's
                # member visit order, baked into the packed keys).
                cycle_end_key = (cur + 1) << shift
                for s in sets_range:
                    if next_f[s] != cur:
                        continue
                    keys = key_lists[s]
                    m = len(keys)
                    i = next_i[s]
                    fk = fks[s]
                    acc = span_keys[s]
                    # The candidate at ``i`` cleared the frontier when
                    # peeked; with recompute > 0 one selection suppresses
                    # the rest of the cycle, with recompute == 0 every later
                    # same-cycle key clears the moved frontier automatically.
                    while i < m:
                        key = keys[i]
                        if key >= cycle_end_key:
                            break
                        acc.append(key)
                        last_keys[s] = key
                        fk = key + jump
                        i += 1
                        if recompute > 0:
                            break
                    fks[s] = fk
                    # Inlined peek refresh: ``i`` is a valid lo bound —
                    # everything before it is permanently ineligible.  A
                    # recompute window suppresses only a handful of keys in
                    # dense streams, so probe a few linearly before paying
                    # for a bisect.
                    probe_limit = i + 4
                    while i < m and keys[i] <= fk:
                        i += 1
                        if i >= probe_limit:
                            if i < m and keys[i] <= fk:
                                i = bisect_right(keys, fk, i + 1)
                            break
                    if i >= m and cur_wins is not None:
                        i = cur_wins.refill(s, fk, key_lists, i, min(fks))
                        m = len(keys)
                    next_i[s] = i
                    if i < m:
                        next_key[s] = keys[i]
                        next_f[s] = keys[i] >> shift
                    else:
                        next_key[s] = EXHAUSTED
                        next_f[s] = n
                if cur == f and safe != level:
                    # First failure of the run: the level drops to safe and
                    # the chain continues on the safe level's streams
                    # (inlined warm-path bind, as in the transition branch).
                    level = safe
                    break_cycles.append(f + 1)
                    break_levels.append(safe)
                    state = level_state.get(safe)
                    if state is None:
                        key_lists, next_i, next_key, cur_wins = \
                            bind(safe, f + 1)
                    else:
                        key_lists, next_i, next_key, cur_wins = state
                        base = ((f + 1) << shift) - 1
                        for s in sets_range:
                            fk = fks[s]
                            if fk < base:
                                fk = base
                                fks[s] = fk
                            key = next_key[s]
                            if key > fk:
                                next_f[s] = key >> shift \
                                    if key < EXHAUSTED else n
                                continue
                            keys = key_lists[s]
                            m = len(keys)
                            i = next_i[s]
                            if i < m and keys[i] <= fk:
                                i = bisect_right(keys, fk, i + 1)
                            if i >= m and cur_wins is not None:
                                i = cur_wins.refill(s, fk, key_lists, i,
                                                    min(fks))
                                m = len(keys)
                            next_i[s] = i
                            if i < m:
                                next_key[s] = keys[i]
                                next_f[s] = keys[i] >> shift
                            else:
                                next_key[s] = EXHAUSTED
                                next_f[s] = n
                if single:
                    nf = next_f[0]
                elif pair:
                    nf = next_f[0]
                    f2 = next_f[1]
                    if f2 < nf:
                        nf = f2
                else:
                    nf = min(next_f)
                if nf - cur > beta or nf >= n:
                    break                   # the next transition fires first
                cur = nf
                run_offsets.append(nf - run_base)
            # One controller call for the whole run (failures are per
            # *cycle*: several Sets failing the same cycle are one
            # Algorithm-2 event, exactly as in the reference loop).
            _, gap = apply_failures_at_cycles(gid, run_offsets)
            synced = cur + 1
            next_sched = cur + 1 + gap
            scan_from = cur + 1

        if recompute > 0:
            # Selections are time-ordered per Set, so its last committed key
            # alone determines the final stall bound per row.
            for s in range(k):
                key = last_keys[s]
                if key >= 0:
                    c = key >> shift
                    r = key & mask
                    for row in set_row_lists[s]:
                        end = c + recompute + (1 if row <= r else 0)
                        if end > stall_end[row]:
                            stall_end[row] = end

        # Decode and log every committed selection as one array chunk per
        # Set (the same materialization shape as the no-level-change kernel
        # path).
        for s in range(k):
            acc = span_keys[s]
            if not acc:
                continue
            sel = np.asarray(acc, dtype=np.int64)
            sel_c = sel >> shift
            sel_r = sel & mask
            self.fail_chunk_rows.append(sel_r)
            self.fail_chunk_cycles.append(sel_c)
            for row, count in zip(*(arr.tolist() for arr in
                                    np.unique(sel_r, return_counts=True))):
                fail_counts[row] += count
            if recompute > 0:
                set_rows = set_arrays[s]
                starts = sel_c[:, None] + (set_rows[None, :] <= sel_r[:, None])
                self.stall_chunk_rows.append(np.tile(set_rows, sel_c.size))
                self.stall_chunk_starts.append(starts.ravel())

        # Write back for the common controller flush and materialization.
        # A level only ever consumed through windowed streams has no bound
        # entry; materialization needs just the physics (drop rows), so a
        # candidates-free entry suffices.
        self.level[gid] = level
        entry = entries.get(level)
        if entry is None:
            entry = self._physics_cache(gid, level)
        self.cur_cache[gid] = entry
        self.scan_from[gid] = scan_from
        self.synced[gid] = synced
        self.next_sched[gid] = next_sched

    # ------------------------------------------------------------------ #
    # heap-scheduled event loop (coupled groups)
    # ------------------------------------------------------------------ #
    def _push_next_fail(self, gid: int, heap: list, gpos: Dict[int, int]) -> None:
        nf = self._query_next_fail(gid)
        self.next_fail[gid] = nf
        if nf < self.n:
            heapq.heappush(heap, (nf, 1, gpos[gid]))

    def _apply_scheduled_heap(self, gid: int, cycle: int, heap: list,
                              gpos: Dict[int, int]) -> None:
        """Algorithm-2 transition whose new level first applies at ``cycle``."""
        _, new_level, gap = self.controller.advance_to_transition(gid)
        self.synced[gid] = cycle
        next_sched = cycle + gap
        self.next_sched[gid] = next_sched
        if next_sched < self.n:
            heapq.heappush(heap, (next_sched, 0, gpos[gid]))
        if new_level != self.level[gid]:
            # Candidate failures depend on the level; rescan from this cycle.
            self.level[gid] = new_level
            self.cur_cache[gid] = self._cache(gid, new_level)
            self.break_cycles[gid].append(cycle)
            self.break_levels[gid].append(new_level)
            self.scan_from[gid] = cycle
            self._push_next_fail(gid, heap, gpos)

    def _process_failure_cycle_heap(self, cycle: int, fail_gids: List[int],
                                    heap: list, gpos: Dict[int, int]) -> None:
        """Replay one cycle with the reference loop's exact visit order."""
        recompute = self.cfg.recompute_cycles
        stall_end = self.stall_end
        group_of_row, n = self.group_of_row, self.n
        failed_groups: List[int] = []
        affected: set = set()
        for gid in fail_gids:
            lo, _ = self.group_rows[gid]
            group_failed = False
            for local, lst in enumerate(self.cur_cache[gid].fail_lists):
                row = lo + local
                if stall_end[row] > cycle:
                    continue               # stalled (possibly just this cycle)
                j = bisect_left(lst, cycle)
                if j >= len(lst) or lst[j] != cycle:
                    continue               # no candidate failure this cycle
                # IRFailure: the whole logical Set stalls for the recompute
                # window.  Members the reference loop already visited this
                # cycle (row <= failing row) begin stalling next cycle; later
                # members stall immediately, which suppresses their sample.
                group_failed = True
                self.fail_counts[row] += 1
                self.fail_log_rows.append(row)
                self.fail_log_cycles.append(cycle)
                for member_row in self.set_rows[self.set_of_row[row]]:
                    if recompute > 0:
                        start = cycle + 1 if member_row <= row else cycle
                        end = start + recompute
                        self.stall_log_rows.append(member_row)
                        self.stall_log_starts.append(start)
                        if end > stall_end[member_row]:
                            stall_end[member_row] = end
                    affected.add(group_of_row[member_row])
            if group_failed:
                failed_groups.append(gid)
            self.scan_from[gid] = cycle + 1
            affected.add(gid)

        if self.stepping:
            for gid in failed_groups:
                # Advance the lazily-tracked Algorithm-2 state to this cycle,
                # then apply the failure branch, in one closed-form call (the
                # reference engine's ``controller.step(gid, ir_failure=True)``).
                _, new_level, gap = self.controller.advance_and_fail(
                    gid, cycle - self.synced[gid])
                self.synced[gid] = cycle + 1
                if new_level != self.level[gid]:
                    self.level[gid] = new_level
                    self.cur_cache[gid] = self._cache(gid, new_level)
                    self.break_cycles[gid].append(cycle + 1)
                    self.break_levels[gid].append(new_level)
                next_sched = cycle + 1 + gap
                self.next_sched[gid] = next_sched
                if next_sched < n:
                    heapq.heappush(heap, (next_sched, 0, gpos[gid]))
        for gid in affected:
            self._push_next_fail(gid, heap, gpos)

    def _run_events_heap(self, gids: List[int]) -> None:
        """Event loop over ``gids`` driven by a lazy-invalidation min-heap.

        Heap entries are ``(cycle, kind, group_position)`` with kind 0 =
        scheduled transition, 1 = candidate failure; an entry is stale (and
        discarded on pop) when the group's current ``next_sched``/``next_fail``
        no longer matches.  Scheduled transitions at a cycle are applied before
        failure detection at that cycle, exactly as in the reference loop.
        """
        n = self.n
        next_sched, next_fail = self.next_sched, self.next_fail
        gpos = {gid: i for i, gid in enumerate(gids)}
        heap: List[Tuple[int, int, int]] = []
        for gid in gids:
            if next_sched[gid] < n:
                heapq.heappush(heap, (next_sched[gid], 0, gpos[gid]))
            self._push_next_fail(gid, heap, gpos)
        while heap:
            cycle = heap[0][0]
            if cycle >= n:
                break
            sched_gids: List[int] = []
            fail_candidates: List[int] = []
            while heap and heap[0][0] == cycle:
                _, kind, gp = heapq.heappop(heap)
                gid = gids[gp]
                if kind == 0:
                    if next_sched[gid] == cycle and gid not in sched_gids:
                        sched_gids.append(gid)
                elif gid not in fail_candidates:
                    fail_candidates.append(gid)
            for gid in sched_gids:
                self._apply_scheduled_heap(gid, cycle, heap, gpos)
            # Failures are collected *after* the scheduled transitions: a level
            # change at this cycle already moved the group's candidates.
            fail_set = {gid for gid in fail_candidates if next_fail[gid] == cycle}
            fail_set.update(gid for gid in sched_gids if next_fail[gid] == cycle)
            if fail_set:
                fail_gids = sorted(fail_set, key=gpos.__getitem__)
                self._process_failure_cycle_heap(cycle, fail_gids, heap, gpos)

    # ------------------------------------------------------------------ #
    # pre-batching event loop (kept as the measured baseline)
    # ------------------------------------------------------------------ #
    def _query_next_fail_scan(self, gid: int) -> int:
        """Pre-batching query: per-member ``np.searchsorted`` scan."""
        lo, _ = self.group_rows[gid]
        base = self.scan_from[gid]
        best = self.n
        for local, cycles in enumerate(self.cur_cache[gid].fail_cycles):
            first = max(base, self.stall_end[lo + local])
            if first >= best:
                continue
            j = cycles.searchsorted(first)
            if j < cycles.size and cycles[j] < best:
                best = int(cycles[j])
        return best

    def _apply_scheduled_scan(self, gid: int, cycle: int) -> None:
        self.controller.advance_nofail(gid, cycle - self.synced[gid])
        self.synced[gid] = cycle
        self.next_sched[gid] = cycle + self.controller.cycles_to_next_transition(gid)
        new_level = self.controller.state(gid).level
        if new_level != self.level[gid]:
            self.level[gid] = new_level
            self.cur_cache[gid] = self._cache(gid, new_level)
            self.break_cycles[gid].append(cycle)
            self.break_levels[gid].append(new_level)
            self.scan_from[gid] = cycle
            self.next_fail[gid] = self._query_next_fail_scan(gid)

    def _process_failure_cycle_scan(self, cycle: int, fail_gids: List[int]) -> None:
        recompute = self.cfg.recompute_cycles
        stall_end = self.stall_end
        group_of_row = self.group_of_row
        failed_groups: List[int] = []
        affected: set = set()
        for gid in fail_gids:
            fail_cycles = self.cur_cache[gid].fail_cycles
            lo, _ = self.group_rows[gid]
            group_failed = False
            for local, cycles in enumerate(fail_cycles):
                row = lo + local
                if stall_end[row] > cycle:
                    continue
                j = cycles.searchsorted(cycle)
                if j >= cycles.size or cycles[j] != cycle:
                    continue
                group_failed = True
                self.fail_counts[row] += 1
                self.fail_log_rows.append(row)
                self.fail_log_cycles.append(cycle)
                for member_row in self.set_rows[self.set_of_row[row]]:
                    if recompute > 0:
                        start = cycle + 1 if member_row <= row else cycle
                        end = start + recompute
                        self.stall_log_rows.append(member_row)
                        self.stall_log_starts.append(start)
                        if end > stall_end[member_row]:
                            stall_end[member_row] = end
                    affected.add(group_of_row[member_row])
            if group_failed:
                failed_groups.append(gid)
            self.scan_from[gid] = cycle + 1
            affected.add(gid)

        if self.stepping:
            for gid in failed_groups:
                self.controller.advance_nofail(gid, cycle - self.synced[gid])
                self.controller.step(gid, ir_failure=True)
                self.synced[gid] = cycle + 1
                new_level = self.controller.state(gid).level
                if new_level != self.level[gid]:
                    self.level[gid] = new_level
                    self.cur_cache[gid] = self._cache(gid, new_level)
                    self.break_cycles[gid].append(cycle + 1)
                    self.break_levels[gid].append(new_level)
                self.next_sched[gid] = \
                    cycle + 1 + self.controller.cycles_to_next_transition(gid)
        for gid in affected:
            self.next_fail[gid] = self._query_next_fail_scan(gid)

    def _run_events_scan(self) -> None:
        n = self.n
        next_sched, next_fail = self.next_sched, self.next_fail
        for gid in self.groups:
            next_fail[gid] = self._query_next_fail_scan(gid)
        while True:
            next_cycle = n
            for gid in self.groups:
                sched, fail = next_sched[gid], next_fail[gid]
                if sched < next_cycle:
                    next_cycle = sched
                if fail < next_cycle:
                    next_cycle = fail
            if next_cycle >= n:
                break
            for gid in self.groups:
                if next_sched[gid] == next_cycle:
                    self._apply_scheduled_scan(gid, next_cycle)
            fail_gids = [gid for gid in self.groups if next_fail[gid] == next_cycle]
            if fail_gids:
                self._process_failure_cycle_scan(next_cycle, fail_gids)

    # ------------------------------------------------------------------ #
    # event dispatch
    # ------------------------------------------------------------------ #
    def _run_events(self) -> None:
        if self.batched:
            for gid in self.independent_groups:
                if not self.use_kernel:
                    self._run_group_batched(gid)
                elif self.stepping:
                    self._run_group_span_kernel(gid)
                else:
                    self._run_group_kernel(gid)
            if self.coupled_groups:
                self._run_events_heap(self.coupled_groups)
        else:
            self._run_events_scan()
        self._finish_events()

    def _finish_events(self) -> None:
        """Flush the remaining failure-free steps so final controller state
        (final level, counters) matches the reference engine."""
        if self.stepping:
            for gid in self.groups:
                self.controller.advance_nofail(gid, self.n - self.synced[gid])
                self.synced[gid] = self.n

    # ------------------------------------------------------------------ #
    # materialization
    # ------------------------------------------------------------------ #
    def _logged_failures(self) -> Tuple[np.ndarray, np.ndarray]:
        """All logged failure points as ``(rows, cycles)`` arrays (chunked
        kernel logs first, then the event loops' scalar logs)."""
        rows_parts = list(self.fail_chunk_rows)
        cycles_parts = list(self.fail_chunk_cycles)
        if self.fail_log_rows:
            rows_parts.append(np.asarray(self.fail_log_rows, dtype=np.int64))
            cycles_parts.append(np.asarray(self.fail_log_cycles,
                                           dtype=np.int64))
        if not rows_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(rows_parts), np.concatenate(cycles_parts)

    def _logged_stall_windows(self) -> Tuple[np.ndarray, np.ndarray]:
        """All logged recompute windows as ``(rows, starts)`` arrays."""
        rows_parts = list(self.stall_chunk_rows)
        starts_parts = list(self.stall_chunk_starts)
        if self.stall_log_rows:
            rows_parts.append(np.asarray(self.stall_log_rows, dtype=np.int64))
            starts_parts.append(np.asarray(self.stall_log_starts,
                                           dtype=np.int64))
        if not rows_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(rows_parts), np.concatenate(starts_parts)

    def _group_spans(self, gid: int) -> Tuple[np.ndarray, np.ndarray,
                                              np.ndarray]:
        """The group's level-stable spans as ``(starts, ends, levels)``."""
        starts = np.array(self.break_cycles[gid], dtype=np.int64)
        levels = np.array(self.break_levels[gid], dtype=np.int64)
        ends = np.empty_like(starts)
        ends[:-1] = starts[1:]
        ends[-1] = self.n
        keep = ends > starts
        if not keep.all():
            starts, ends, levels = starts[keep], ends[keep], levels[keep]
        return starts, ends, levels

    def _materialize_scalar(self) -> SimulationResult:
        """Trace-free materialization (``RuntimeConfig.traces == "none"``).

        Computes every scalar record field closed-form per level-stable span
        from cached aggregates — per-(group, level) drop prefix sums and
        row maxima (:class:`LevelEntry`), activity prefix sums and row stats
        (shared through the level cache) — with per-failure stall/recompute
        corrections applied from the engine's logged failure points and
        recompute windows.  No drop/level/chip trace is gathered, no stall
        mask is rebuilt, no activity copy is made; results are equivalent to
        the full-trace path (discrete fields bit-identical, float reductions
        to 1e-9 rtol) with every trace field ``None``.
        """
        n, n_rows = self.n, self.n_rows
        recompute = self.cfg.recompute_cycles
        A_cs = self._activity_prefix()
        rtog_means, rtog_peaks = self._activity_stats()

        fail_rows, fail_cycles = self._logged_failures()
        stall_rows, stall_starts = self._logged_stall_windows()

        # Merge the logged recompute windows per row (windows overlap; both
        # the stall totals and the energy corrections need the union).  The
        # packed segmented max-accumulate merges all rows in one pass.
        if stall_rows.size:
            width = n + 1
            order = np.lexsort((stall_starts, stall_rows))
            w_rows = stall_rows[order]
            w_starts = stall_starts[order]
            w_ends = np.minimum(w_starts + recompute, n)
            packed_end = w_rows * width + w_ends
            running_end = np.maximum.accumulate(packed_end)
            packed_start = w_rows * width + w_starts
            fresh = np.empty(w_rows.size, dtype=bool)
            fresh[0] = True
            fresh[1:] = packed_start[1:] >= running_end[:-1]
            first = np.flatnonzero(fresh)
            m_rows = w_rows[first]
            m_starts = w_starts[first]
            last = np.append(first[1:] - 1, w_rows.size - 1)
            m_ends = running_end[last] - m_rows * width
        else:
            m_rows = np.empty(0, dtype=np.int64)
            m_starts = m_ends = m_rows

        stall_counts = np.zeros(n_rows, dtype=np.int64)
        np.add.at(stall_counts, m_rows, m_ends - m_starts)
        fail_count_rows = np.asarray(self.fail_counts, dtype=np.int64)
        group_of_row = np.asarray(self.group_of_row, dtype=np.int64)
        window_gids = group_of_row[m_rows] if m_rows.size else m_rows
        failure_gids = group_of_row[fail_rows] if fail_rows.size else fail_rows

        energy: Dict[int, EnergyBreakdown] = {}
        drop_mean: Dict[int, float] = {}
        drop_peak: Dict[int, float] = {}
        rtog_mean: Dict[int, float] = {}
        rtog_peak: Dict[int, float] = {}
        failures: Dict[int, int] = {}
        stall_total: Dict[int, int] = {}
        group_level_means: Dict[int, float] = {}

        for gid in self.groups:
            lo, hi = self.group_rows[gid]
            mcount = hi - lo
            starts, ends, levels = self._group_spans(gid)
            lengths = ends - starts
            group_level_means[gid] = float(np.dot(levels, lengths)) / n

            distinct_levels = np.unique(levels)
            slot_pairs = [self._pair_for(gid, level)
                          for level in distinct_levels.tolist()]
            slot_of_span = np.searchsorted(distinct_levels, levels)
            pair_voltages = np.array([pair.voltage for pair in slot_pairs])
            pair_frequencies = np.array([pair.frequency
                                         for pair in slot_pairs])
            span_v = pair_voltages[slot_of_span]
            span_f = pair_frequencies[slot_of_span]
            span_v2 = span_v ** 2

            prefix_rows = A_cs[lo:hi]
            act_span = prefix_rows[:, ends] - prefix_rows[:, starts]

            # Per-row drop sum (prefix gathers) and worst drop (cached row
            # maxima, restricted to the visited spans when the global argmax
            # falls outside them) per distinct level.
            dsum = np.zeros(mcount)
            dpeak = np.zeros(mcount)
            for slot, level in enumerate(distinct_levels.tolist()):
                in_slot = slot_of_span == slot
                st_k = starts[in_slot]
                en_k = ends[in_slot]
                span_lens = en_k - st_k
                covered_total = int(span_lens.sum())
                # Evaluate the drop physics directly on the covered cycles —
                # ``drop_array`` is elementwise, so the column gather yields
                # the same floats as a full-horizon derivation restricted to
                # those cycles, and the restricted max is the exact per-row
                # peak over the visited spans.  No full entry, prefix or row
                # stats are ever built for any level (the ensemble's
                # windowed event path never derives them either); the gather
                # never exceeds the horizon, so even a level covering every
                # cycle costs one elementwise pass — cheaper than the
                # prefix-sum/argsort machinery an earlier revision built and
                # memoized per entry for broadly-visited levels.
                bases = np.repeat(
                    st_k - np.concatenate(
                        ([0], np.cumsum(span_lens)[:-1])), span_lens)
                covered_idx = np.arange(covered_total) + bases
                pair = slot_pairs[slot]
                drop_cov = self.ir_model.drop_array(
                    self.A[lo:hi][:, covered_idx], pair.voltage,
                    pair.frequency)
                dsum += drop_cov.sum(axis=1)
                dpeak = np.maximum(dpeak, drop_cov.max(axis=1))

            # Stall/failure energy corrections: sum(activity * V^2) over the
            # energy-stalled cycles.  Each merged recompute window decomposes
            # over the level spans it crosses (almost always one or two); the
            # piece loop below peels one piece per window per iteration, so
            # everything stays vectorized with no weighted per-cycle arrays.
            stalled_v2 = np.zeros(mcount)
            g_win = np.flatnonzero(window_gids == gid) if m_rows.size \
                else m_rows
            g_fail = np.flatnonzero(failure_gids == gid) if fail_rows.size \
                else fail_rows
            if g_win.size:
                w_rows = m_rows[g_win] - lo
                w_starts = m_starts[g_win]
                w_ends = m_ends[g_win]
                first_span = np.searchsorted(starts, w_starts,
                                             side="right") - 1
                last_span = np.searchsorted(starts, w_ends - 1,
                                            side="right") - 1
                piece = 0
                active = np.arange(g_win.size)
                while active.size:
                    spans = first_span[active] + piece
                    active = active[spans <= last_span[active]]
                    if not active.size:
                        break
                    spans = first_span[active] + piece
                    a = np.maximum(w_starts[active], starts[spans])
                    b = np.minimum(w_ends[active], ends[spans])
                    rw = w_rows[active]
                    np.add.at(stalled_v2, rw,
                              span_v2[spans]
                              * (prefix_rows[rw, b] - prefix_rows[rw, a]))
                    piece += 1
            if g_fail.size:
                rw = fail_rows[g_fail] - lo
                fc = fail_cycles[g_fail]
                f_spans = np.searchsorted(starts, fc, side="right") - 1
                np.add.at(stalled_v2, rw,
                          self.A[lo:hi][rw, fc] * span_v2[f_spans])

            worked = n - stall_counts[lo:hi] - fail_count_rows[lo:hi]
            breakdowns = self.energy_model.span_breakdowns(
                span_v, span_f, lengths, act_span, stalled_v2, worked,
                self.macs_per_cycle[lo:hi])

            for local in range(mcount):
                row = lo + local
                macro_index = self.proc_order[row]
                energy[macro_index] = breakdowns[local]
                drop_mean[macro_index] = dsum[local] / n
                drop_peak[macro_index] = float(dpeak[local])
                rtog_mean[macro_index] = float(rtog_means[row])
                rtog_peak[macro_index] = float(rtog_peaks[row])
                failures[macro_index] = self.fail_counts[row]
                stall_total[macro_index] = int(stall_counts[row])

        return assemble_scalar_result(
            self.compiled, self.cfg, energy, drop_mean, drop_peak, rtog_mean,
            rtog_peak, failures, stall_total, group_level_means,
            self.controller, self.group_members)

    def _materialize(self) -> SimulationResult:
        n, n_rows = self.n, self.n_rows
        drops = np.zeros((n_rows, n))
        # Operating points are shared within a group: one V / one f vector per
        # group instead of (n_rows, cycles) matrices.
        group_voltage: Dict[int, np.ndarray] = {}
        group_frequency: Dict[int, np.ndarray] = {}
        level_traces: Dict[int, np.ndarray] = {}
        for gid in self.groups:
            lo, hi = self.group_rows[gid]
            voltage = np.empty(n)
            frequency = np.empty(n)
            # Level breakpoints -> spans, in one array pass (failure-heavy
            # booster runs log thousands of breaks per group).
            starts, ends, levels = self._group_spans(gid)
            level_trace = np.repeat(levels, ends - starts)
            level_traces[gid] = level_trace
            distinct_levels = np.unique(levels)
            if starts.size <= max(4, 2 * distinct_levels.size):
                for start, end, level in zip(starts.tolist(), ends.tolist(),
                                             levels.tolist()):
                    cache = self._physics_cache(gid, level)
                    drops[lo:hi, start:end] = cache.drop_rows[:, start:end]
                    voltage[start:end] = cache.pair.voltage
                    frequency[start:end] = cache.pair.frequency
            else:
                # Thousands of short spans: one per-cycle slot gather replaces
                # the span loop.  Slot k holds the k-th distinct level's cached
                # rows; take_along_axis then assembles the whole horizon in a
                # single indexed pass per group.  The stacked per-slot rows
                # are themselves cached across runs (stacking copies every
                # visited level's drop matrix, which would otherwise dominate
                # failure-heavy materializations).
                slot_caches = [self._physics_cache(gid, level)
                               for level in distinct_levels.tolist()]
                slot_of_span = np.searchsorted(distinct_levels, levels)
                slots = np.repeat(slot_of_span, ends - starts)
                stack_key = ("drop_stack", self._share_key, gid) + tuple(
                    (cache.pair.level, cache.pair.voltage,
                     cache.pair.frequency) for cache in slot_caches)
                stacked = LEVEL_CACHE.get(stack_key)
                if stacked is None:
                    stacked = np.stack([cache.drop_rows
                                        for cache in slot_caches])
                    stacked.setflags(write=False)
                    LEVEL_CACHE.put(stack_key, stacked, stacked.nbytes)
                drops[lo:hi] = np.take_along_axis(
                    stacked, slots[np.newaxis, np.newaxis, :], axis=0)[0]
                pair_voltages = np.array([cache.pair.voltage
                                          for cache in slot_caches])
                pair_frequencies = np.array([cache.pair.frequency
                                             for cache in slot_caches])
                voltage = pair_voltages[slots]
                frequency = pair_frequencies[slots]
            group_voltage[gid] = voltage
            group_frequency[gid] = frequency
        chip_drop = drops.max(axis=0) if n_rows else np.zeros(n)

        # Rebuild the stall mask from the logged recompute windows (scalar
        # logs from the event loops plus array chunks from the kernel paths):
        # +1/-1 boundary counts per row (bincount) and a running sum.
        rows, starts = self._logged_stall_windows()
        if rows.size:
            width = n + 1
            ends = np.minimum(starts + self.cfg.recompute_cycles, n)
            size = n_rows * width
            boundaries = (np.bincount(rows * width + starts, minlength=size)
                          - np.bincount(rows * width + ends, minlength=size))
            # int32 accumulation: window-nesting depths are tiny and the
            # running sum is memory-bound on long horizons.
            stall_mask = boundaries.reshape(n_rows, width) \
                .cumsum(axis=1, dtype=np.int32)[:, :n] > 0
        else:
            stall_mask = np.zeros((n_rows, n), dtype=bool)
        energy_stalled = stall_mask.copy()
        fail_rows, fail_cycles = self._logged_failures()
        if fail_rows.size:
            energy_stalled[fail_rows, fail_cycles] = True
        stall_sums = stall_mask.sum(axis=1) if n_rows else np.zeros(0)

        energy: Dict[int, EnergyBreakdown] = {}
        drop_traces: Dict[int, np.ndarray] = {}
        failures: Dict[int, int] = {}
        stall_total: Dict[int, int] = {}
        for gid in self.groups:
            lo, hi = self.group_rows[gid]
            breakdowns = self.energy_model.accumulate_trace_rows(
                group_voltage[gid], group_frequency[gid], self.A[lo:hi],
                self.macs_per_cycle[lo:hi], energy_stalled[lo:hi])
            for local, breakdown in enumerate(breakdowns):
                row = lo + local
                macro_index = self.proc_order[row]
                energy[macro_index] = breakdown
                drop_traces[macro_index] = drops[row]
                failures[macro_index] = self.fail_counts[row]
                stall_total[macro_index] = int(stall_sums[row])

        # Hand out private copies of the (shared, read-only) cached activity
        # traces so results stay independently mutable, exactly as the
        # reference engine's are.
        activity_out = {macro: np.array(trace)
                        for macro, trace in self.activity.items()}
        return self.runtime._collect(
            energy, drop_traces, activity_out, failures, stall_total,
            level_traces, chip_drop, self.controller,
            group_members=self.group_members)

    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        self._setup()
        self._run_events()
        return self.materialize()

    def materialize(self) -> SimulationResult:
        """Assemble the :class:`SimulationResult` for a finished event pass,
        honouring the configured ``traces`` mode."""
        if self.cfg.traces == "none":
            return self._materialize_scalar()
        return self._materialize()


def run_vectorized(runtime: "PIMRuntime", batched: bool = True,
                   kernel: bool = True) -> SimulationResult:
    """Run ``runtime`` on the vectorized event-driven engine.

    ``batched=False`` selects the pre-batching event loop (kept as the measured
    baseline of the batched failure path); ``kernel=False`` selects the
    pre-kernel batched loop (per-member ``bisect`` pointers — the PR-3
    implementation, kept as the measured baseline of the closed-form timeline
    kernels; see ``benchmarks/bench_kernels_store.py``).  Results are
    bit-identical on every path.
    """
    return _VectorizedEngine(runtime, batched=batched, use_kernel=kernel).run()
