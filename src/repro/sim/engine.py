"""Vectorized segment-based simulation engine for the cycle-level runtime.

The reference engine in :mod:`repro.sim.runtime` walks ``for cycle -> for group
-> for macro`` in pure Python: every cycle re-evaluates scalar Eq.-2 drops,
monitor comparisons and per-macro energy.  This module replaces that with an
*event-driven* formulation built on one observation: a group's V-f level only
changes at controller events — an IRFailure, or an Algorithm-2 beta-window
boundary.  Between two events every quantity of the simulation is a closed-form
array expression over the precomputed ``(n_macros, cycles)`` activity matrix:

* the per-macro IR-drop is ``static + dynamic * rtog * scale(V, f)`` — one
  ``drop_array`` call per (group, level) pair, cached and reused;
* the monitor decision is a thresholded comparison against the group's
  cycle-indexed noise stream (see :class:`~repro.power.monitor.IRMonitor`), so
  *candidate failure cycles* per (group, level) are precomputable with one
  vectorized compare + ``nonzero``;
* energy reduces to dot products of activity against per-cycle ``V^2`` and
  ``1/f`` vectors (:meth:`~repro.power.energy.EnergyModel.accumulate_trace`).

The engine therefore simulates from event to event: it keeps, per group, the
next scheduled Algorithm-2 transition and the next candidate IRFailure, jumps
straight to the earliest one, and replays only that single cycle with the exact
scalar ordering of the reference loop (failures propagate recompute stalls to
the failing macro's logical Set *within* the cycle, which suppresses later
samples).  Controllers without feedback (``dvfs``, ``booster_safe``) have no
scheduled transitions at all, so a failure-free run is a single fully
vectorized pass.  Traces, stall masks and energy are materialized once at the
end into preallocated arrays.

Bit-for-bit equivalence with the reference engine (same seed, same failures,
same stalls, same level traces; energy equal up to floating-point summation
order) is enforced by ``tests/test_sim_engine.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

import numpy as np

from ..power.energy import EnergyBreakdown
from ..power.monitor import IRMonitor
from ..power.vf_table import VFPair
from .results import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .runtime import PIMRuntime

__all__ = ["ENGINES", "run_vectorized"]

#: Available simulation engines (``RuntimeConfig.engine``).
ENGINES = ("vectorized", "reference")


@dataclass
class _LevelCache:
    """Precomputed per-(group, level) arrays over the full horizon."""

    pair: VFPair
    drop_rows: np.ndarray          #: (members, cycles) Eq.-2 drop at this pair
    fail_cycles: List[np.ndarray]  #: per member, sorted candidate cycle indices


class _VectorizedEngine:
    """One simulation run, event-driven.  Built fresh per :meth:`run` call."""

    def __init__(self, runtime: "PIMRuntime") -> None:
        self.runtime = runtime
        self.cfg = runtime.config
        self.compiled = runtime.compiled
        self.table = runtime.table
        self.ir_model = runtime.ir_model
        self.energy_model = runtime.energy_model
        self.n = self.cfg.cycles

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #
    def _setup(self) -> None:
        runtime, cfg = self.runtime, self.cfg
        activity = runtime._macro_activity_traces()
        self.activity = activity
        self.controller = runtime._controller()

        # Group membership in the reference engine's processing order: groups
        # in first-encounter order over sorted macro indices, members sorted.
        self.macro_indices = sorted(activity)
        self.group_members = runtime._group_members(self.macro_indices)
        self.groups: List[int] = list(self.group_members)

        # Row layout: the activity matrix keeps macros in processing order, so
        # a row index doubles as the reference loop's within-cycle visit order
        # and each group's members occupy one contiguous row range.
        proc_order: List[int] = [m for gid in self.groups
                                 for m in self.group_members[gid]]
        self.proc_order = proc_order
        self.row_of = {m: r for r, m in enumerate(proc_order)}
        self.n_rows = len(proc_order)
        self.A = np.vstack([activity[m] for m in proc_order]) if proc_order \
            else np.zeros((0, self.n))
        self.group_rows: Dict[int, Tuple[int, int]] = {}
        start = 0
        for gid in self.groups:
            count = len(self.group_members[gid])
            self.group_rows[gid] = (start, start + count)
            start += count
        self.group_of_row: List[int] = [0] * self.n_rows
        for gid, (lo, hi) in self.group_rows.items():
            for row in range(lo, hi):
                self.group_of_row[row] = gid

        # Logical sets (recompute stalls propagate set-wide), as row indices.
        macro_set, set_members = runtime._logical_sets()
        self.set_of_row = [macro_set[m] for m in proc_order]
        self.set_rows = {sid: sorted(self.row_of[m] for m in members)
                         for sid, members in set_members.items()}

        macs = runtime._macs_per_cycle()
        self.macs_per_cycle = np.array([macs[m] for m in proc_order]) \
            if proc_order else np.zeros(0)

        # Cycle-indexed monitor noise, one stream per group (same construction
        # as the reference engine's monitors).
        self.noise: Dict[int, np.ndarray] = {}
        for gid in self.groups:
            monitor = IRMonitor(sensing_noise=cfg.monitor_noise, seed=cfg.seed + gid,
                                record_readings=False)
            self.noise[gid] = monitor.noise_for_cycles(self.n)
        self.min_voltage_margin = 0.0

        # Controller-facing state.
        self.level: Dict[int, int] = {}
        for gid in self.groups:
            if self.controller is None:
                self.level[gid] = 100
            else:
                self.level[gid] = self.controller.state(gid).level
        self.level_breaks: Dict[int, List[Tuple[int, int]]] = {
            gid: [(0, self.level[gid])] for gid in self.groups}

        self._caches: Dict[Tuple[int, int], _LevelCache] = {}

        # Event bookkeeping.
        inf = self.n
        self.stepping = self.cfg.controller == "booster"
        self.synced = {gid: 0 for gid in self.groups}
        self.scan_from = {gid: 0 for gid in self.groups}
        self.next_sched = {
            gid: (self.controller.cycles_to_next_transition(gid)
                  if self.stepping else inf)
            for gid in self.groups}
        self.stall_end = [0] * self.n_rows
        self.stall_mask = np.zeros((self.n_rows, self.n), dtype=bool)
        self.fail_counts = [0] * self.n_rows
        self.fail_points: List[Tuple[int, int]] = []
        #: the active level's cache per group (refreshed on level changes)
        self.cur_cache = {gid: self._cache(gid, self.level[gid])
                          for gid in self.groups}
        self.next_fail = {gid: self._query_next_fail(gid) for gid in self.groups}

    # ------------------------------------------------------------------ #
    # per-(group, level) caches
    # ------------------------------------------------------------------ #
    def _pair_for(self, gid: int, level: int) -> VFPair:
        if self.controller is None:
            return self.table.nominal_dvfs_pair()
        lookup = level if level in self.table.levels else 100
        return self.table.select_pair(lookup, self.cfg.mode)

    def _cache(self, gid: int, level: int) -> _LevelCache:
        key = (gid, level)
        cached = self._caches.get(key)
        if cached is not None:
            return cached
        pair = self._pair_for(gid, level)
        allowed_drop = self.ir_model.drop(
            min(pair.level, 100) / 100.0, pair.voltage, pair.frequency)
        lo, hi = self.group_rows[gid]
        drop_rows = self.ir_model.drop_array(self.A[lo:hi], pair.voltage,
                                             pair.frequency)
        # Exactly the reference comparison: (V - drop) + noise < (V - allowed) + margin.
        threshold = (pair.voltage - allowed_drop) + self.min_voltage_margin
        fail_rows = (pair.voltage - drop_rows) + self.noise[gid] < threshold
        fail_cycles = [np.nonzero(fail_rows[i])[0] for i in range(hi - lo)]
        cached = _LevelCache(pair=pair, drop_rows=drop_rows,
                             fail_cycles=fail_cycles)
        self._caches[key] = cached
        return cached

    # ------------------------------------------------------------------ #
    # event queries
    # ------------------------------------------------------------------ #
    def _query_next_fail(self, gid: int) -> int:
        """First cycle >= scan_from with a non-stalled candidate failure.

        Valid until the group's level actually changes (the caller recomputes
        then) — scheduled Algorithm-2 transitions that keep the level are
        no-ops for failure candidates.
        """
        lo, _ = self.group_rows[gid]
        base = self.scan_from[gid]
        best = self.n
        for local, cycles in enumerate(self.cur_cache[gid].fail_cycles):
            first = max(base, self.stall_end[lo + local])
            if first >= best:
                continue
            j = cycles.searchsorted(first)
            if j < cycles.size and cycles[j] < best:
                best = int(cycles[j])
        return best

    # ------------------------------------------------------------------ #
    # event processing
    # ------------------------------------------------------------------ #
    def _apply_scheduled(self, gid: int, cycle: int) -> None:
        """Algorithm-2 transition whose new level first applies at ``cycle``."""
        self.controller.advance_nofail(gid, cycle - self.synced[gid])
        self.synced[gid] = cycle
        self.next_sched[gid] = cycle + self.controller.cycles_to_next_transition(gid)
        new_level = self.controller.state(gid).level
        if new_level != self.level[gid]:
            # Candidate failures depend on the level; rescan from this cycle.
            self.level[gid] = new_level
            self.cur_cache[gid] = self._cache(gid, new_level)
            self.level_breaks[gid].append((cycle, new_level))
            self.scan_from[gid] = cycle
            self.next_fail[gid] = self._query_next_fail(gid)

    def _process_failure_cycle(self, cycle: int, fail_gids: List[int]) -> None:
        """Replay one cycle with the reference loop's exact visit order."""
        recompute = self.cfg.recompute_cycles
        stall_end, stall_mask = self.stall_end, self.stall_mask
        group_of_row, n = self.group_of_row, self.n
        failed_groups: List[int] = []
        affected: set = set()
        for gid in fail_gids:
            fail_cycles = self.cur_cache[gid].fail_cycles
            lo, _ = self.group_rows[gid]
            group_failed = False
            for local, cycles in enumerate(fail_cycles):
                row = lo + local
                if stall_end[row] > cycle:
                    continue               # stalled (possibly just this cycle)
                j = cycles.searchsorted(cycle)
                if j >= cycles.size or cycles[j] != cycle:
                    continue               # no candidate failure this cycle
                # IRFailure: the whole logical Set stalls for the recompute
                # window.  Members the reference loop already visited this
                # cycle (row <= failing row) begin stalling next cycle; later
                # members stall immediately, which suppresses their sample.
                group_failed = True
                self.fail_counts[row] += 1
                self.fail_points.append((row, cycle))
                for member_row in self.set_rows[self.set_of_row[row]]:
                    start = cycle + 1 if member_row <= row else cycle
                    end = start + recompute
                    if end > start:
                        stall_mask[member_row, start:min(end, n)] = True
                        if end > stall_end[member_row]:
                            stall_end[member_row] = end
                    affected.add(group_of_row[member_row])
            if group_failed:
                failed_groups.append(gid)
            self.scan_from[gid] = cycle + 1
            affected.add(gid)

        if self.stepping:
            for gid in failed_groups:
                # Advance the lazily-tracked Algorithm-2 state to this cycle,
                # then apply the failure branch (the reference engine's
                # ``controller.step(gid, ir_failure=True)``).
                self.controller.advance_nofail(gid, cycle - self.synced[gid])
                self.controller.step(gid, ir_failure=True)
                self.synced[gid] = cycle + 1
                new_level = self.controller.state(gid).level
                if new_level != self.level[gid]:
                    self.level[gid] = new_level
                    self.cur_cache[gid] = self._cache(gid, new_level)
                    self.level_breaks[gid].append((cycle + 1, new_level))
                self.next_sched[gid] = \
                    cycle + 1 + self.controller.cycles_to_next_transition(gid)
        for gid in affected:
            self.next_fail[gid] = self._query_next_fail(gid)

    def _run_events(self) -> None:
        n = self.n
        next_sched, next_fail = self.next_sched, self.next_fail
        while True:
            next_cycle = n
            for gid in self.groups:
                sched, fail = next_sched[gid], next_fail[gid]
                if sched < next_cycle:
                    next_cycle = sched
                if fail < next_cycle:
                    next_cycle = fail
            if next_cycle >= n:
                break
            for gid in self.groups:
                if next_sched[gid] == next_cycle:
                    self._apply_scheduled(gid, next_cycle)
            fail_gids = [gid for gid in self.groups if next_fail[gid] == next_cycle]
            if fail_gids:
                self._process_failure_cycle(next_cycle, fail_gids)
        if self.stepping:
            # Flush the remaining failure-free steps so final controller state
            # (final level, counters) matches the reference engine.
            for gid in self.groups:
                self.controller.advance_nofail(gid, n - self.synced[gid])
                self.synced[gid] = n

    # ------------------------------------------------------------------ #
    # materialization
    # ------------------------------------------------------------------ #
    def _segments(self, gid: int) -> List[Tuple[int, int, int]]:
        """Level breakpoints -> (start, end, level) spans covering the horizon."""
        breaks = self.level_breaks[gid]
        spans = []
        for i, (start, level) in enumerate(breaks):
            end = breaks[i + 1][0] if i + 1 < len(breaks) else self.n
            if end > start:
                spans.append((start, end, level))
        return spans

    def _materialize(self) -> SimulationResult:
        n, n_rows = self.n, self.n_rows
        drops = np.zeros((n_rows, n))
        chip_drop = np.zeros(n)
        # Operating points are shared within a group: one V / one f vector per
        # group instead of (n_rows, cycles) matrices.
        group_voltage: Dict[int, np.ndarray] = {}
        group_frequency: Dict[int, np.ndarray] = {}
        level_traces: Dict[int, np.ndarray] = {}
        for gid in self.groups:
            lo, hi = self.group_rows[gid]
            spans = self._segments(gid)
            voltage = np.empty(n)
            frequency = np.empty(n)
            for start, end, level in spans:
                cache = self._cache(gid, level)
                drops[lo:hi, start:end] = cache.drop_rows[:, start:end]
                voltage[start:end] = cache.pair.voltage
                frequency[start:end] = cache.pair.frequency
            group_voltage[gid] = voltage
            group_frequency[gid] = frequency
            level_traces[gid] = np.repeat(
                np.array([level for _, _, level in spans], dtype=np.int64),
                np.array([end - start for start, end, _ in spans], dtype=np.int64)) \
                if spans else np.zeros(0, dtype=np.int64)
        if n_rows:
            chip_drop = drops.max(axis=0)

        energy_stalled = self.stall_mask.copy()
        for row, cycle in self.fail_points:
            energy_stalled[row, cycle] = True
        stall_sums = self.stall_mask.sum(axis=1) if n_rows else np.zeros(0)

        energy: Dict[int, EnergyBreakdown] = {}
        drop_traces: Dict[int, np.ndarray] = {}
        failures: Dict[int, int] = {}
        stall_total: Dict[int, int] = {}
        for row, macro_index in enumerate(self.proc_order):
            gid = self.group_of_row[row]
            breakdown = EnergyBreakdown()
            self.energy_model.accumulate_trace(
                breakdown, group_voltage[gid], group_frequency[gid], self.A[row],
                self.macs_per_cycle[row], stalled=energy_stalled[row])
            energy[macro_index] = breakdown
            drop_traces[macro_index] = drops[row]
            failures[macro_index] = self.fail_counts[row]
            stall_total[macro_index] = int(stall_sums[row])

        return self.runtime._collect(
            energy, drop_traces, self.activity, failures, stall_total,
            level_traces, chip_drop, self.controller,
            group_members=self.group_members)

    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        self._setup()
        self._run_events()
        return self._materialize()


def run_vectorized(runtime: "PIMRuntime") -> SimulationResult:
    """Run ``runtime`` on the vectorized segment-based engine."""
    return _VectorizedEngine(runtime).run()
