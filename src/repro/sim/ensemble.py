"""Batch-of-runs ensemble engine: one pass resolves a whole grid point.

A sweep grid point is simulated many times — once per seed of its ensemble,
or once per beta of a shared-seed grid — and every one of those runs repeats
work that is identical or near-identical across the batch: compiling nothing
new, but regenerating AR(1) flip streams, re-deriving per-(group, level)
Eq.-2 physics, rebuilding controller/monitor state, and walking the event
kernels one run at a time.  :func:`run_ensemble` executes all members of one
grid point together:

* **activity** — every member's per-macro flip streams are generated in a
  single :func:`~repro.workloads.generator.flip_factor_matrix` call over the
  concatenated seed list.  The AR(1) recurrence is sequential in *cycles*
  but embarrassingly parallel in *rows*, so batching members into one
  ``lfilter`` call amortizes the dominant cold-run cost; row ``i`` still
  consumes exactly the per-seed RNG stream a lone run would, so traces stay
  bit-identical.  Members sharing a seed (a beta grid) share one generation.
* **physics** — the candidate streams each member's event walk will
  consume are built up front and pinned in the engine's private memo (so
  the batch is immune to shared-cache eviction pressure), and built
  *directly*: for independent groups one full-matrix monitor compare per
  (group, level) plus one transposed ``nonzero`` per Set yields the packed
  key streams already in merge order
  (:meth:`~repro.sim.engine._VectorizedEngine._prebuild_streams`),
  bit-identical to the per-run merge path.  Set-coupled groups go through
  the full per-run cache derivation (the heap scheduler bisects per-row
  cycle lists).  A ``booster`` member's boost-ladder levels are not
  prebuilt at all — the span kernel binds them thousands of times but
  consumes only a handful of candidates per bind, so their streams
  materialize lazily over expanding cycle windows
  (:class:`~repro.sim.engine._LazyLevelStreams`), one shared window per
  group extending every Set's stream in lockstep; a stepping member's
  distinct initial level derives physics only and windows the same way.
* **events** — members whose level never changes (``dvfs``,
  ``booster_safe``) resolve each group through the *runs-axis* timeline
  kernels (:func:`~repro.sim.kernels.select_failures_runs`, re-armed via
  :func:`~repro.sim.kernels.resume_frontiers_runs`): one call selects every
  member's failure timeline for a Set over stacked candidate streams.
  ``booster`` members keep their per-member span kernel (Algorithm-2 state
  is inherently sequential per run) but run group-major so each group's
  shared structures stay hot.  Set-coupled groups fall back to the
  per-member heap scheduler unchanged.

Equivalence contract: for every member, the returned
:class:`~repro.sim.results.SimulationResult` is *bit-identical in every
discrete field* (failures, stalls, level breaks, candidate selections) to a
lone ``PIMRuntime(compiled, cfg).run()`` with the same config, and float
reductions (energy, drop statistics) agree to 1e-9 rtol — enforced by the
oracle-chain differential tests (``tests/test_sim_engine.py``) and asserted
again inside the ensemble benchmark run.

Members may differ in ``seed``, ``beta``, ``controller``, ``mode``,
``monitor_noise``, ``recompute_cycles`` and ``traces``; they must share the
activity-stacking axes (``cycles`` and the flip statistics) and the
compiled workload.  The sweep runner groups eligible
:class:`~repro.sweep.spec.RunSpec`s into
:class:`~repro.sweep.spec.EnsembleSpec` work units per ``point_key`` family
(see :mod:`repro.sweep.runner`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..workloads.generator import flip_factor_matrix
from .compiler import CompiledWorkload
from .engine import _VectorizedEngine
from .kernels import (
    EXHAUSTED_KEY,
    frontier_key,
    resume_frontiers_runs,
    select_failures_runs,
)
from .level_cache import LEVEL_CACHE
from .results import SimulationResult
from .runtime import PIMRuntime, RuntimeConfig

__all__ = ["run_ensemble", "ENSEMBLE_SHARED_FIELDS"]

#: ``RuntimeConfig`` fields every ensemble member must share — the axes the
#: batched activity generation stacks over.  Everything else (seed, beta,
#: controller, mode, monitor noise, recompute window, traces) may vary.
ENSEMBLE_SHARED_FIELDS = ("cycles", "flip_mean", "flip_std",
                          "flip_correlation", "input_determined_hr")


def run_ensemble(compiled: CompiledWorkload,
                 configs: List[RuntimeConfig], *,
                 table=None, ir_model=None,
                 energy_model=None) -> List[SimulationResult]:
    """Simulate every config of one grid point in a single batched pass.

    Returns one :class:`SimulationResult` per config, in order, each
    bit-identical (discrete fields; energy to 1e-9 rtol) to a lone
    ``PIMRuntime(compiled, cfg).run()``.  All configs must use the
    vectorized engine and agree on :data:`ENSEMBLE_SHARED_FIELDS`.
    """
    if not configs:
        return []
    base = configs[0]
    for cfg in configs:
        cfg.validate()
        if cfg.engine != "vectorized":
            raise ValueError(
                "run_ensemble requires engine='vectorized' members; "
                f"got {cfg.engine!r} (run reference members individually)")
        for name in ENSEMBLE_SHARED_FIELDS:
            if getattr(cfg, name) != getattr(base, name):
                raise ValueError(
                    f"ensemble members must share {name!r}: "
                    f"{getattr(cfg, name)!r} != {getattr(base, name)!r}")

    runtimes = [PIMRuntime(compiled, cfg, table=table, ir_model=ir_model,
                           energy_model=energy_model) for cfg in configs]
    engines = [_VectorizedEngine(rt) for rt in runtimes]
    for engine in engines:
        engine._setup_structure()
        # Stepping members consume ladder levels (every level outside the
        # prebuilt initial/safe pair) through lazily-windowed candidate
        # streams: the batch holds 8+ members' state at once, and deriving
        # full-horizon candidate lists for rarely-dwelled levels is both
        # the bulk of the ladder's compute and of the batch's peak memory.
        engine.lazy_ladder = engine.stepping
    _batch_activity(engines)
    _prebuild_physics(engines)
    for engine in engines:
        engine._bind_caches()
    _run_events_batch(engines)
    return [engine.materialize() for engine in engines]


# ---------------------------------------------------------------------- #
# batched setup
# ---------------------------------------------------------------------- #
def _batch_activity(engines: List[_VectorizedEngine]) -> None:
    """Generate every member's activity traces in one flip-matrix call.

    Distinct activity keys (distinct seeds, typically) are concatenated
    into one seed list; members sharing a key (a shared-seed beta grid)
    share one generation and one cache entry.  Trace-free members'
    activity prefix sums and row stats are then built once per distinct
    key so the scalar materialization of the whole batch shares them.
    """
    pending: Dict[tuple, _VectorizedEngine] = {}
    for engine in engines:
        if engine._activity is None and engine._activity_key not in pending:
            pending[engine._activity_key] = engine
    if pending:
        owners = list(pending.values())
        seeds: List[int] = []
        blocks: List[Tuple[_VectorizedEngine, List[int], List[float],
                           int, int]] = []
        for engine in owners:
            macro_indices, member_seeds, hrs = \
                engine.runtime._activity_inputs()
            lo = len(seeds)
            seeds.extend(member_seeds)
            blocks.append((engine, macro_indices, hrs, lo, len(seeds)))
        cfg = owners[0].cfg
        flips = flip_factor_matrix(
            seeds, cfg.cycles, mean=cfg.flip_mean, std=cfg.flip_std,
            correlation=cfg.flip_correlation)
        for engine, macro_indices, hrs, lo, hi in blocks:
            block = flips[lo:hi]
            activity: Dict[int, np.ndarray] = {}
            for i, (macro_index, hr) in enumerate(zip(macro_indices, hrs)):
                trace = np.clip(hr * block[i], 0.0, 1.0)
                trace.setflags(write=False)
                activity[macro_index] = trace
            LEVEL_CACHE.put(
                engine._activity_key, activity,
                sum(trace.nbytes for trace in activity.values()))
            engine._activity = activity
    # Members that shared a pending key (or raced a warm cache) bind now.
    for engine in engines:
        if engine._activity is None:
            engine._activity = LEVEL_CACHE.get(engine._activity_key)
    # One prefix/stats build per distinct key serves every trace-free
    # member sharing it (the scalar fast path's span aggregates).
    built = set()
    for engine in engines:
        if engine.cfg.traces != "none":
            continue
        key = engine._activity_key[1:]
        if key in built:
            continue
        built.add(key)
        engine._activity_prefix()
        engine._activity_stats()


def _prebuild_levels(engine: _VectorizedEngine, gid: int) -> List[int]:
    """The levels a member is certain to visit for ``gid``: the initial
    level, plus the safe level for stepping (``booster``) members — the
    level every IRFailure lands on."""
    levels = [engine.level[gid]]
    if engine.stepping:
        safe = engine.controller.state(gid).safe_level
        if safe not in levels:
            levels.append(safe)
    return levels


def _prebuild_physics(engines: List[_VectorizedEngine]) -> None:
    """Derive every member's certain-to-visit level entries up front.

    Independent groups — the ones the timeline kernels resolve — get their
    merged candidate streams built *directly* (``_prebuild_streams``: one
    threshold compare and one transposed ``nonzero`` per Set, keys landing
    pre-sorted), skipping the per-row candidate split and the
    concatenate-and-sort merge the lazy per-run derivation pays; the keys
    are bit-identical by construction.  Coupled groups keep the full
    ``_cache`` derivation — the heap scheduler bisects per-row candidate
    lists.  Every entry lands in the engine's private memo, so the event
    kernels never pay a first-sight derivation mid-walk and the batch is
    immune to shared-cache eviction pressure.  (An earlier revision stacked
    member activity rows into one batched ``drop_array`` call per
    ``(group, V-f pair)``; the op is elementwise and memory-bound, so the
    stacking bought nothing while its transient copies dominated the
    batch's allocator traffic.)
    """
    for engine in engines:
        coupled = set(engine.coupled_groups)
        for gid in engine.groups:
            levels = _prebuild_levels(engine, gid)
            for j, level in enumerate(levels):
                if gid in coupled:
                    engine._cache(gid, level)
                elif engine.lazy_ladder and j == 0 and len(levels) > 1:
                    # A stepping member's distinct initial level is consumed
                    # only until each Set's first failure (the group then
                    # lives on the safe level and the boost ladder, never
                    # returning): physics for materialization here, streams
                    # windowed on first demand.
                    engine._physics_cache(gid, level)
                else:
                    engine._prebuild_streams(gid, level)


# ---------------------------------------------------------------------- #
# batched events
# ---------------------------------------------------------------------- #
def _run_group_kernel_runs(members: List[_VectorizedEngine],
                           gid: int) -> None:
    """Runs-axis counterpart of ``_run_group_kernel`` for one group.

    Every member's timeline for each Set is resolved in one
    :func:`select_failures_runs` call over the stacked candidate streams;
    :func:`resume_frontiers_runs` pre-peeks the batch so exhausted members
    skip selection.  Per-member decoding goes through the engine's own
    ``_apply_set_selection``, so logs, counts and stall bounds are
    bit-identical to the per-run kernel path.
    """
    first = members[0]
    set_arrays = first._group_sets(gid)
    shift = first.row_shift
    last_cycles = [-1] * len(members)
    for s, set_rows in enumerate(set_arrays):
        streams = [engine._merged(gid, engine.cur_cache[gid])[s]
                   for engine in members]
        frontiers = [frontier_key(engine.scan_from[gid], -1, shift)
                     for engine in members]
        next_keys, _ = resume_frontiers_runs(streams, frontiers)
        live = [i for i, key in enumerate(next_keys) if key < EXHAUSTED_KEY]
        if not live:
            continue
        outs, _ = select_failures_runs(
            [streams[i] for i in live],
            [members[i].n for i in live],
            [members[i].cfg.recompute_cycles for i in live],
            [frontiers[i] for i in live])
        for i, out in zip(live, outs):
            f = members[i]._apply_set_selection(set_rows, out)
            if f > last_cycles[i]:
                last_cycles[i] = f
    for i, engine in enumerate(members):
        if last_cycles[i] >= 0:
            engine.scan_from[gid] = last_cycles[i] + 1


def _run_events_batch(engines: List[_VectorizedEngine]) -> None:
    """Event processing for the whole batch (dispatch mirrors
    ``_VectorizedEngine._run_events`` per member)."""
    flat = [engine for engine in engines if not engine.stepping]
    stepping = [engine for engine in engines if engine.stepping]
    if flat:
        for gid in flat[0].independent_groups:
            _run_group_kernel_runs(flat, gid)
        for engine in flat:
            if engine.coupled_groups:
                engine._run_events_heap(engine.coupled_groups)
    if stepping:
        # Group-major: each group's shared Set/merge structures stay hot
        # across the per-member span kernels.
        for gid in stepping[0].independent_groups:
            for engine in stepping:
                engine._run_group_span_kernel(gid)
        for engine in stepping:
            if engine.coupled_groups:
                engine._run_events_heap(engine.coupled_groups)
    for engine in engines:
        engine._finish_events()
