"""Closed-form failure-timeline kernels for no-level-change group spans.

The batched event engine (:mod:`repro.sim.engine`) walks a group's failure
timeline event by event with per-member ``bisect`` pointers.  For groups whose
V-f level never changes — every ``dvfs`` and ``booster_safe`` group, and
``booster`` groups between two level breaks — that walk is pure overhead: the
whole timeline is a *greedy min-gap selection* over one merged candidate
stream, which this module resolves in closed form.

The selection rule
------------------
Recompute stalls propagate within a failing macro's logical Set and, with a
constant level, never across Sets — so the timeline decomposes per Set.
Within one Set, every member's candidate failure cycles merge into a single
sorted stream of packed keys::

    key = (cycle << shift) | row          # numeric order == (cycle, row) lex

where ``row`` is the member's global activity-matrix row — the reference
loop's within-cycle visit order.  When the candidate ``(f, r)`` fails, the
reference semantics stall the whole Set: rows visited at or before ``r`` from
cycle ``f + 1``, later rows from ``f`` — i.e. for a recompute window of ``R``
cycles, the next eligible candidate is exactly the first one
*lexicographically after* ``(f + R, r)``, which in packed form is the first
key **greater than** ``selected_key + (R << shift)``.  The whole timeline
therefore resolves with at most one binary search per **selected** failure,
never touching the suppressed candidates in between; ``R == 0`` degenerates
to "every candidate fails", a single slice.

A single *frontier key* — "only keys strictly greater are eligible" — is the
kernel's entire carry-over state (``(cycle << shift) - 1`` encodes "every row
at ``cycle``").  It survives level changes unchanged (stall windows are
level-independent), which is how the engine resumes a ``booster`` group's
Sets across level-stable spans.

Implementations
---------------
The default pure-Python selection loop runs ``bisect`` over a plain list of
keys (a scalar list bisect is several times faster than a scalar
``np.searchsorted`` — the same trade the batched engine's event paths make),
and skips even that when the next key already clears the frontier.  The same
algorithm is also written against a plain int64 array
(:func:`_select_failures_impl`) so it compiles unchanged under :mod:`numba`:
``REPRO_KERNEL=numba`` (environment variable, read at import) or
:func:`set_kernel` selects the jitted variant.  Numba is *not* a dependency —
requesting it without the wheel installed warns and falls back to the default
kernel (``REPRO_KERNEL=numpy``).  Both variants are bit-for-bit identical;
the equivalence suite (``tests/test_kernels.py``) runs against whichever is
active.
"""

from __future__ import annotations

import os
import warnings
from bisect import bisect_left, bisect_right
from typing import Callable, Dict, List, NamedTuple, Sequence, Tuple

import numpy as np

__all__ = [
    "EXHAUSTED_KEY",
    "KERNEL_NAMES",
    "MergedCandidates",
    "active_kernel",
    "frontier_key",
    "merge_candidates",
    "resume_frontiers_runs",
    "select_failures",
    "select_failures_runs",
    "set_kernel",
]

#: Selectable kernel implementations (``REPRO_KERNEL``).
KERNEL_NAMES = ("numpy", "numba")

#: Sentinel "no eligible candidate" key of the runs-axis span-resume kernel —
#: sorts above every real packed key (cycles and rows are far below 2^31).
EXHAUSTED_KEY = 1 << 62


class MergedCandidates(NamedTuple):
    """One Set's merged candidate stream of packed ``(cycle, row)`` keys.

    Both representations hold the same sorted keys: the int64 array feeds the
    numba-jitted kernel, the plain list the default scalar-``bisect`` paths.
    ``shift``/``mask`` decode a key back into ``(key >> shift, key & mask)``.
    """

    keys: np.ndarray
    keys_list: List[int]
    shift: int
    mask: int


def frontier_key(cycle: int, row: int, shift: int) -> int:
    """The packed frontier "strictly after ``(cycle, row)``".

    ``row = -1`` means "strictly before every row at ``cycle``" — i.e. all
    of ``cycle``'s candidates are still eligible.
    """
    return (cycle << shift) + row


def merge_candidates(per_row_cycles: List[np.ndarray], row_ids: List[int],
                     shift: int) -> MergedCandidates:
    """Merge per-member candidate arrays into one sorted packed-key stream.

    ``per_row_cycles[k]`` holds the sorted candidate cycles of global row
    ``row_ids[k]``; every row id must fit ``shift`` bits.  Packing makes the
    merge a single flat ``np.sort`` — no argsort, no tuple keys.
    """
    mask = (1 << shift) - 1
    total = sum(len(c) for c in per_row_cycles)
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return MergedCandidates(empty, [], shift, mask)
    keys = np.concatenate(
        [(np.asarray(c, dtype=np.int64) << shift) | rid
         for c, rid in zip(per_row_cycles, row_ids)])
    keys.sort()
    return MergedCandidates(keys, keys.tolist(), shift, mask)


def _select_failures_list(keys: List[int], shift: int, end_cycle: int,
                          recompute: int, frontier: int
                          ) -> Tuple[List[int], int]:
    """Default greedy selection: scalar ``bisect`` over the plain key list.

    Returns the selected keys and the final frontier.  After a selection the
    frontier jumps by ``recompute << shift``; when the very next key already
    clears it (dense streams — and always when ``recompute == 0``) no search
    is needed at all, so the bisect only pays for genuine jumps.
    """
    n = len(keys)
    end_key = end_cycle << shift
    if recompute == 0:
        i = bisect_right(keys, frontier)
        j = bisect_left(keys, end_key, i)
        out = keys[i:j]
        return out, (out[-1] if out else frontier)
    out: List[int] = []
    push = out.append
    jump = recompute << shift
    i = bisect_right(keys, frontier)
    while i < n:
        key = keys[i]
        if key >= end_key:
            break
        push(key)
        frontier = key + jump
        i += 1
        if i < n and keys[i] <= frontier:
            i = bisect_right(keys, frontier, i + 1)
    return out, frontier


def _select_failures_impl(keys: np.ndarray, shift: int, end_cycle: int,
                          recompute: int, frontier: int,
                          out_keys: np.ndarray) -> Tuple[int, int]:
    """The same greedy selection against an int64 array (numba-compilable).

    Writes selections into the preallocated ``out_keys`` (at least
    ``keys.size`` long) and returns ``(count, frontier)``.  Pure scalar/array
    code with no Python containers: compiles unchanged under ``numba.njit``.
    """
    n = keys.shape[0]
    count = 0
    end_key = end_cycle << shift
    jump = recompute << shift
    i = np.searchsorted(keys, frontier, side="right")
    while i < n:
        key = keys[i]
        if key >= end_key:
            break
        out_keys[count] = key
        count += 1
        frontier = key + jump
        i += 1
        if i < n and keys[i] <= frontier:
            i = np.searchsorted(keys[i + 1:], frontier,
                                side="right") + i + 1
    return count, frontier


def _select_failures_numpy(merged: MergedCandidates, end_cycle: int,
                           recompute: int, frontier: int
                           ) -> Tuple[List[int], int]:
    return _select_failures_list(merged.keys_list, merged.shift, end_cycle,
                                 recompute, frontier)


def _select_failures_runs_numpy(streams: Sequence[MergedCandidates],
                                end_cycles: Sequence[int],
                                recomputes: Sequence[int],
                                frontiers: Sequence[int]
                                ) -> Tuple[List[List[int]], List[int]]:
    outs: List[List[int]] = []
    fronts: List[int] = []
    for merged, end_cycle, recompute, frontier in zip(
            streams, end_cycles, recomputes, frontiers):
        out, front = _select_failures_list(merged.keys_list, merged.shift,
                                           end_cycle, recompute, frontier)
        outs.append(out)
        fronts.append(front)
    return outs, fronts


def _resume_frontiers_runs_numpy(streams: Sequence[MergedCandidates],
                                 frontiers: Sequence[int]
                                 ) -> Tuple[List[int], List[int]]:
    next_keys: List[int] = []
    indices: List[int] = []
    for merged, frontier in zip(streams, frontiers):
        lst = merged.keys_list
        i = bisect_right(lst, frontier)
        indices.append(i)
        next_keys.append(lst[i] if i < len(lst) else EXHAUSTED_KEY)
    return next_keys, indices


class KernelImpls(NamedTuple):
    """One implementation family: the scalar kernel plus its runs-axis
    variants (all three always switch together under :func:`set_kernel`)."""

    select: Callable
    select_runs: Callable
    resume_runs: Callable


def _stack_streams(streams: Sequence[MergedCandidates]
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate per-run key arrays with ``(n_runs + 1,)`` slice offsets.

    The runs-axis jitted kernels take one flat int64 array so the whole
    batch crosses the Python/numba boundary once.
    """
    offsets = np.zeros(len(streams) + 1, dtype=np.int64)
    for i, merged in enumerate(streams):
        offsets[i + 1] = offsets[i] + merged.keys.shape[0]
    if offsets[-1] == 0:
        return np.empty(0, dtype=np.int64), offsets
    return np.concatenate([merged.keys for merged in streams]), offsets


def _select_failures_runs_impl(keys: np.ndarray, offsets: np.ndarray,
                               shift: int, end_cycles: np.ndarray,
                               recomputes: np.ndarray, frontiers: np.ndarray,
                               out_keys: np.ndarray, out_counts: np.ndarray,
                               out_frontiers: np.ndarray) -> None:
    """Runs-axis greedy selection over stacked streams (numba-compilable).

    Run ``r`` owns ``keys[offsets[r]:offsets[r + 1]]`` and writes its
    selections into the same slice of ``out_keys`` — each run is exactly
    :func:`_select_failures_impl`, so the stacked variant is bit-identical
    to per-run dispatch by construction.
    """
    for r in range(offsets.shape[0] - 1):
        lo = offsets[r]
        hi = offsets[r + 1]
        count, frontier = _select_failures_impl(
            keys[lo:hi], shift, end_cycles[r], recomputes[r], frontiers[r],
            out_keys[lo:hi])
        out_counts[r] = count
        out_frontiers[r] = frontier


def _resume_frontiers_runs_impl(keys: np.ndarray, offsets: np.ndarray,
                                frontiers: np.ndarray, out_keys: np.ndarray,
                                out_indices: np.ndarray) -> None:
    """Runs-axis span-resume peek (numba-compilable): per run, the index and
    value of the first key strictly above its frontier."""
    for r in range(offsets.shape[0] - 1):
        lo = offsets[r]
        hi = offsets[r + 1]
        i = np.searchsorted(keys[lo:hi], frontiers[r], side="right")
        out_indices[r] = i
        if lo + i < hi:
            out_keys[r] = keys[lo + i]
        else:
            out_keys[r] = EXHAUSTED_KEY


_NUMPY_IMPLS = KernelImpls(select=_select_failures_numpy,
                           select_runs=_select_failures_runs_numpy,
                           resume_runs=_resume_frontiers_runs_numpy)


def _uniform_shift(streams: Sequence[MergedCandidates]) -> int:
    shift = streams[0].shift
    for merged in streams:
        if merged.shift != shift:
            raise ValueError(
                "runs-axis kernels require a uniform key shift across the "
                f"stacked streams, got {merged.shift} != {shift}")
    return shift


def _make_numba_impls() -> KernelImpls:
    """Jit-compile the kernel family (raises ImportError without numba)."""
    import numba

    jitted = numba.njit(cache=True)(_select_failures_impl)
    # The runs-axis loops call the jitted scalar kernel, so exec_globals must
    # resolve _select_failures_impl to the compiled dispatcher.
    jitted_runs = numba.njit(cache=False)(
        _rebind(_select_failures_runs_impl, _select_failures_impl=jitted))
    jitted_resume = numba.njit(cache=True)(_resume_frontiers_runs_impl)

    def run(merged: MergedCandidates, end_cycle: int, recompute: int,
            frontier: int) -> Tuple[List[int], int]:
        keys = merged.keys
        out_keys = np.empty(keys.shape[0], dtype=np.int64)
        count, new_frontier = jitted(keys, merged.shift, end_cycle,
                                     recompute, frontier, out_keys)
        return out_keys[:count].tolist(), int(new_frontier)

    def run_runs(streams, end_cycles, recomputes, frontiers):
        if not streams:
            return [], []
        shift = _uniform_shift(streams)
        keys, offsets = _stack_streams(streams)
        n_runs = len(streams)
        out_keys = np.empty(keys.shape[0], dtype=np.int64)
        out_counts = np.zeros(n_runs, dtype=np.int64)
        out_frontiers = np.empty(n_runs, dtype=np.int64)
        jitted_runs(keys, offsets, shift,
                    np.asarray(end_cycles, dtype=np.int64),
                    np.asarray(recomputes, dtype=np.int64),
                    np.asarray(frontiers, dtype=np.int64),
                    out_keys, out_counts, out_frontiers)
        outs = [out_keys[offsets[r]:offsets[r] + out_counts[r]].tolist()
                for r in range(n_runs)]
        return outs, out_frontiers.tolist()

    def run_resume(streams, frontiers):
        if not streams:
            return [], []
        keys, offsets = _stack_streams(streams)
        n_runs = len(streams)
        out_keys = np.empty(n_runs, dtype=np.int64)
        out_indices = np.empty(n_runs, dtype=np.int64)
        jitted_resume(keys, offsets,
                      np.asarray(frontiers, dtype=np.int64),
                      out_keys, out_indices)
        return out_keys.tolist(), out_indices.tolist()

    return KernelImpls(select=run, select_runs=run_runs,
                       resume_runs=run_resume)


def _rebind(fn: Callable, **overrides) -> Callable:
    """A copy of ``fn`` whose module globals are overlaid with ``overrides``
    (lets the jitted runs-axis loop call the jitted scalar kernel)."""
    import types
    namespace = dict(fn.__globals__)
    namespace.update(overrides)
    clone = types.FunctionType(fn.__code__, namespace, fn.__name__,
                               fn.__defaults__, fn.__closure__)
    clone.__doc__ = fn.__doc__
    return clone


_IMPLS: Dict[str, KernelImpls] = {"numpy": _NUMPY_IMPLS}
_active_name = "numpy"
_active_impls: KernelImpls = _NUMPY_IMPLS


def set_kernel(name: str) -> str:
    """Select the active kernel implementation; returns the previous name.

    ``"numba"`` without the wheel installed emits a ``RuntimeWarning`` and
    keeps the default kernel — the jit is an accelerator, never a dependency.
    The scalar and runs-axis kernels always switch together.
    """
    global _active_name, _active_impls
    if name not in KERNEL_NAMES:
        raise ValueError(f"unknown kernel {name!r}; known: {KERNEL_NAMES}")
    previous = _active_name
    if name == "numba" and "numba" not in _IMPLS:
        try:
            _IMPLS["numba"] = _make_numba_impls()
        except ImportError:
            warnings.warn(
                "REPRO_KERNEL=numba requested but numba is not installed; "
                "falling back to the pure-numpy kernel", RuntimeWarning,
                stacklevel=2)
            name = "numpy"
    _active_name = name
    _active_impls = _IMPLS[name]
    return previous


def active_kernel() -> str:
    """Name of the active kernel implementation ("numpy" or "numba")."""
    return _active_name


def select_failures(merged: MergedCandidates, end_cycle: int, recompute: int,
                    frontier: int) -> Tuple[List[int], int]:
    """Resolve one Set's failure timeline up to ``end_cycle`` in closed form.

    Returns ``(selected_keys, frontier)`` — selections as packed keys in
    order, the frontier as the resume state for a later span (see module
    docstring).  Dispatches to the active implementation
    (:func:`set_kernel`).
    """
    return _active_impls.select(merged, end_cycle, recompute, frontier)


def select_failures_runs(streams: Sequence[MergedCandidates],
                         end_cycles: Sequence[int],
                         recomputes: Sequence[int],
                         frontiers: Sequence[int]
                         ) -> Tuple[List[List[int]], List[int]]:
    """Runs-axis :func:`select_failures`: one call resolves many timelines.

    ``streams[r]`` is an independent merged candidate stream — one ensemble
    member's view of one Set — selected up to ``end_cycles[r]`` with stall
    window ``recomputes[r]`` from frontier ``frontiers[r]``.  Returns the
    per-run selections and final frontiers, each run bit-identical to a
    per-run :func:`select_failures` call; the numba variant crosses the
    Python boundary once for the whole batch over stacked key arrays.
    Streams must share one key ``shift`` (they do whenever the runs simulate
    one workload, which is what the ensemble engine batches).
    """
    if not streams:
        return [], []
    _uniform_shift(streams)
    return _active_impls.select_runs(streams, end_cycles, recomputes,
                                     frontiers)


def resume_frontiers_runs(streams: Sequence[MergedCandidates],
                          frontiers: Sequence[int]
                          ) -> Tuple[List[int], List[int]]:
    """Runs-axis span-resume peek: each run's next eligible candidate.

    For every stream, returns the first key strictly greater than its
    frontier (:data:`EXHAUSTED_KEY` when none is left) together with its
    index — the bound a span-resume ``bisect`` would have produced.  The
    ensemble engine uses it to re-arm a whole batch of member timelines in
    one call when a group's level-stable span opens.
    """
    if not streams:
        return [], []
    return _active_impls.resume_runs(streams, frontiers)


_env_kernel = os.environ.get("REPRO_KERNEL", "").strip().lower()
if _env_kernel:
    if _env_kernel in KERNEL_NAMES:
        set_kernel(_env_kernel)
    else:
        warnings.warn(
            f"ignoring unknown REPRO_KERNEL={_env_kernel!r}; "
            f"known kernels: {KERNEL_NAMES}", RuntimeWarning)
