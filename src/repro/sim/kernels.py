"""Closed-form failure-timeline kernels for no-level-change group spans.

The batched event engine (:mod:`repro.sim.engine`) walks a group's failure
timeline event by event with per-member ``bisect`` pointers.  For groups whose
V-f level never changes — every ``dvfs`` and ``booster_safe`` group, and
``booster`` groups between two level breaks — that walk is pure overhead: the
whole timeline is a *greedy min-gap selection* over one merged candidate
stream, which this module resolves in closed form.

The selection rule
------------------
Recompute stalls propagate within a failing macro's logical Set and, with a
constant level, never across Sets — so the timeline decomposes per Set.
Within one Set, every member's candidate failure cycles merge into a single
sorted stream of packed keys::

    key = (cycle << shift) | row          # numeric order == (cycle, row) lex

where ``row`` is the member's global activity-matrix row — the reference
loop's within-cycle visit order.  When the candidate ``(f, r)`` fails, the
reference semantics stall the whole Set: rows visited at or before ``r`` from
cycle ``f + 1``, later rows from ``f`` — i.e. for a recompute window of ``R``
cycles, the next eligible candidate is exactly the first one
*lexicographically after* ``(f + R, r)``, which in packed form is the first
key **greater than** ``selected_key + (R << shift)``.  The whole timeline
therefore resolves with at most one binary search per **selected** failure,
never touching the suppressed candidates in between; ``R == 0`` degenerates
to "every candidate fails", a single slice.

A single *frontier key* — "only keys strictly greater are eligible" — is the
kernel's entire carry-over state (``(cycle << shift) - 1`` encodes "every row
at ``cycle``").  It survives level changes unchanged (stall windows are
level-independent), which is how the engine resumes a ``booster`` group's
Sets across level-stable spans.

Implementations
---------------
The default pure-Python selection loop runs ``bisect`` over a plain list of
keys (a scalar list bisect is several times faster than a scalar
``np.searchsorted`` — the same trade the batched engine's event paths make),
and skips even that when the next key already clears the frontier.  The same
algorithm is also written against a plain int64 array
(:func:`_select_failures_impl`) so it compiles unchanged under :mod:`numba`:
``REPRO_KERNEL=numba`` (environment variable, read at import) or
:func:`set_kernel` selects the jitted variant.  Numba is *not* a dependency —
requesting it without the wheel installed warns and falls back to the default
kernel (``REPRO_KERNEL=numpy``).  Both variants are bit-for-bit identical;
the equivalence suite (``tests/test_kernels.py``) runs against whichever is
active.
"""

from __future__ import annotations

import os
import warnings
from bisect import bisect_left, bisect_right
from typing import Callable, Dict, List, NamedTuple, Tuple

import numpy as np

__all__ = [
    "KERNEL_NAMES",
    "MergedCandidates",
    "active_kernel",
    "frontier_key",
    "merge_candidates",
    "select_failures",
    "set_kernel",
]

#: Selectable kernel implementations (``REPRO_KERNEL``).
KERNEL_NAMES = ("numpy", "numba")


class MergedCandidates(NamedTuple):
    """One Set's merged candidate stream of packed ``(cycle, row)`` keys.

    Both representations hold the same sorted keys: the int64 array feeds the
    numba-jitted kernel, the plain list the default scalar-``bisect`` paths.
    ``shift``/``mask`` decode a key back into ``(key >> shift, key & mask)``.
    """

    keys: np.ndarray
    keys_list: List[int]
    shift: int
    mask: int


def frontier_key(cycle: int, row: int, shift: int) -> int:
    """The packed frontier "strictly after ``(cycle, row)``".

    ``row = -1`` means "strictly before every row at ``cycle``" — i.e. all
    of ``cycle``'s candidates are still eligible.
    """
    return (cycle << shift) + row


def merge_candidates(per_row_cycles: List[np.ndarray], row_ids: List[int],
                     shift: int) -> MergedCandidates:
    """Merge per-member candidate arrays into one sorted packed-key stream.

    ``per_row_cycles[k]`` holds the sorted candidate cycles of global row
    ``row_ids[k]``; every row id must fit ``shift`` bits.  Packing makes the
    merge a single flat ``np.sort`` — no argsort, no tuple keys.
    """
    mask = (1 << shift) - 1
    total = sum(len(c) for c in per_row_cycles)
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return MergedCandidates(empty, [], shift, mask)
    keys = np.concatenate(
        [(np.asarray(c, dtype=np.int64) << shift) | rid
         for c, rid in zip(per_row_cycles, row_ids)])
    keys.sort()
    return MergedCandidates(keys, keys.tolist(), shift, mask)


def _select_failures_list(keys: List[int], shift: int, end_cycle: int,
                          recompute: int, frontier: int
                          ) -> Tuple[List[int], int]:
    """Default greedy selection: scalar ``bisect`` over the plain key list.

    Returns the selected keys and the final frontier.  After a selection the
    frontier jumps by ``recompute << shift``; when the very next key already
    clears it (dense streams — and always when ``recompute == 0``) no search
    is needed at all, so the bisect only pays for genuine jumps.
    """
    n = len(keys)
    end_key = end_cycle << shift
    if recompute == 0:
        i = bisect_right(keys, frontier)
        j = bisect_left(keys, end_key, i)
        out = keys[i:j]
        return out, (out[-1] if out else frontier)
    out: List[int] = []
    push = out.append
    jump = recompute << shift
    i = bisect_right(keys, frontier)
    while i < n:
        key = keys[i]
        if key >= end_key:
            break
        push(key)
        frontier = key + jump
        i += 1
        if i < n and keys[i] <= frontier:
            i = bisect_right(keys, frontier, i + 1)
    return out, frontier


def _select_failures_impl(keys: np.ndarray, shift: int, end_cycle: int,
                          recompute: int, frontier: int,
                          out_keys: np.ndarray) -> Tuple[int, int]:
    """The same greedy selection against an int64 array (numba-compilable).

    Writes selections into the preallocated ``out_keys`` (at least
    ``keys.size`` long) and returns ``(count, frontier)``.  Pure scalar/array
    code with no Python containers: compiles unchanged under ``numba.njit``.
    """
    n = keys.shape[0]
    count = 0
    end_key = end_cycle << shift
    jump = recompute << shift
    i = np.searchsorted(keys, frontier, side="right")
    while i < n:
        key = keys[i]
        if key >= end_key:
            break
        out_keys[count] = key
        count += 1
        frontier = key + jump
        i += 1
        if i < n and keys[i] <= frontier:
            i = np.searchsorted(keys[i + 1:], frontier,
                                side="right") + i + 1
    return count, frontier


def _select_failures_numpy(merged: MergedCandidates, end_cycle: int,
                           recompute: int, frontier: int
                           ) -> Tuple[List[int], int]:
    return _select_failures_list(merged.keys_list, merged.shift, end_cycle,
                                 recompute, frontier)


def _make_numba_kernel() -> Callable:
    """Jit-compile the array kernel (raises ImportError without numba)."""
    import numba

    jitted = numba.njit(cache=True)(_select_failures_impl)

    def run(merged: MergedCandidates, end_cycle: int, recompute: int,
            frontier: int) -> Tuple[List[int], int]:
        keys = merged.keys
        out_keys = np.empty(keys.shape[0], dtype=np.int64)
        count, new_frontier = jitted(keys, merged.shift, end_cycle,
                                     recompute, frontier, out_keys)
        return out_keys[:count].tolist(), int(new_frontier)

    return run


_IMPLS: Dict[str, Callable] = {"numpy": _select_failures_numpy}
_active_name = "numpy"
_active_impl: Callable = _select_failures_numpy


def set_kernel(name: str) -> str:
    """Select the active kernel implementation; returns the previous name.

    ``"numba"`` without the wheel installed emits a ``RuntimeWarning`` and
    keeps the default kernel — the jit is an accelerator, never a dependency.
    """
    global _active_name, _active_impl
    if name not in KERNEL_NAMES:
        raise ValueError(f"unknown kernel {name!r}; known: {KERNEL_NAMES}")
    previous = _active_name
    if name == "numba" and "numba" not in _IMPLS:
        try:
            _IMPLS["numba"] = _make_numba_kernel()
        except ImportError:
            warnings.warn(
                "REPRO_KERNEL=numba requested but numba is not installed; "
                "falling back to the pure-numpy kernel", RuntimeWarning,
                stacklevel=2)
            name = "numpy"
    _active_name = name
    _active_impl = _IMPLS[name]
    return previous


def active_kernel() -> str:
    """Name of the active kernel implementation ("numpy" or "numba")."""
    return _active_name


def select_failures(merged: MergedCandidates, end_cycle: int, recompute: int,
                    frontier: int) -> Tuple[List[int], int]:
    """Resolve one Set's failure timeline up to ``end_cycle`` in closed form.

    Returns ``(selected_keys, frontier)`` — selections as packed keys in
    order, the frontier as the resume state for a later span (see module
    docstring).  Dispatches to the active implementation
    (:func:`set_kernel`).
    """
    return _active_impl(merged, end_cycle, recompute, frontier)


_env_kernel = os.environ.get("REPRO_KERNEL", "").strip().lower()
if _env_kernel:
    if _env_kernel in KERNEL_NAMES:
        set_kernel(_env_kernel)
    else:
        warnings.warn(
            f"ignoring unknown REPRO_KERNEL={_env_kernel!r}; "
            f"known kernels: {KERNEL_NAMES}", RuntimeWarning)
