"""Process-level, byte-budgeted cache for per-(group, level) simulation physics.

Sweeps simulate the same ``(workload, seed, stress settings)`` many times —
once per beta, per controller, per mode — and every one of those runs derives
*identical* per-(group, level) arrays from Eq. 2: the drop rows over the
horizon and the candidate-failure cycle sets (see
:class:`repro.sim.engine._LevelCache`).  Only the *event dynamics* differ
between such runs.  This module holds those arrays in a process-level LRU
keyed on everything the physics actually depends on, so a Fig.-18 beta grid
(or a multi-controller point) computes each group's physics once per process
instead of once per run.  The pattern mirrors the ``flip_factor_matrix`` memo
in :mod:`repro.workloads.generator`: entries are immutable, eviction is
byte-budgeted, and correctness never depends on a hit.

Key derivation
--------------
An entry key is ``(share_key, group_id, pair.level, pair.voltage,
pair.frequency)`` where ``share_key`` covers the workload identity, the
IR-model calibration and every :class:`~repro.sim.runtime.RuntimeConfig` field
that shapes the activity matrix or the monitor noise (cycles, flip statistics,
monitor noise, seed, input-determined HR).  The workload identity is, in
preference order:

* ``compiled.cache_key`` — set by :mod:`repro.sweep.builders` to the
  :func:`~repro.sweep.spec.workload_fingerprint` of the producing
  :class:`~repro.sweep.spec.WorkloadSpec`.  Builders are deterministic, so two
  compiled instances of the same spec (e.g. in a long-lived sweep worker)
  share entries;
* a per-object token attached on first sight — object identity without the
  ``id()`` reuse hazard, so ad-hoc compiled workloads (benchmark ``lru_cache``
  images, test fixtures) still share across repeated runs of the same object.

Notably *absent* from the key: ``beta``, ``recompute_cycles``, the controller
and the mode.  They steer which levels are visited and when, not what a
level's physics looks like — that independence is what makes the cross-run
reuse large.  (The mode does pick the V-f pair, but the pair's
``(level, voltage, frequency)`` is part of the key, so distinct modes simply
key distinct entries.)
"""

from __future__ import annotations

from collections import OrderedDict
from itertools import count
from typing import Dict, Hashable, Optional, Tuple

__all__ = [
    "ByteBudgetCache",
    "LEVEL_CACHE",
    "clear_level_cache",
    "level_cache_stats",
    "set_level_cache_budget",
    "workload_cache_key",
]


class ByteBudgetCache:
    """An LRU mapping with a byte budget and hit/miss counters.

    Values are opaque; the caller supplies each entry's size estimate.  A
    ``budget_bytes`` of 0 disables storage entirely (every ``get`` misses),
    which the benchmarks use to measure cold-path behaviour.  Single-threaded
    by design — the simulation engines run one per process.
    """

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be non-negative")
        self.budget_bytes = budget_bytes
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._sizes: Dict[Hashable, int] = {}
        self._bytes = 0
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[object]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, value: object, nbytes: int) -> None:
        if nbytes > self.budget_bytes:
            return                         # oversized entry (or cache disabled)
        if key in self._entries:
            self._bytes -= self._sizes[key]
        self._entries[key] = value
        self._entries.move_to_end(key)
        self._sizes[key] = nbytes
        self._bytes += nbytes
        while self._bytes > self.budget_bytes and self._entries:
            evicted_key, _ = self._entries.popitem(last=False)
            self._bytes -= self._sizes.pop(evicted_key)

    def set_budget(self, budget_bytes: int) -> int:
        """Change the byte budget, evicting down to it; returns the old one."""
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be non-negative")
        old = self.budget_bytes
        self.budget_bytes = budget_bytes
        while self._bytes > budget_bytes and self._entries:
            evicted_key, _ = self._entries.popitem(last=False)
            self._bytes -= self._sizes.pop(evicted_key)
        return old

    def clear(self) -> None:
        self._entries.clear()
        self._sizes.clear()
        self._bytes = 0
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "bytes": self._bytes,
            "budget_bytes": self.budget_bytes,
        }


#: Default budget: comfortably holds the level caches of dozens of
#: reference-chip runs while bounding long multi-workload sweeps.
_DEFAULT_BUDGET_BYTES = 256 * 1024 * 1024

#: The process-level cache instance shared by every simulation engine run.
LEVEL_CACHE = ByteBudgetCache(_DEFAULT_BUDGET_BYTES)


def clear_level_cache() -> None:
    """Drop all shared level-cache entries and reset the counters."""
    LEVEL_CACHE.clear()


def level_cache_stats() -> Dict[str, int]:
    """Hit/miss/occupancy counters of the process-level cache."""
    return LEVEL_CACHE.stats()


def set_level_cache_budget(budget_bytes: int) -> int:
    """Set the cache byte budget (0 disables storage); returns the old budget.

    Shrinking the budget evicts immediately.  The benchmarks use
    ``set_level_cache_budget(0)`` to time the cache-disabled path and restore
    the previous budget afterwards.
    """
    return LEVEL_CACHE.set_budget(budget_bytes)


_TOKENS = count()


def workload_cache_key(compiled) -> Tuple[str, object]:
    """A stable, hashable identity for a compiled workload's physics.

    Prefers the builder-attached ``cache_key`` (a deterministic fingerprint of
    the producing :class:`~repro.sweep.spec.WorkloadSpec`); otherwise tags the
    object with a fresh token on first sight so repeated runs of the *same*
    compiled object share entries without the ``id()``-reuse hazard.  Objects
    that cannot be tagged are never shared.
    """
    key = getattr(compiled, "cache_key", None)
    if key is not None:
        return ("spec", key)
    token = getattr(compiled, "_level_cache_token", None)
    if token is None:
        token = next(_TOKENS)
        try:
            compiled._level_cache_token = token
        except AttributeError:             # unsettable object: never share
            return ("unshared", object())
    return ("token", token)
