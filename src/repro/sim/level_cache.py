"""Process-level, byte-budgeted cache for per-(group, level) simulation physics.

Sweeps simulate the same ``(workload, seed, stress settings)`` many times —
once per beta, per controller, per mode — and every one of those runs derives
*identical* per-(group, level) arrays from Eq. 2: the drop rows over the
horizon and the candidate-failure cycle sets (see
:class:`repro.sim.engine._LevelCache`).  Only the *event dynamics* differ
between such runs.  This module holds those arrays in a process-level LRU
keyed on everything the physics actually depends on, so a Fig.-18 beta grid
(or a multi-controller point) computes each group's physics once per process
instead of once per run.  The pattern mirrors the ``flip_factor_matrix`` memo
in :mod:`repro.workloads.generator`: entries are immutable, eviction is
byte-budgeted, and correctness never depends on a hit.

Key derivation
--------------
An entry key is ``(share_key, group_id, pair.level, pair.voltage,
pair.frequency)`` where ``share_key`` covers the workload identity, the
IR-model calibration and every :class:`~repro.sim.runtime.RuntimeConfig` field
that shapes the activity matrix or the monitor noise (cycles, flip statistics,
monitor noise, seed, input-determined HR).  The workload identity is, in
preference order:

* ``compiled.cache_key`` — set by :mod:`repro.sweep.builders` to the
  :func:`~repro.sweep.spec.workload_fingerprint` of the producing
  :class:`~repro.sweep.spec.WorkloadSpec`.  Builders are deterministic, so two
  compiled instances of the same spec (e.g. in a long-lived sweep worker)
  share entries;
* a per-object token attached on first sight — object identity without the
  ``id()`` reuse hazard, so ad-hoc compiled workloads (benchmark ``lru_cache``
  images, test fixtures) still share across repeated runs of the same object.

Notably *absent* from the key: ``beta``, ``recompute_cycles``, the controller
and the mode.  They steer which levels are visited and when, not what a
level's physics looks like — that independence is what makes the cross-run
reuse large.  (The mode does pick the V-f pair, but the pair's
``(level, voltage, frequency)`` is part of the key, so distinct modes simply
key distinct entries.)
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from itertools import count
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..power.vf_table import VFPair

__all__ = [
    "ByteBudgetCache",
    "LEVEL_CACHE",
    "LevelEntry",
    "attach_shared_store",
    "clear_level_cache",
    "content_fingerprint",
    "detach_shared_store",
    "level_cache_stats",
    "set_level_cache_budget",
    "workload_cache_key",
]


@dataclass
class LevelEntry:
    """Precomputed per-(group, level) physics over the full horizon.

    Entries are immutable once built (``drop_rows`` is marked read-only) and
    shared across runs through :data:`LEVEL_CACHE` — and, when a shared store
    is attached, across *processes* as read-only ``np.memmap`` views (see
    :mod:`repro.sim.shared_store`).  Both derived representations are built
    lazily per process, so each event path only pays for what it consumes:
    ``merged`` holds the per-Set packed-key candidate streams the timeline
    kernels walk (:mod:`repro.sim.kernels`), :attr:`fail_lists` the
    per-member plain-list mirror the heap scheduler and the pre-kernel
    batched loop ``bisect`` over.
    """

    pair: VFPair
    drop_rows: np.ndarray           #: (members, cycles) Eq.-2 drop at this pair
    #: per member, sorted candidate cycle indices — or ``None`` for a
    #: *physics-only* entry (drop matrix and its derived statistics, no
    #: candidate pipeline).  The ensemble engine materializes levels whose
    #: candidates were consumed through windowed streams from such entries;
    #: ``_VectorizedEngine._cache`` upgrades one in place on the first run
    #: that needs the candidate streams.
    fail_cycles: Optional[List[np.ndarray]]
    #: lazily-built per-Set merged candidate streams (kernel hot path); keyed
    #: implicitly by the owning group's Set partition, which is a pure
    #: function of the workload the entry is already keyed on.
    merged: Optional[List] = field(default=None, compare=False)
    _fail_lists: Optional[List[List[int]]] = field(default=None, compare=False)
    _drop_prefix: Optional[np.ndarray] = field(default=None, compare=False)
    _drop_row_stats: Optional[tuple] = field(default=None, compare=False)
    _drop_row_order: Optional[np.ndarray] = field(default=None, compare=False)

    @property
    def fail_lists(self) -> List[List[int]]:
        """Per member, the candidate cycles as plain Python lists (a scalar
        list ``bisect`` beats a scalar ``searchsorted`` several-fold in the
        event hot paths).  Converted on first use and memoized."""
        lists = self._fail_lists
        if lists is None:
            if self.fail_cycles is None:
                raise ValueError(
                    "physics-only LevelEntry has no candidate cycles")
            lists = [cycles.tolist() for cycles in self.fail_cycles]
            self._fail_lists = lists
        return lists

    @property
    def drop_prefix(self) -> np.ndarray:
        """``(members, cycles + 1)`` prefix sums of :attr:`drop_rows`.

        The scalar fast path turns any span's per-row drop *sum* into two
        gathers (``prefix[:, end] - prefix[:, start]``), so trace-free runs
        never touch the full drop matrix.  Built lazily per process and
        memoized on the (shared) entry.
        """
        prefix = self._drop_prefix
        if prefix is None:
            rows = self.drop_rows
            prefix = np.zeros((rows.shape[0], rows.shape[1] + 1))
            np.cumsum(rows, axis=1, out=prefix[:, 1:])
            prefix.setflags(write=False)
            self._drop_prefix = prefix
        return prefix

    @property
    def drop_row_stats(self) -> tuple:
        """``(per-row max, per-row argmax)`` of :attr:`drop_rows`.

        The scalar fast path resolves a run's worst drop per row from these:
        when the level's visited spans cover the argmax cycle the max is
        exact as-is, otherwise a restricted masked max is taken.  Built
        lazily per process and memoized on the (shared) entry.
        """
        stats = self._drop_row_stats
        if stats is None:
            rows = self.drop_rows
            if rows.size:
                argmax = rows.argmax(axis=1)
                peak = rows[np.arange(rows.shape[0]), argmax]
            else:
                argmax = np.zeros(rows.shape[0], dtype=np.int64)
                peak = np.zeros(rows.shape[0])
            stats = (peak, argmax)
            self._drop_row_stats = stats
        return stats

    @property
    def drop_row_order(self) -> np.ndarray:
        """Per-row cycle indices sorted by *descending* drop (``int32``).

        The scalar fast path finds a run's restricted worst drop by walking
        this order until a cycle inside the visited spans appears — a few
        gathers instead of a masked scan.  Built lazily per process and
        memoized on the (shared) entry.
        """
        order = self._drop_row_order
        if order is None:
            order = np.ascontiguousarray(
                np.argsort(self.drop_rows, axis=1)[:, ::-1]).astype(np.int32)
            order.setflags(write=False)
            self._drop_row_order = order
        return order

    def nbytes_estimate(self) -> int:
        """Byte-budget charge for this entry, wherever it was built.

        Drop bytes count 3x (the rows plus the lazily-built
        :attr:`drop_prefix` and :attr:`drop_row_order`) and candidate bytes
        7x: the arrays themselves (1x) plus the lazily-built derived forms —
        the merged key stream with its boxed list mirror and the plain
        ``fail_lists`` — a deliberate overestimate so derived data stays
        inside the budget.  The engine and the shared store both charge
        through this one estimator so locally-built and backend-loaded
        entries weigh the same under LRU eviction.
        """
        cand_bytes = sum(cycles.nbytes for cycles in self.fail_cycles) \
            if self.fail_cycles is not None else 0
        return int(3 * self.drop_rows.nbytes + 7 * cand_bytes + 512)


class ByteBudgetCache:
    """An LRU mapping with a byte budget, hit/miss counters and an optional
    storage backend.

    Values are opaque; the caller supplies each entry's size estimate.  A
    ``budget_bytes`` of 0 disables in-memory storage entirely (every ``get``
    misses), which the benchmarks use to measure cold-path behaviour.
    Single-threaded by design — the simulation engines run one per process.

    A *backend* (duck-typed: ``load(key) -> Optional[(value, nbytes)]``,
    ``store(key, value, nbytes) -> bool``) extends the cache beyond the
    process: on an in-memory miss the backend is consulted (a hit is counted
    in ``backend_hits`` and promoted into memory), and every ``put`` is
    offered to the backend as well.  :mod:`repro.sim.shared_store` provides
    the on-disk ``np.memmap`` backend that lets a pool-executor fleet share
    one physics store across workers.
    """

    def __init__(self, budget_bytes: int, backend: Optional[object] = None) -> None:
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be non-negative")
        self.budget_bytes = budget_bytes
        self.backend = backend
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._sizes: Dict[Hashable, int] = {}
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.backend_hits = 0
        self.rejected = 0
        self.backend_errors = 0

    def get(self, key: Hashable) -> Optional[object]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry
        # ``budget_bytes == 0`` means "cache disabled" — the cold-path
        # measurement mode — so an attached backend must not quietly serve
        # warm entries either.
        if self.backend is not None and self.budget_bytes > 0:
            # A raising backend degrades to a miss (the engine recomputes);
            # ``SharedPhysicsStore`` already swallows its own I/O failures,
            # so this guards third-party duck-typed backends.
            try:
                loaded = self.backend.load(key)
            except Exception:
                self.backend_errors += 1
                loaded = None
            if loaded is not None:
                value, nbytes = loaded
                self.backend_hits += 1
                # Promotion is best-effort: an oversized backend entry is
                # still served, it just stays disk-only (not a rejected put).
                self._insert(key, value, nbytes, count_rejection=False)
                return value
        self.misses += 1
        return None

    def peek(self, key: Hashable) -> Optional[object]:
        """In-memory lookup with no side effects.

        Does not touch the hit/miss counters, the LRU order or the backend —
        the ensemble engine's batch prebuild uses this to decide which
        members still need physics derived without perturbing stats or
        paying a backend round-trip per probe.
        """
        return self._entries.get(key)

    def _insert(self, key: Hashable, value: object, nbytes: int,
                count_rejection: bool = True) -> None:
        if nbytes > self.budget_bytes:
            # Oversized put (or in-memory storage disabled): surfaced via
            # ``rejected`` so a misconfigured budget shows up in stats()
            # instead of reading as a mysterious 0-hit cache.
            if count_rejection:
                self.rejected += 1
            return
        if key in self._entries:
            self._bytes -= self._sizes[key]
        self._entries[key] = value
        self._entries.move_to_end(key)
        self._sizes[key] = nbytes
        self._bytes += nbytes
        while self._bytes > self.budget_bytes and self._entries:
            evicted_key, _ = self._entries.popitem(last=False)
            self._bytes -= self._sizes.pop(evicted_key)

    def put(self, key: Hashable, value: object, nbytes: int) -> None:
        self._insert(key, value, nbytes)
        if self.backend is not None and self.budget_bytes > 0:
            try:
                self.backend.store(key, value, nbytes)
            except Exception:               # see get(): degrade, don't crash
                self.backend_errors += 1

    def set_budget(self, budget_bytes: int) -> int:
        """Change the byte budget, evicting down to it; returns the old one."""
        if budget_bytes < 0:
            raise ValueError("budget_bytes must be non-negative")
        old = self.budget_bytes
        self.budget_bytes = budget_bytes
        while self._bytes > budget_bytes and self._entries:
            evicted_key, _ = self._entries.popitem(last=False)
            self._bytes -= self._sizes.pop(evicted_key)
        return old

    def clear(self) -> None:
        self._entries.clear()
        self._sizes.clear()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.backend_hits = 0
        self.rejected = 0
        self.backend_errors = 0

    def stats(self) -> Dict[str, int]:
        stats = {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "bytes": self._bytes,
            "budget_bytes": self.budget_bytes,
            "rejected": self.rejected,
            "backend_hits": self.backend_hits,
            "backend_errors": self.backend_errors,
        }
        if self.backend is not None:
            stats["backend"] = self.backend.stats()
        return stats


#: Default budget: comfortably holds the level caches of dozens of
#: reference-chip runs while bounding long multi-workload sweeps.  Raised
#: from 256 MB when the entries grew their lazily-derived forms (drop
#: prefix sums, row stats and order for the scalar fast path) — the honest
#: per-entry estimate roughly doubled, and a budget sized for the old
#: estimate would thrash on failure-dense level sets.
_DEFAULT_BUDGET_BYTES = 512 * 1024 * 1024

#: The process-level cache instance shared by every simulation engine run.
LEVEL_CACHE = ByteBudgetCache(_DEFAULT_BUDGET_BYTES)


def clear_level_cache() -> None:
    """Drop all shared level-cache entries and reset the counters."""
    LEVEL_CACHE.clear()


def level_cache_stats() -> Dict[str, int]:
    """Hit/miss/occupancy counters of the process-level cache."""
    return LEVEL_CACHE.stats()


def set_level_cache_budget(budget_bytes: int) -> int:
    """Set the cache byte budget (0 disables storage); returns the old budget.

    Shrinking the budget evicts immediately.  The benchmarks use
    ``set_level_cache_budget(0)`` to time the cache-disabled path and restore
    the previous budget afterwards; a zero budget also bypasses any attached
    shared-store backend, so "disabled" genuinely means cold.
    """
    return LEVEL_CACHE.set_budget(budget_bytes)


def attach_shared_store(directory: str, record_events: bool = True):
    """Attach an on-disk shared physics store as the cache's backend.

    ``directory`` is created if missing.  Returns the attached
    :class:`~repro.sim.shared_store.SharedPhysicsStore`.  Pool-executor
    workers call this in their initializer
    (``PoolExecutor(shared_cache_dir=...)``) so a whole fleet shares one
    cross-process copy of the per-(group, level) physics; arrays loaded from
    the store are read-only ``np.memmap`` views.  ``record_events=False``
    skips the store's reuse audit log.
    """
    from .shared_store import SharedPhysicsStore
    store = SharedPhysicsStore(directory, record_events=record_events)
    LEVEL_CACHE.backend = store
    return store


def detach_shared_store() -> None:
    """Detach the shared store (in-memory entries stay valid)."""
    LEVEL_CACHE.backend = None


_TOKENS = count()


def content_fingerprint(compiled) -> str:
    """Deterministic digest of everything a chip image's physics depends on.

    Covers the chip geometry and operating point, the task-to-macro
    assignment and, per task, the loaded weight codes plus every field the
    activity and candidate-failure physics read (set partition, bits, WDS
    shift, input-determinedness, post-WDS HR, MACs per wave) — so two
    *independently built* images with identical content (e.g. a benchmark's
    ``lru_cache`` QAT compile rebuilt in another process) hash alike and can
    share cached physics, including through the cross-process
    :class:`~repro.sim.shared_store.SharedPhysicsStore`.  Content that only
    matters after simulation (e.g. the raw chip object) is excluded.
    """
    chip = compiled.chip_config
    digest = hashlib.sha256()
    digest.update(repr((
        compiled.profile_name, chip.groups, chip.group.macros,
        chip.macro.banks, chip.macro.rows, chip.macro.bank.weight_bits,
        chip.nominal_voltage, chip.nominal_frequency,
        chip.signoff_ir_drop)).encode())
    for task_id, macro_index in sorted(compiled.mapping.assignment.items()):
        task = compiled.tasks[task_id]
        digest.update(repr((
            task_id, macro_index, task.set_id, task.bits, task.wds_delta,
            bool(task.input_determined), float(task.hamming_rate),
            float(task.macs_per_wave), task.codes.shape)).encode())
        digest.update(np.ascontiguousarray(task.codes).tobytes())
    return digest.hexdigest()


def workload_cache_key(compiled) -> Tuple[str, object]:
    """A stable, hashable identity for a compiled workload's physics.

    Prefers the builder-attached ``cache_key`` (a deterministic fingerprint
    of the producing :class:`~repro.sweep.spec.WorkloadSpec`); otherwise
    derives a :func:`content_fingerprint` on first sight and memoizes it on
    the object — a content-derived identity that the cross-process shared
    store accepts, so ad-hoc compiled QAT images (benchmark ``lru_cache``
    compiles, test fixtures) share physics across processes too.  Objects
    whose content cannot be digested fall back to a process-local token
    (shared within the process, refused by the store).
    """
    key = getattr(compiled, "cache_key", None)
    if key is not None:
        return ("spec", key)
    fingerprint = getattr(compiled, "_content_fingerprint", None)
    if fingerprint is not None:
        return ("content", fingerprint)
    try:
        fingerprint = content_fingerprint(compiled)
    except (AttributeError, TypeError):    # undigestible content
        token = getattr(compiled, "_level_cache_token", None)
        if token is None:
            token = next(_TOKENS)
            try:
                compiled._level_cache_token = token
            except AttributeError:         # unsettable object: never share
                return ("unshared", object())
        return ("token", token)
    try:
        compiled._content_fingerprint = fingerprint
    except AttributeError:
        pass            # unsettable: still shareable, re-derived per call
    return ("content", fingerprint)
