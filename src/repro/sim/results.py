"""Result containers produced by the cycle-level simulation.

These are plain dataclasses so that benchmarks, tests and EXPERIMENTS.md can
consume them without knowing anything about the runtime internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..power.energy import EnergyBreakdown

__all__ = ["MacroResult", "GroupResult", "SimulationResult", "assemble_result",
           "assemble_scalar_result"]


@dataclass
class MacroResult:
    """Per-macro statistics for one simulation run.

    Under the trace-free fast path (``RuntimeConfig.traces == "none"``) the
    per-cycle traces are ``None`` and the scalar statistics below are
    populated instead; the trace-backed properties transparently fall back to
    them, so record-level consumers never notice the difference.
    """

    macro_index: int
    group_id: int
    task_id: Optional[int]
    hamming_rate: float
    rtog_trace: Optional[np.ndarray]   #: per-cycle realized Rtog (or None)
    drop_trace: Optional[np.ndarray]   #: per-cycle IR-drop in volts (or None)
    energy: EnergyBreakdown
    failures: int = 0
    stall_cycles: int = 0
    #: scalar statistics of the trace-free fast path (None in full mode).
    rtog_peak: Optional[float] = None
    rtog_mean: Optional[float] = None
    drop_peak: Optional[float] = None
    drop_mean: Optional[float] = None

    @property
    def peak_rtog(self) -> float:
        if self.rtog_trace is None:
            return float(self.rtog_peak or 0.0)
        return float(self.rtog_trace.max()) if self.rtog_trace.size else 0.0

    @property
    def mean_rtog(self) -> float:
        if self.rtog_trace is None:
            return float(self.rtog_mean or 0.0)
        return float(self.rtog_trace.mean()) if self.rtog_trace.size else 0.0

    @property
    def worst_drop(self) -> float:
        if self.drop_trace is None:
            return float(self.drop_peak or 0.0)
        return float(self.drop_trace.max()) if self.drop_trace.size else 0.0

    @property
    def mean_drop(self) -> float:
        if self.drop_trace is None:
            return float(self.drop_mean or 0.0)
        return float(self.drop_trace.mean()) if self.drop_trace.size else 0.0

    @property
    def average_power_mw(self) -> float:
        return self.energy.average_power_mw


@dataclass
class GroupResult:
    """Per-group statistics: levels visited, failures, final state.

    ``level_trace`` is ``None`` under the trace-free fast path; the scalar
    ``level_mean`` carries the same information for :attr:`mean_level`.
    """

    group_id: int
    safe_level: int
    final_level: int
    level_trace: Optional[np.ndarray]
    failures: int
    level_mean: Optional[float] = None

    @property
    def mean_level(self) -> float:
        if self.level_trace is None:
            return float(self.level_mean) if self.level_mean is not None \
                else float(self.final_level)
        return float(self.level_trace.mean()) if self.level_trace.size \
            else float(self.final_level)


@dataclass
class SimulationResult:
    """Everything a benchmark needs from one simulation run."""

    controller: str                     #: "dvfs", "booster" or "booster_safe"
    mode: str                           #: "sprint" or "low_power"
    cycles: int
    macro_results: List[MacroResult] = field(default_factory=list)
    group_results: List[GroupResult] = field(default_factory=list)
    #: per-cycle worst macro drop; None under the trace-free fast path.
    chip_drop_trace: Optional[np.ndarray] = \
        field(default_factory=lambda: np.zeros(0))

    # ------------------------------------------------------------------ #
    # chip-level aggregates
    # ------------------------------------------------------------------ #
    @property
    def worst_ir_drop(self) -> float:
        """Worst macro IR-drop seen anywhere during the run (volts)."""
        drops = [m.worst_drop for m in self.macro_results
                 if m.drop_trace is None or m.drop_trace.size]
        return float(max(drops)) if drops else 0.0

    @property
    def mean_ir_drop(self) -> float:
        drops = [m.mean_drop for m in self.macro_results
                 if m.drop_trace is None or m.drop_trace.size]
        return float(np.mean(drops)) if drops else 0.0

    @property
    def average_macro_power_mw(self) -> float:
        """Mean per-macro power in mW over macros that carried work."""
        powers = [m.average_power_mw for m in self.macro_results if m.task_id is not None]
        return float(np.mean(powers)) if powers else 0.0

    @property
    def effective_tops(self) -> float:
        """Chip throughput after stalls/recomputes (sum of macro throughputs)."""
        return float(sum(m.energy.effective_tops for m in self.macro_results))

    @property
    def total_failures(self) -> int:
        return int(sum(m.failures for m in self.macro_results))

    @property
    def total_stall_cycles(self) -> int:
        return int(sum(m.stall_cycles for m in self.macro_results))

    @property
    def total_energy(self) -> float:
        return float(sum(m.energy.total_energy for m in self.macro_results))

    @property
    def energy_efficiency_tops_per_watt(self) -> float:
        total_power = sum(m.energy.average_power for m in self.macro_results
                          if m.task_id is not None)
        if total_power <= 0:
            return 0.0
        return self.effective_tops / total_power

    def mitigation_vs(self, baseline: "SimulationResult") -> float:
        """Fractional IR-drop mitigation relative to a baseline run."""
        if baseline.worst_ir_drop <= 0:
            return 0.0
        return (baseline.worst_ir_drop - self.worst_ir_drop) / baseline.worst_ir_drop

    def speedup_vs(self, baseline: "SimulationResult") -> float:
        if baseline.effective_tops <= 0:
            return 0.0
        return self.effective_tops / baseline.effective_tops

    def efficiency_gain_vs(self, baseline: "SimulationResult") -> float:
        """Energy-efficiency improvement factor (per-macro mW, lower is better)."""
        if self.average_macro_power_mw <= 0:
            return 0.0
        return baseline.average_macro_power_mw / self.average_macro_power_mw


def assemble_result(compiled, config, energy: Dict[int, EnergyBreakdown],
                    drop_traces: Dict[int, np.ndarray],
                    activity: Dict[int, np.ndarray],
                    failures: Dict[int, int], stall_total: Dict[int, int],
                    level_traces: Dict[int, np.ndarray],
                    chip_drop_trace: np.ndarray, controller,
                    group_members: Optional[Dict[int, List[int]]] = None
                    ) -> "SimulationResult":
    """Build a :class:`SimulationResult` from per-macro/per-group accumulators.

    Shared by both simulation engines; accepts plain lists or preallocated
    arrays for the traces (``np.asarray`` makes array inputs zero-copy).
    ``group_members`` maps group id to its loaded macro indices and is used to
    tally per-group failures for the DVFS baseline without scanning the whole
    chip; when omitted it is reconstructed from the loaded macros.
    """
    chip_cfg = compiled.chip_config
    macro_results: List[MacroResult] = []
    macro_task = {m: t for t, m in compiled.mapping.assignment.items()}
    for macro_index in sorted(energy):
        gid, _ = chip_cfg.macro_location(macro_index)
        task_id = macro_task.get(macro_index)
        hr = compiled.tasks[task_id].hamming_rate if task_id is not None else 0.0
        macro_results.append(MacroResult(
            macro_index=macro_index, group_id=gid, task_id=task_id, hamming_rate=hr,
            rtog_trace=np.asarray(activity[macro_index]),
            drop_trace=np.asarray(drop_traces[macro_index]),
            energy=energy[macro_index], failures=failures[macro_index],
            stall_cycles=stall_total[macro_index]))

    if group_members is None:
        group_members = {}
        for macro_index in sorted(energy):
            gid, _ = chip_cfg.macro_location(macro_index)
            group_members.setdefault(gid, []).append(macro_index)

    group_results: List[GroupResult] = []
    for gid, levels in level_traces.items():
        if controller is not None:
            state = controller.state(gid)
            safe = state.safe_level
            final = state.level
            group_fail = state.failures
        else:
            safe = 100
            final = 100
            group_fail = sum(failures[m] for m in group_members.get(gid, ()))
        group_results.append(GroupResult(
            group_id=gid, safe_level=safe, final_level=final,
            level_trace=np.asarray(levels), failures=group_fail))

    return SimulationResult(
        controller=config.controller, mode=config.mode,
        cycles=config.cycles, macro_results=macro_results,
        group_results=group_results,
        chip_drop_trace=np.asarray(chip_drop_trace))


def assemble_scalar_result(compiled, config, energy: Dict[int, EnergyBreakdown],
                           drop_mean: Dict[int, float],
                           drop_peak: Dict[int, float],
                           rtog_mean: Dict[int, float],
                           rtog_peak: Dict[int, float],
                           failures: Dict[int, int],
                           stall_total: Dict[int, int],
                           group_level_means: Dict[int, float], controller,
                           group_members: Dict[int, List[int]]
                           ) -> "SimulationResult":
    """Build a trace-free :class:`SimulationResult` from scalar accumulators.

    The fast-path counterpart of :func:`assemble_result`
    (``RuntimeConfig.traces == "none"``): per-macro and per-group statistics
    arrive as scalars, every trace field is ``None``, and the trace-backed
    properties fall back to the scalars — so anything consuming only scalar
    records (:class:`repro.sweep.records.RunRecord` metrics, the chip-level
    aggregate properties) sees results equivalent to the full-trace path
    (discrete fields bit-identical, float reductions to 1e-9 rtol).
    """
    chip_cfg = compiled.chip_config
    macro_task = {m: t for t, m in compiled.mapping.assignment.items()}
    macro_results: List[MacroResult] = []
    for macro_index in sorted(energy):
        gid, _ = chip_cfg.macro_location(macro_index)
        task_id = macro_task.get(macro_index)
        hr = compiled.tasks[task_id].hamming_rate if task_id is not None else 0.0
        macro_results.append(MacroResult(
            macro_index=macro_index, group_id=gid, task_id=task_id,
            hamming_rate=hr, rtog_trace=None, drop_trace=None,
            energy=energy[macro_index], failures=failures[macro_index],
            stall_cycles=stall_total[macro_index],
            rtog_peak=float(rtog_peak[macro_index]),
            rtog_mean=float(rtog_mean[macro_index]),
            drop_peak=float(drop_peak[macro_index]),
            drop_mean=float(drop_mean[macro_index])))

    group_results: List[GroupResult] = []
    for gid in group_level_means:            # engine group order, as in
        if controller is not None:           # assemble_result's level_traces
            state = controller.state(gid)
            safe = state.safe_level
            final = state.level
            group_fail = state.failures
        else:
            safe = 100
            final = 100
            group_fail = sum(failures[m] for m in group_members.get(gid, ()))
        group_results.append(GroupResult(
            group_id=gid, safe_level=safe, final_level=final,
            level_trace=None, failures=group_fail,
            level_mean=float(group_level_means[gid])))

    return SimulationResult(
        controller=config.controller, mode=config.mode, cycles=config.cycles,
        macro_results=macro_results, group_results=group_results,
        chip_drop_trace=None)
