"""Cycle-level runtime: executes a compiled workload under a power controller.

This is the reproduction of the paper's inference phase (Sec. 5.2.2, 5.5.2):

* every loaded macro produces a per-cycle realized Rtog — its (post-WDS) weight
  HR modulated by a temporally correlated input flip factor (input-determined
  operators use an unknown-in-advance ~50 % HR);
* each macro group runs at the V-f pair chosen by the active controller:
  the DVFS baseline (always the 100 % signoff level), IR-Booster restricted to
  its software safe level, or the full IR-Booster with Algorithm-2 aggressive
  adjustment driven by the IR monitors;
* a macro whose IR-drop exceeds the drop its current level was signed off for
  raises IRFailure: the Booster Controller drops the group back to its safe
  level and the macro — plus every other macro of the same logical Set — stalls
  for a recompute window (Fig. 11);
* per-cycle energy, useful MACs and IR-drop are accumulated into
  :class:`~repro.sim.results.SimulationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.ir_booster import BoosterMode, IRBoosterController
from ..power.energy import EnergyBreakdown, EnergyModel
from ..power.ir_drop import IRDropModel
from ..power.monitor import IRMonitor
from ..power.vf_table import VFPair, VFTable
from ..workloads.generator import flip_factor_matrix
from .compiler import CompiledWorkload
from .engine import ENGINES, run_vectorized
from .results import SimulationResult, assemble_result

__all__ = ["RuntimeConfig", "PIMRuntime", "simulate", "simulate_ensemble",
           "CONTROLLERS", "ENGINES", "TRACE_MODES"]

#: Available power-control strategies.
CONTROLLERS = ("dvfs", "booster_safe", "booster")

#: Result materialization modes (``RuntimeConfig.traces``).
TRACE_MODES = ("full", "none")


@dataclass
class RuntimeConfig:
    """Parameters of one simulation run.

    All randomness (activity streams, monitor sensing noise) derives from
    ``seed`` alone, so two runs with equal configs are bit-identical — on
    either engine, in any process.  The sweep runner
    (:mod:`repro.sweep`) builds these from declarative grid points.

    Units: one *cycle* is one macro wave slot at the group's current
    frequency; voltages are volts, frequencies GHz, IR-drops volts.
    """

    #: simulation horizon in cycles (every loaded macro sees all of them).
    cycles: int = 2000
    #: power-control strategy, one of :data:`CONTROLLERS`: ``"dvfs"`` (always
    #: the 100 % signoff level), ``"booster_safe"`` (IR-Booster pinned to the
    #: software safe level) or ``"booster"`` (full Algorithm-2 adjustment).
    controller: str = "booster"
    #: V-f pair preference per level: "sprint" (max frequency) or "low_power"
    #: (min voltage) — Sec. 5.5.1.
    mode: str = BoosterMode.LOW_POWER
    #: Algorithm-2 safe-window length in cycles: failure-free cycles required
    #: before re-entering the aggressive level (Fig. 18 sweeps this).
    beta: int = 50
    #: stall per IRFailure in cycles (V-f switch + redo wave, Fig. 11); the
    #: whole logical Set of the failing macro stalls for this window.
    recompute_cycles: int = 12
    #: stationary mean of the AR(1) input flip factor (fraction, 0-1).
    flip_mean: float = 0.6
    #: stationary standard deviation of the flip factor.
    flip_std: float = 0.15
    #: lag-1 autocorrelation of the flip factor in [0, 1).
    flip_correlation: float = 0.7
    #: std-dev (volts) of the IR monitors' per-sample sensing noise.
    monitor_noise: float = 0.003
    #: HR assumed for runtime-generated in-memory data (QK^T / SV), ~50 %.
    input_determined_hr: float = 0.5
    #: master seed of the run; every macro/monitor stream derives from it.
    seed: int = 0
    #: one of :data:`~repro.sim.engine.ENGINES` — "vectorized" (default) or
    #: the original "reference" loop kept as the behavioural oracle.
    engine: str = "vectorized"
    #: result materialization, one of :data:`TRACE_MODES`.  ``"full"``
    #: (default) materializes every per-cycle trace; ``"none"`` is the
    #: scalar-record fast path: the vectorized engine skips all trace
    #: gathers and stall-mask rebuilds and computes the scalar fields
    #: (failures, stalls, mean/worst drop, the full energy breakdown)
    #: closed-form per level-stable span — equivalent to the full-trace
    #: path (discrete fields bit-identical, float reductions to 1e-9 rtol)
    #: with every trace field ``None``.  Sweeps default to it since records
    #: are scalar-only.  The reference engine ignores this field (it is the
    #: behavioural oracle and always materializes traces).
    traces: str = "full"

    def validate(self) -> None:
        if self.controller not in CONTROLLERS:
            raise ValueError(f"unknown controller {self.controller!r}; known: {CONTROLLERS}")
        if self.mode not in (BoosterMode.SPRINT, BoosterMode.LOW_POWER):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.cycles <= 0 or self.beta <= 0 or self.recompute_cycles < 0:
            raise ValueError("cycles and beta must be positive; recompute_cycles >= 0")
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; known: {ENGINES}")
        if self.traces not in TRACE_MODES:
            raise ValueError(f"unknown traces mode {self.traces!r}; "
                             f"known: {TRACE_MODES}")


class PIMRuntime:
    """Drives a :class:`CompiledWorkload` cycle by cycle under a controller.

    The V-f table, IR-drop model and energy model default to the compiled
    workload's chip configuration (nominal 0.75 V / 1 GHz, 140 mV signoff
    drop on the paper's reference chip); pass explicit instances to explore
    other operating corners.
    """

    def __init__(self, compiled: CompiledWorkload, config: Optional[RuntimeConfig] = None,
                 table: Optional[VFTable] = None,
                 ir_model: Optional[IRDropModel] = None,
                 energy_model: Optional[EnergyModel] = None) -> None:
        config = config or RuntimeConfig()
        config.validate()
        self.compiled = compiled
        self.config = config
        chip_cfg = compiled.chip_config
        self.table = table or VFTable(
            nominal_voltage=chip_cfg.nominal_voltage,
            nominal_frequency=chip_cfg.nominal_frequency,
            signoff_ir_drop=chip_cfg.signoff_ir_drop)
        self.ir_model = ir_model or IRDropModel(
            supply_voltage=chip_cfg.nominal_voltage,
            signoff_drop=chip_cfg.signoff_ir_drop,
            nominal_frequency=chip_cfg.nominal_frequency)
        self.energy_model = energy_model or EnergyModel(
            nominal_voltage=chip_cfg.nominal_voltage,
            nominal_frequency=chip_cfg.nominal_frequency)

    # ------------------------------------------------------------------ #
    # setup helpers
    # ------------------------------------------------------------------ #
    def _activity_inputs(self) -> tuple:
        """``(macro_indices, seeds, hrs)`` driving the activity traces.

        The per-macro flip seeds (``seed + 17 * (macro_index + 1)``) and
        effective HRs in assignment order — shared between
        :meth:`_macro_activity_traces` and the ensemble engine's batched
        cross-run activity generation (:mod:`repro.sim.ensemble`).
        """
        rng_base = self.config.seed
        macro_indices: List[int] = []
        seeds: List[int] = []
        hrs: List[float] = []
        for task_id, macro_index in self.compiled.mapping.assignment.items():
            task = self.compiled.tasks[task_id]
            macro_indices.append(macro_index)
            seeds.append(rng_base + 17 * (macro_index + 1))
            hrs.append(self.config.input_determined_hr
                       if task.input_determined else task.hamming_rate)
        return macro_indices, seeds, hrs

    def _macro_activity_traces(self) -> Dict[int, np.ndarray]:
        """Per-macro realized Rtog trace over the simulation horizon.

        All macros' AR(1) flip sequences are generated in one batched
        :func:`flip_factor_matrix` call (row ``i`` still consumes the same
        per-macro seeded stream as an individual ``flip_factor_sequence``).
        """
        macro_indices, seeds, hrs = self._activity_inputs()
        flips = flip_factor_matrix(
            seeds, self.config.cycles, mean=self.config.flip_mean,
            std=self.config.flip_std, correlation=self.config.flip_correlation)
        return {macro_index: np.clip(hr * flips[i], 0.0, 1.0)
                for i, (macro_index, hr) in enumerate(zip(macro_indices, hrs))}

    def _group_members(self, macro_indices: List[int]) -> Dict[int, List[int]]:
        """Group id -> loaded macro indices, in first-encounter order."""
        chip_cfg = self.compiled.chip_config
        members: Dict[int, List[int]] = {}
        for macro_index in macro_indices:
            gid, _ = chip_cfg.macro_location(macro_index)
            members.setdefault(gid, []).append(macro_index)
        return members

    def _logical_sets(self) -> tuple:
        """(macro -> set id, set id -> member macros): the recompute domains."""
        macro_set: Dict[int, int] = {}
        set_members: Dict[int, List[int]] = {}
        for task_id, macro_index in self.compiled.mapping.assignment.items():
            set_id = self.compiled.tasks[task_id].set_id
            macro_set[macro_index] = set_id
            set_members.setdefault(set_id, []).append(macro_index)
        return macro_set, set_members

    def _macs_per_cycle(self) -> Dict[int, float]:
        """Useful MACs a macro completes per unstalled cycle (bit-serial)."""
        macs: Dict[int, float] = {}
        for task_id, macro_index in self.compiled.mapping.assignment.items():
            task = self.compiled.tasks[task_id]
            macs[macro_index] = task.macs_per_wave / max(1, task.bits)
        return macs

    def _controller(self) -> Optional[IRBoosterController]:
        if self.config.controller == "dvfs":
            return None
        controller = IRBoosterController(self.table, beta=self.config.beta,
                                         mode=self.config.mode)
        for group_id in self.compiled.used_groups:
            controller.configure_group(
                group_id, self.compiled.group_hr[group_id],
                self.compiled.group_input_determined.get(group_id, False))
            if self.config.controller == "booster_safe":
                # Safe-only operation: pin the level to the safe level (used by
                # the ablation to isolate the software methods from Alg. 2).
                state = controller.state(group_id)
                state.a_level = state.safe_level
                state.level = state.safe_level
        return controller

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def run(self) -> SimulationResult:
        """Execute the configured engine and return the run's results.

        ``engine="vectorized"`` (default) runs the event-driven array engine of
        :mod:`repro.sim.engine`; ``engine="reference"`` runs the original
        cycle-by-cycle Python loop, kept as the behavioural oracle the
        vectorized engine is tested against.

        Equivalence guarantee: for equal configs the engines agree bit-for-bit
        on failures, stalls, drop/level/chip traces and Rtog activity; energy
        agrees to floating-point summation order (1e-9 rtol) because the
        vectorized engine accumulates per-cycle energy with array reductions.
        ``tests/test_sim_engine.py`` enforces this across all controllers,
        modes, seeds and stress settings.  The call is deterministic in
        ``config.seed`` and side-effect-free on the compiled workload, so runs
        can be distributed freely (see :mod:`repro.sweep`).
        """
        if self.config.engine == "vectorized":
            return run_vectorized(self)
        return self._run_reference()

    def _run_reference(self) -> SimulationResult:
        cfg = self.config
        activity = self._macro_activity_traces()
        controller = self._controller()
        # Monitors are internal to the run: per-sample reading capture stays
        # off so long horizons don't accumulate unreachable Python objects.
        monitors = {gid: IRMonitor(sensing_noise=cfg.monitor_noise, seed=cfg.seed + gid,
                                   record_readings=False)
                    for gid in self.compiled.used_groups}

        # Per-macro bookkeeping.
        macro_indices = sorted(activity)
        energy: Dict[int, EnergyBreakdown] = {m: EnergyBreakdown() for m in macro_indices}
        drop_traces: Dict[int, List[float]] = {m: [] for m in macro_indices}
        failures: Dict[int, int] = {m: 0 for m in macro_indices}
        stall_remaining: Dict[int, int] = {m: 0 for m in macro_indices}
        stall_total: Dict[int, int] = {m: 0 for m in macro_indices}
        level_traces: Dict[int, List[int]] = {gid: [] for gid in self.compiled.used_groups}
        chip_drop_trace: List[float] = []

        # Logical sets: macros computing tiles of the same operator.
        macro_set, set_members = self._logical_sets()
        macs_per_cycle = self._macs_per_cycle()
        group_members = self._group_members(macro_indices)

        for cycle in range(cfg.cycles):
            cycle_failures: Dict[int, bool] = {gid: False for gid in group_members}
            worst_drop_this_cycle = 0.0

            # Resolve each group's operating point for this cycle.
            group_pairs: Dict[int, VFPair] = {}
            for gid in group_members:
                if controller is None:
                    # The DVFS baseline is the signoff operating point: the
                    # 100 %-level pair at the nominal frequency (0.75 V / 1 GHz
                    # on the paper's reference chip).
                    pair = self.table.nominal_dvfs_pair()
                    level_traces[gid].append(100)
                else:
                    state = controller.state(gid)
                    level_traces[gid].append(state.level)
                    pair = controller.vf_pair(gid)
                group_pairs[gid] = pair

            # Evaluate every loaded macro.
            for gid, members in group_members.items():
                pair = group_pairs[gid]
                # A pair signed off for level L tolerates the drop that an
                # activity of L percent produces at its V/f — evaluated with the
                # same Eq.-2 model the macros see, so "rtog <= level" can never
                # raise a spurious IRFailure.
                allowed_drop = self.ir_model.drop(
                    min(pair.level, 100) / 100.0, pair.voltage, pair.frequency)
                for macro_index in members:
                    rtog_now = float(activity[macro_index][cycle])
                    drop = self.ir_model.drop(rtog_now, pair.voltage, pair.frequency)
                    drop_traces[macro_index].append(drop)
                    worst_drop_this_cycle = max(worst_drop_this_cycle, drop)

                    stalled = stall_remaining[macro_index] > 0
                    if stalled:
                        stall_remaining[macro_index] -= 1
                        stall_total[macro_index] += 1
                    else:
                        # IRFailure detection through the group's monitor.
                        effective_v = pair.voltage - drop
                        threshold_v = pair.voltage - allowed_drop
                        failed = monitors[gid].sample(cycle, effective_v, threshold_v)
                        if failed:
                            failures[macro_index] += 1
                            cycle_failures[gid] = True
                            # The whole logical Set stalls while this macro recomputes.
                            for member in set_members.get(macro_set[macro_index], []):
                                stall_remaining[member] = max(
                                    stall_remaining[member], cfg.recompute_cycles)
                            stalled = True

                    self.energy_model.accumulate_cycle(
                        energy[macro_index], pair.voltage, pair.frequency,
                        activity=rtog_now, macs_completed=macs_per_cycle[macro_index],
                        stalled=stalled)

            chip_drop_trace.append(worst_drop_this_cycle)

            # Advance Algorithm 2 once per group per cycle.
            if controller is not None and cfg.controller == "booster":
                for gid in group_members:
                    controller.step(gid, ir_failure=cycle_failures[gid])

        return self._collect(energy, drop_traces, activity, failures, stall_total,
                             level_traces, chip_drop_trace, controller,
                             group_members=group_members)

    # ------------------------------------------------------------------ #
    # result assembly
    # ------------------------------------------------------------------ #
    def _collect(self, energy, drop_traces, activity, failures, stall_total,
                 level_traces, chip_drop_trace, controller,
                 group_members=None) -> SimulationResult:
        return assemble_result(
            compiled=self.compiled, config=self.config, energy=energy,
            drop_traces=drop_traces, activity=activity, failures=failures,
            stall_total=stall_total, level_traces=level_traces,
            chip_drop_trace=chip_drop_trace, controller=controller,
            group_members=group_members)


def simulate(compiled: CompiledWorkload, config: Optional[RuntimeConfig] = None,
             **kwargs) -> SimulationResult:
    """Convenience wrapper: build a :class:`PIMRuntime` and run it."""
    return PIMRuntime(compiled, config, **kwargs).run()


def simulate_ensemble(compiled: CompiledWorkload,
                      configs: List[RuntimeConfig],
                      **kwargs) -> List[SimulationResult]:
    """Simulate all configs of one grid point in a single batched pass.

    Dispatches to the ensemble engine (:mod:`repro.sim.ensemble`): setup,
    activity generation and level physics are derived once per batch, and
    no-level-change members resolve through the runs-axis timeline kernels.
    Each returned result is bit-identical (discrete fields; energy to 1e-9
    rtol) to ``simulate(compiled, cfg, **kwargs)`` for the matching config.
    """
    from .ensemble import run_ensemble
    return run_ensemble(compiled, configs, **kwargs)
