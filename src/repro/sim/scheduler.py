"""Operator scheduling: ordering and phasing of a workload's operators.

The paper's compiler performs operator scheduling and segmentation *before*
HR-aware task mapping (Sec. 5.6).  For the feed-forward networks in the model
zoo the dependency structure is a chain, so scheduling reduces to (a) keeping
the definition order, and (b) splitting the chain into *phases* whose tiles fit
on the chip simultaneously — each phase becomes one chip image that the task
mapper then places.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Dict, List, Optional, Sequence

from ..pim.config import ChipConfig, MacroConfig
from ..pim.dataflow import Operator
from ..workloads.profiles import WorkloadProfile

__all__ = ["SchedulePhase", "OperatorSchedule", "schedule_operators"]


@dataclass
class SchedulePhase:
    """One chip-resident phase: operators whose tiles fit on the chip together."""

    index: int
    operators: List[Operator] = field(default_factory=list)
    estimated_tiles: int = 0

    @property
    def operator_names(self) -> List[str]:
        return [op.name for op in self.operators]


@dataclass
class OperatorSchedule:
    """The ordered phases of one workload."""

    workload: str
    phases: List[SchedulePhase] = field(default_factory=list)

    @property
    def num_phases(self) -> int:
        return len(self.phases)

    @property
    def all_operators(self) -> List[Operator]:
        return [op for phase in self.phases for op in phase.operators]


def _tiles_needed(operator: Operator, macro: MacroConfig) -> int:
    rows = ceil(operator.codes.shape[0] / macro.rows)
    cols = ceil(operator.codes.shape[1] / macro.banks)
    return rows * cols


def schedule_operators(profile: WorkloadProfile, chip_config: ChipConfig,
                       max_tiles_per_operator: Optional[int] = None) -> OperatorSchedule:
    """Greedy phase packing in definition order.

    Operators are appended to the current phase until the next one would exceed
    the chip's macro count; then a new phase starts.  An operator that alone
    needs more tiles than the chip has macros still gets its own phase (the
    compiler later downsamples its tiles), mirroring how large layers are
    processed in several passes on the real chip.
    """
    schedule = OperatorSchedule(workload=profile.name)
    current = SchedulePhase(index=0)
    capacity = chip_config.total_macros
    for operator in profile.operators:
        tiles = _tiles_needed(operator, chip_config.macro)
        if max_tiles_per_operator is not None:
            tiles = min(tiles, max_tiles_per_operator)
        if current.operators and current.estimated_tiles + tiles > capacity:
            schedule.phases.append(current)
            current = SchedulePhase(index=len(schedule.phases))
        current.operators.append(operator)
        current.estimated_tiles += tiles
    if current.operators:
        schedule.phases.append(current)
    return schedule
