"""On-disk, ``np.memmap``-backed cross-process store for simulation physics.

The process-level :data:`~repro.sim.level_cache.LEVEL_CACHE` stops at the
process boundary: every worker of a :class:`~repro.sweep.runner.PoolExecutor`
fleet re-derives per-(group, level) drop/candidate arrays its siblings already
computed.  This module is the cache's pluggable *backend* that crosses that
boundary: entries are serialized once into flat binary files under a shared
directory and attached by every other process as **read-only memory-mapped
views** — the OS page cache makes a fleet share one physical copy.

Layout (one directory per store)::

    index.json     # digest -> {file, size, kind, meta, arrays[], pid}
    <digest>.bin   # the entry's arrays, raw C-order bytes, 64-byte aligned
    stats.jsonl    # append-only event log ("store"/"hit" + pid), optional
    .lock          # advisory flock serializing index/stats writers

Consistency model — writers are *publish-only*: a ``.bin`` file is written to
a temp name and atomically renamed, then the index is rewritten (read-merge-
replace) under an advisory ``flock``; data files are immutable once indexed.
Readers never lock: they see either the old or the new index (atomic
``os.replace``), and every lookup re-validates the recorded file size before
mapping — an index entry whose data file is missing, truncated or resized is
*stale* and treated as a miss (correctness never depends on a hit; the engine
just recomputes).  Two processes racing to store the same key write
bit-identical bytes (entries are deterministic), so last-rename-wins is safe.

Keys are the level cache's tuples of primitives, digested via their ``repr``.
Keys carrying a process-local workload identity (the ``("token", n)`` /
``("unshared", ...)`` markers of
:func:`~repro.sim.level_cache.workload_cache_key`) are **refused** — token
numbers collide across processes, and silently sharing them would hand one
workload another's physics.  Sweep-built workloads carry a deterministic
fingerprint instead (``("spec", ...)``) and share freely.

Two value kinds are understood: :class:`~repro.sim.level_cache.LevelEntry`
(drop rows + candidate-failure cycles) and the activity-trace dict
(``{macro_index: trace}``).  Anything else is declined.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import time
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..power.vf_table import VFPair
from .level_cache import LevelEntry

try:                                        # POSIX advisory locking
    import fcntl
except ImportError:                         # pragma: no cover - non-POSIX
    fcntl = None

__all__ = ["SharedPhysicsStore", "StoreLockTimeout", "shareable_key"]

logger = logging.getLogger("repro.sim.shared_store")

_ALIGN = 64
_FORMAT_VERSION = 1

#: Process-local markers of :func:`~repro.sim.level_cache.workload_cache_key`
#: — meaningless (and colliding) in any other process.
_UNSHAREABLE_TAGS = ("token", "unshared")


def shareable_key(key: Hashable) -> bool:
    """Whether a cache key is safe to share across processes.

    True iff the key is built purely from primitives and carries no
    process-local workload identity marker (see module docstring).
    """
    if isinstance(key, tuple):
        if (len(key) == 2 and isinstance(key[0], str)
                and key[0] in _UNSHAREABLE_TAGS):
            return False
        return all(shareable_key(item) for item in key)
    return isinstance(key, (str, int, float, bool, type(None)))


def _digest(key: Hashable) -> str:
    """Stable content digest of a primitives-only key tuple."""
    return hashlib.sha256(repr(key).encode()).hexdigest()[:40]


class StoreLockTimeout(TimeoutError):
    """The store's advisory lock could not be acquired within the timeout.

    A ``TimeoutError`` (hence an ``OSError``): a worker that died while
    holding ``.lock`` releases it with its file descriptors, so a timeout
    here means a *live* holder is wedged — the store degrades (the entry
    stays unpublished) rather than blocking the simulation forever.
    """


class _Flock:
    """Advisory exclusive lock on a file (no-op where flock is unavailable).

    With a ``timeout``, acquisition polls ``LOCK_NB`` and raises
    :class:`StoreLockTimeout` when the deadline passes instead of blocking
    indefinitely on a wedged holder.
    """

    def __init__(self, path: str, timeout: Optional[float] = None) -> None:
        self.path = path
        self.timeout = timeout
        self._handle = None

    def __enter__(self) -> "_Flock":
        if fcntl is None:
            return self
        self._handle = open(self.path, "a")
        if self.timeout is None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
            return self
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fcntl.flock(self._handle.fileno(),
                            fcntl.LOCK_EX | fcntl.LOCK_NB)
                return self
            except OSError:
                if time.monotonic() >= deadline:
                    self._handle.close()
                    self._handle = None
                    raise StoreLockTimeout(
                        f"could not acquire store lock {self.path!r} "
                        f"within {self.timeout}s")
                time.sleep(0.01)

    def __exit__(self, *exc) -> None:
        if self._handle is not None:
            fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            self._handle.close()
            self._handle = None


# ---------------------------------------------------------------------- #
# value codecs
# ---------------------------------------------------------------------- #
def _encode(value: object) -> Optional[Tuple[str, Dict, List[Tuple[str, np.ndarray]]]]:
    """``value -> (kind, meta, named arrays)``; None when not understood."""
    if isinstance(value, LevelEntry):
        if value.fail_cycles is None:
            return None            # physics-only entries stay process-local
        cand = (np.concatenate(value.fail_cycles).astype(np.int64)
                if value.fail_cycles else np.empty(0, dtype=np.int64))
        offsets = np.zeros(len(value.fail_cycles) + 1, dtype=np.int64)
        np.cumsum([len(c) for c in value.fail_cycles], out=offsets[1:])
        meta = {"pair": [int(value.pair.level), float(value.pair.voltage),
                         float(value.pair.frequency)]}
        return "level", meta, [
            ("drop", np.ascontiguousarray(value.drop_rows)),
            ("cand", np.ascontiguousarray(cand)),
            ("offsets", offsets)]
    if (isinstance(value, dict) and value
            and all(isinstance(k, (int, np.integer)) for k in value)
            and all(isinstance(v, np.ndarray) and v.ndim == 1
                    for v in value.values())):
        macros = sorted(int(k) for k in value)
        traces = np.ascontiguousarray(
            np.vstack([value[m] for m in macros]))
        return "activity", {"macros": macros}, [("traces", traces)]
    return None


def _decode(kind: str, meta: Dict, arrays: Dict[str, np.ndarray]
            ) -> Optional[Tuple[object, int]]:
    """``(kind, meta, named arrays) -> (value, nbytes)``; None when unknown."""
    if kind == "level":
        level, voltage, frequency = meta["pair"]
        drop = arrays["drop"]
        cand = arrays["cand"]
        offsets = arrays["offsets"]
        fail_cycles = [cand[offsets[i]:offsets[i + 1]]
                       for i in range(offsets.size - 1)]
        entry = LevelEntry(
            pair=VFPair(level=int(level), voltage=float(voltage),
                        frequency=float(frequency)),
            drop_rows=drop,
            fail_cycles=fail_cycles)
        return entry, entry.nbytes_estimate()
    if kind == "activity":
        traces = arrays["traces"]
        value = {int(m): traces[i] for i, m in enumerate(meta["macros"])}
        return value, int(traces.nbytes)
    return None


# ---------------------------------------------------------------------- #
# the store
# ---------------------------------------------------------------------- #
class SharedPhysicsStore:
    """A directory of memory-mapped physics entries shared by a process fleet.

    Duck-typed as a :class:`~repro.sim.level_cache.ByteBudgetCache` backend:
    ``load(key) -> Optional[(value, nbytes)]`` and ``store(key, value,
    nbytes) -> bool``.  See the module docstring for the on-disk format and
    the consistency model.  ``record_events=True`` (default) appends one line
    per store/cross-load to ``stats.jsonl`` (lock-free ``O_APPEND``; one line
    per entry per process at most) so benchmarks and tests can count
    *cross-worker* reuse after the fleet is gone; pass ``False`` — also
    accepted by :func:`~repro.sim.level_cache.attach_shared_store` — for
    long-lived persistent stores that do not need the audit trail.
    """

    def __init__(self, directory: str, record_events: bool = True,
                 lock_timeout: Optional[float] = 10.0) -> None:
        self.directory = directory
        self.record_events = record_events
        self.lock_timeout = lock_timeout
        self.degraded = False
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as error:
            # Unwritable store root: degrade to the process-local cache —
            # every load misses and every store fails (counted), the
            # simulation itself is unaffected.
            self.degraded = True
            logger.warning("shared store directory %r unusable (%s); "
                           "degrading to process-local caching only",
                           directory, error)
        self._index_path = os.path.join(directory, "index.json")
        self._lock_path = os.path.join(directory, ".lock")
        self._events_path = os.path.join(directory, "stats.jsonl")
        self._index: Dict[str, Dict] = {}
        self._index_stat: Optional[Tuple[int, int]] = None
        #: digests this instance already logged per event kind — one audit
        #: line per (entry, process) even when an oversized-for-memory entry
        #: is re-loaded on every get.
        self._logged: Dict[str, set] = {"hit": set(), "store": set()}
        #: digests whose on-disk bytes this process already checksum-verified
        #: — verification is once per (entry, process), not per load.
        self._verified: set = set()
        self.loads = 0
        self.load_hits = 0
        self.stores = 0
        self.rejected_keys = 0
        self.stale_rejected = 0
        self.corrupt_rejected = 0
        self.load_errors = 0
        self.store_errors = 0
        self.event_log_errors = 0
        self.lock_timeouts = 0

    # ------------------------------------------------------------------ #
    # index handling
    # ------------------------------------------------------------------ #
    def _read_index(self) -> Dict[str, Dict]:
        try:
            stat = os.stat(self._index_path)
            with open(self._index_path) as handle:
                data = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return {}
        if data.get("version") != _FORMAT_VERSION:
            return {}
        self._index_stat = (stat.st_mtime_ns, stat.st_size)
        return data.get("entries", {})

    def _refresh_index(self) -> None:
        try:
            stat = os.stat(self._index_path)
        except FileNotFoundError:
            return
        if self._index_stat != (stat.st_mtime_ns, stat.st_size):
            self._index = self._read_index()

    def _log_event(self, event: str, digest: str) -> None:
        if not self.record_events:
            return
        logged = self._logged[event]
        if digest in logged:
            return                          # bounded: one line per entry
        logged.add(digest)
        # Lock-free: O_APPEND writes of one short line are atomic on POSIX,
        # so concurrent workers interleave whole lines.  With the dedup
        # above, volume is bounded by (entries x processes).
        line = json.dumps({"event": event, "digest": digest,
                           "pid": os.getpid()})
        try:
            with open(self._events_path, "a") as handle:
                handle.write(line + "\n")
        except OSError:                     # audit is never worth a crash —
            self.event_log_errors += 1      # but a sick log must be visible
            logged.discard(digest)          # retry the line on the next event

    def read_events(self) -> List[Dict]:
        """All logged store/hit events (for cross-worker reuse accounting)."""
        try:
            with open(self._events_path) as handle:
                return [json.loads(line) for line in handle if line.strip()]
        except FileNotFoundError:
            return []

    def cross_worker_hits(self) -> int:
        """Loads served to a process that never stored that entry itself.

        Racing writers may both publish one digest (permitted — identical
        bytes); a later hit by either of them is *not* cross-worker, so the
        check is membership in the full storer set, not the last storer.
        """
        events = self.read_events()
        stored_by: Dict[str, set] = {}
        for event in events:
            if event["event"] == "store":
                stored_by.setdefault(event["digest"], set()).add(event["pid"])
        return sum(1 for e in events if e["event"] == "hit"
                   and e["digest"] in stored_by
                   and e["pid"] not in stored_by[e["digest"]])

    def _published(self, digest: str) -> bool:
        """Whether the index lists ``digest`` *and* its data file is intact.

        An index record whose data file vanished or changed size is stale —
        treating it as published would permanently suppress re-publication
        (the disk index can outlive a deleted ``.bin`` under concurrent
        writers), so staleness here means "not published, write it again".
        """
        record = self._index.get(digest)
        if record is None:
            return False
        path = os.path.join(self.directory, record["file"])
        try:
            return os.path.getsize(path) == record["size"]
        except OSError:
            return False

    # ------------------------------------------------------------------ #
    # backend protocol
    # ------------------------------------------------------------------ #
    def load(self, key: Hashable) -> Optional[Tuple[object, int]]:
        """Attach an entry as read-only views; None on miss or stale index.

        Best-effort by contract: any I/O failure (store directory removed
        mid-sweep, permissions, ENOSPC on the audit log) degrades to a miss
        — the engine just recomputes — never to a crashed run.  Swallowed
        failures are counted in ``stats()["load_errors"]``.
        """
        if self.degraded:
            return None
        try:
            return self._load(key)
        except (OSError, ValueError, KeyError, TypeError) as error:
            # OSError: directory/file gone or unreadable; ValueError/KeyError/
            # TypeError: a corrupt index record that survived the size check
            # (np.dtype raises TypeError on a garbage dtype string).
            self.load_errors += 1
            logger.debug("shared store load failed for %r: %r", key, error)
            return None

    def _load(self, key: Hashable) -> Optional[Tuple[object, int]]:
        if not shareable_key(key):
            return None
        self.loads += 1
        digest = _digest(key)
        record = self._index.get(digest)
        if record is None:
            self._refresh_index()
            record = self._index.get(digest)
            if record is None:
                return None
        path = os.path.join(self.directory, record["file"])
        try:
            if os.path.getsize(path) != record["size"]:
                raise OSError("size mismatch")
            mm = np.memmap(path, dtype=np.uint8, mode="r")
        except (OSError, ValueError):
            # Stale index: the data file vanished or changed size after the
            # index snapshot was taken.  Reject the entry and miss.
            self._index.pop(digest, None)
            self.stale_rejected += 1
            return None
        checksum = record.get("sha256")
        if checksum is not None and digest not in self._verified:
            if hashlib.sha256(mm).hexdigest() != checksum:
                # Damaged bytes behind an intact size: quarantine the file
                # (rename for post-mortem) so ``_published`` turns false and
                # the entry can be re-derived and republished.  Correctness
                # never depended on the hit — this is a miss, not an error.
                self._quarantine(digest, path)
                return None
            self._verified.add(digest)
        arrays: Dict[str, np.ndarray] = {}
        for spec in record["arrays"]:
            shape = tuple(spec["shape"])
            dtype = np.dtype(spec["dtype"])
            count = int(np.prod(shape, dtype=np.int64)) if shape else 1
            arr = np.frombuffer(mm, dtype=dtype, count=count,
                                offset=spec["offset"]).reshape(shape)
            arrays[spec["name"]] = arr      # read-only view of the memmap
        decoded = _decode(record["kind"], record["meta"], arrays)
        if decoded is None:
            return None
        self.load_hits += 1
        self._log_event("hit", digest)
        return decoded

    def _quarantine(self, digest: str, path: str) -> None:
        """Take a checksum-failed data file out of service, keeping evidence."""
        self.corrupt_rejected += 1
        self._index.pop(digest, None)
        self._verified.discard(digest)
        logger.warning("shared store entry %s failed its checksum; "
                       "quarantining %s for re-derivation", digest, path)
        try:
            os.replace(path, path + ".corrupt")
        except OSError:
            try:
                os.unlink(path)             # rename failed: at least unpublish
            except OSError:
                pass

    def store(self, key: Hashable, value: object, nbytes: int) -> bool:
        """Publish an entry (idempotent; refuses process-local keys).

        Best-effort like :meth:`load`: publication failures (directory gone,
        ENOSPC, permissions, a wedged ``.lock`` holder) report ``False``
        instead of raising into the simulation — the fleet just loses sharing
        for that entry.  Swallowed failures are counted in
        ``stats()["store_errors"]`` (lock timeouts additionally in
        ``stats()["lock_timeouts"]``).
        """
        if self.degraded:
            self.store_errors += 1
            return False
        try:
            return self._store(key, value, nbytes)
        except StoreLockTimeout as error:
            self.lock_timeouts += 1
            self.store_errors += 1
            logger.warning("shared store publish skipped: %s", error)
            return False
        except OSError as error:
            self.store_errors += 1
            logger.debug("shared store publish failed for %r: %r", key, error)
            return False

    def _store(self, key: Hashable, value: object, nbytes: int) -> bool:
        if not shareable_key(key):
            self.rejected_keys += 1
            return False
        encoded = _encode(value)
        if encoded is None:
            return False
        digest = _digest(key)
        if not self._published(digest):
            self._refresh_index()
        if self._published(digest):
            # Already on disk — but this process still *derived* the entry
            # (puts only follow computation), so record it as a storer:
            # its own later disk reloads are not cross-worker reuse.
            self._log_event("store", digest)
            return True
        kind, meta, named_arrays = encoded

        specs: List[Dict] = []
        chunks: List[bytes] = []
        offset = 0
        for name, array in named_arrays:
            pad = (-offset) % _ALIGN
            if pad:
                chunks.append(b"\x00" * pad)
                offset += pad
            raw = array.tobytes()
            specs.append({"name": name, "dtype": array.dtype.str,
                          "shape": list(array.shape), "offset": offset})
            chunks.append(raw)
            offset += len(raw)
        blob = b"".join(chunks)

        file_name = digest + ".bin"
        final_path = os.path.join(self.directory, file_name)
        fd, tmp_path = tempfile.mkstemp(dir=self.directory,
                                        prefix=".tmp-" + digest[:8])
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_path, final_path)
        except OSError as error:
            self.store_errors += 1
            logger.debug("shared store blob write failed for %s: %r",
                         digest, error)
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            return False
        # Chaos-harness hook (no-op unarmed): damage the published bytes the
        # way a disk fault would, *after* the atomic rename — the checksum
        # verification on load is what must catch it.
        from ..sweep.faults import store_fault
        store_fault(final_path)

        record = {"file": file_name, "size": len(blob), "kind": kind,
                  "meta": meta, "arrays": specs, "pid": os.getpid(),
                  "sha256": hashlib.sha256(blob).hexdigest()}
        with _Flock(self._lock_path, timeout=self.lock_timeout):
            entries = self._read_index()
            entries[digest] = record
            payload = {"version": _FORMAT_VERSION, "entries": entries}
            fd, tmp_path = tempfile.mkstemp(dir=self.directory,
                                            prefix=".tmp-index")
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, self._index_path)
            self._index = entries
            try:
                stat = os.stat(self._index_path)
                self._index_stat = (stat.st_mtime_ns, stat.st_size)
            except FileNotFoundError:       # pragma: no cover - racing rmtree
                self._index_stat = None
        self.stores += 1
        self._log_event("store", digest)
        return True

    def kind_counts(self) -> Dict[str, int]:
        """Published entry counts by kind (``"level"`` / ``"activity"``).

        Lets benchmarks and tests assert that a specific physics family —
        e.g. the ``"model"`` builder's compiled-chip activity traces —
        actually crossed the process boundary, not just the level entries.
        """
        self._refresh_index()
        counts: Dict[str, int] = {}
        for record in self._index.values():
            kind = record.get("kind", "unknown")
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def stats(self) -> Dict[str, int]:
        if not self.degraded:
            self._refresh_index()
        return {
            "directory": self.directory,
            "entries": len(self._index),
            "loads": self.loads,
            "load_hits": self.load_hits,
            "stores": self.stores,
            "rejected_keys": self.rejected_keys,
            "stale_rejected": self.stale_rejected,
            "corrupt_rejected": self.corrupt_rejected,
            "load_errors": self.load_errors,
            "store_errors": self.store_errors,
            "event_log_errors": self.event_log_errors,
            "lock_timeouts": self.lock_timeouts,
            "degraded": self.degraded,
        }
