"""Cycle-accurate Rtog trace collection from the behavioural macro model.

The runtime uses a fast statistical activity model, but the Fig. 4 / Fig. 5
experiments need the *exact* bit-serial toggle traces of macros executing real
integer streams.  The helpers here push activation waves generated from dataset
statistics through :class:`~repro.pim.macro.PIMMacro` instances and collect the
per-cycle Rtog, peak Rtog and the Rtog histogram used in the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..pim.config import MacroConfig
from ..pim.dataflow import Operator, Task
from ..pim.macro import PIMMacro
from ..workloads.generator import ActivationStreamGenerator

__all__ = ["OperatorRtogProfile", "profile_operator_rtog", "profile_task_rtog",
           "rtog_histogram"]


@dataclass
class OperatorRtogProfile:
    """Exact Rtog statistics of one operator tile streamed through a macro."""

    operator_name: str
    hamming_rate: float
    rtog_trace: np.ndarray
    cycles: int

    @property
    def peak_rtog(self) -> float:
        return float(self.rtog_trace.max()) if self.rtog_trace.size else 0.0

    @property
    def mean_rtog(self) -> float:
        return float(self.rtog_trace.mean()) if self.rtog_trace.size else 0.0

    @property
    def peak_below_hr(self) -> bool:
        """Equation 4's guarantee: the observed peak never exceeds HR."""
        return self.peak_rtog <= self.hamming_rate + 1e-9


def profile_task_rtog(task: Task, macro_config: MacroConfig, waves: int = 64,
                      activation_std: float = 1.0, correlation: float = 0.5,
                      seed: int = 0) -> OperatorRtogProfile:
    """Stream synthetic activations through one task tile and record exact Rtog."""
    macro = PIMMacro(macro_config)
    macro.load_weight_matrix(task.codes, wds_delta=task.wds_delta)
    generator = ActivationStreamGenerator(
        rows=macro_config.rows, input_bits=macro_config.bank.input_bits,
        std=activation_std, correlation=correlation, seed=seed)
    activations = generator.generate(waves)
    execution = macro.execute(activations)
    return OperatorRtogProfile(
        operator_name=task.operator_name, hamming_rate=macro.hamming_rate,
        rtog_trace=execution.rtog_mean_trace, cycles=execution.cycles)


def profile_operator_rtog(operator: Operator, macro_config: MacroConfig, waves: int = 64,
                          activation_std: float = 1.0, correlation: float = 0.5,
                          seed: int = 0) -> OperatorRtogProfile:
    """Profile the first macro-sized tile of an operator (HR is layer-uniform)."""
    rows = min(operator.codes.shape[0], macro_config.rows)
    cols = min(operator.codes.shape[1], macro_config.banks)
    tile = Task(task_id=0, operator_name=operator.name, kind=operator.kind, set_id=0,
                codes=operator.codes[:rows, :cols], bits=operator.bits,
                wds_delta=operator.wds_delta,
                input_determined=operator.input_determined)
    return profile_task_rtog(tile, macro_config, waves=waves,
                             activation_std=activation_std, correlation=correlation,
                             seed=seed)


def rtog_histogram(trace: np.ndarray, bins: int = 20,
                   value_range: Tuple[float, float] = (0.0, 0.6)) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram of an Rtog trace (counts, bin edges) — the Fig. 5 view."""
    return np.histogram(np.asarray(trace), bins=bins, range=value_range)
