"""Durable record stores for sweep results.

The persistence layer under :mod:`repro.sweep`: a sweep's run records live
in a :class:`RecordStore` — in memory, in the legacy single-JSON checkpoint
blob, or (the durable default) in an append-only directory of checksummed
JSONL shards that survives ``kill -9``, torn writes, flipped bytes and lost
manifests.  :func:`open_store` maps a target (``":memory:"``, ``*.json``
path, directory) to its backend; ``python -m repro.store.audit`` is the
integrity doctor.
"""

from .base import RecordStore, StoreError, open_store
from .legacy import LegacyJSONRecordStore
from .memory import MemoryRecordStore
from .sharded import ShardedRecordStore, StoreScanReport, scan_store
from .audit import audit_store

__all__ = [
    "RecordStore",
    "StoreError",
    "open_store",
    "MemoryRecordStore",
    "LegacyJSONRecordStore",
    "ShardedRecordStore",
    "StoreScanReport",
    "scan_store",
    "audit_store",
]
