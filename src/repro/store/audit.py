"""The store audit doctor: verify, repair, and recompact sharded stores.

Run as a module against one or more store directories::

    python -m repro.store.audit results/store              # verify only
    python -m repro.store.audit --repair --compact store/  # heal in place
    python -m repro.store.audit --json store/              # machine-readable

The default pass is **non-mutating**: every shard line is re-digested and
the manifest cross-checked (:func:`repro.store.sharded.scan_store`), so it
is safe against a store a sweep is actively writing.  Problems — torn
tails, mid-shard corruption, stale or missing manifests — are reported and
the process exits ``1``; a clean store exits ``0``.

``--repair`` routes the damage through the same recovery path a writable
open uses: torn tails are truncated, corrupt shards quarantined to
``.corrupt`` with their intact lines rewritten, and the manifest rebuilt.
``--compact`` additionally merges the closed shards, dropping superseded
lines.  After repair the store is rescanned; the exit code reflects the
*final* state, so ``audit --repair && sweep --resume`` composes.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from .sharded import ShardedRecordStore, StoreScanReport, scan_store

__all__ = ["audit_store", "main"]


def audit_store(directory: str, repair: bool = False,
                compact: bool = False) -> Dict:
    """Audit one store directory; the programmatic core of the CLI.

    Returns a JSON-ready report: the initial :class:`StoreScanReport`, what
    the repair did (when asked), and the post-repair rescan.  ``clean`` is
    the final verdict the CLI's exit code is based on.
    """
    before = scan_store(directory)
    report: Dict = {"directory": before.directory,
                    "scan": before.to_json_dict(),
                    "clean": before.clean}
    if not (repair or compact):
        return report
    store = ShardedRecordStore(directory)   # the opening IS the repair
    try:
        actions = {key: value for key, value in store.stats().items()
                   if key in ("torn_tail_dropped", "corrupt_lines_dropped",
                              "shards_quarantined", "manifest_rebuilds")}
        if compact:
            actions["compacted_lines"] = store.compact()
    finally:
        store.close()
    after = scan_store(directory)
    report["repair"] = actions
    report["rescan"] = after.to_json_dict()
    report["clean"] = after.clean
    return report


def _print_human(report: Dict, out) -> None:
    scan = report["rescan"] if "rescan" in report else report["scan"]
    verdict = "clean" if report["clean"] else "PROBLEMS"
    print(f"{report['directory']}: {verdict}", file=out)
    print(f"  records={scan['records']} failed={scan['failed']} "
          f"shards={len(scan['shards'])} sealed={scan['sealed']} "
          f"superseded_lines={scan['superseded_lines']} "
          f"quarantined_files={scan['quarantined_files']}", file=out)
    if "repair" in report:
        fixes = ", ".join(f"{key}={value}"
                          for key, value in sorted(report["repair"].items()))
        print(f"  repair: {fixes}", file=out)
    for problem in scan["problems"]:
        print(f"  ! {problem}", file=out)
    if "rescan" in report:
        healed = [p for p in report["scan"]["problems"]
                  if p not in scan["problems"]]
        for problem in healed:
            print(f"  ~ healed: {problem}", file=out)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store.audit",
        description="Verify (and optionally repair) sharded record stores.")
    parser.add_argument("directories", nargs="+", metavar="DIR",
                        help="store directories to audit")
    parser.add_argument("--repair", action="store_true",
                        help="heal damage in place (torn-tail truncation, "
                             "corrupt-shard quarantine, manifest rebuild)")
    parser.add_argument("--compact", action="store_true",
                        help="merge closed shards, dropping superseded "
                             "lines (implies opening the store for write)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit one JSON report object per store")
    args = parser.parse_args(argv)
    all_clean = True
    for directory in args.directories:
        report = audit_store(directory, repair=args.repair,
                             compact=args.compact)
        all_clean = all_clean and report["clean"]
        if args.as_json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            _print_human(report, sys.stdout)
    return 0 if all_clean else 1


if __name__ == "__main__":                      # pragma: no cover - CLI shim
    sys.exit(main())
