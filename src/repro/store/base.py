"""The record-store contract: collection-style persistence for sweep records.

A :class:`RecordStore` is where a sweep's :class:`~repro.sweep.records
.RunRecord`s (and quarantined :class:`~repro.sweep.records.FailedRun`s) live
while — and after — the sweep executes.  The runner appends outcomes as they
complete, flushes at checkpoint boundaries, and seals the store when the
sweep finishes; readers iterate records back out or materialize a
:class:`~repro.sweep.records.SweepResult` for aggregation.

Three backends implement the contract:

* :class:`~repro.store.memory.MemoryRecordStore` — plain lists, no
  durability; the unit-test and dry-run backend;
* :class:`~repro.store.legacy.LegacyJSONRecordStore` — the pre-store
  single-JSON checkpoint format, bit-compatible with
  :meth:`~repro.sweep.records.SweepResult.save`/``load`` (every flush
  rewrites the whole blob — O(n) per checkpoint, which is exactly why the
  sharded backend exists);
* :class:`~repro.store.sharded.ShardedRecordStore` — the default durable
  backend: an append-only directory of checksummed JSONL shards with
  record-incremental flush cost.

Durability contract (all backends): a record passed to :meth:`append` is
*acknowledged* once :meth:`flush` returns — after that it must survive a
``kill -9`` (for the backends that persist at all).  Appends between flushes
may be lost by a crash; the sweep layer re-runs them deterministically.

The factory :func:`open_store` maps a persistence target to its backend:
``":memory:"`` → memory, a ``*.json`` path → legacy, anything else (a
directory) → sharded.  Pre-store callers that pass ``save_path="out.json"``
therefore keep today's on-disk format unchanged.
"""

from __future__ import annotations

import abc
import os
from typing import Dict, Iterable, Iterator, Optional, Set, Union

from ..sweep.records import FailedRun, RunRecord, SweepResult
from ..sweep.spec import SweepSpec

__all__ = ["RecordStore", "StoreError", "open_store"]


class StoreError(RuntimeError):
    """A record-store invariant broke (sealed-store append, bad layout, ...)."""


class RecordStore(abc.ABC):
    """Append-oriented home of one sweep's run records (see module doc).

    ``spec`` (when known) rides along so :meth:`to_result` can rebuild a
    fully aggregatable :class:`~repro.sweep.records.SweepResult` — bootstrap
    CIs are seeded from the spec's ``master_seed``.
    """

    #: short backend tag surfaced in stats/health payloads.
    kind: str = "abstract"

    spec: Optional[SweepSpec] = None

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def append(self, record: RunRecord) -> None:
        """Add one completed record (acknowledged at the next flush)."""

    @abc.abstractmethod
    def append_failed(self, failed: FailedRun) -> None:
        """Add one quarantined run (same durability contract as records)."""

    @abc.abstractmethod
    def flush(self) -> None:
        """Make every append so far durable (fsync / blob rewrite / no-op)."""

    @abc.abstractmethod
    def seal(self) -> None:
        """Mark the sweep complete; a sealed store rejects further appends."""

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def iter_records(self) -> Iterator[RunRecord]:
        """All live records, deduplicated, in ``(point_index, seed_index)``
        order.  A record supersedes any failed entry with the same run id."""

    @abc.abstractmethod
    def iter_failed(self) -> Iterator[FailedRun]:
        """Quarantined runs that no later record superseded."""

    @abc.abstractmethod
    def run_ids(self) -> Set[str]:
        """Run ids with a live *record* (failed-only ids excluded — their
        runs are still owed)."""

    @abc.abstractmethod
    def stats(self) -> Dict:
        """Counters for health/monitoring: at least ``kind``, ``records``,
        ``failed``, ``sealed``; durable backends add error/repair counters."""

    @property
    def sealed(self) -> bool:
        return False

    def close(self) -> None:
        """Release file handles; the store can be reopened later."""

    # ------------------------------------------------------------------ #
    # shared helpers
    # ------------------------------------------------------------------ #
    def to_result(self, spec: Optional[SweepSpec] = None) -> SweepResult:
        """Materialize the store as a :class:`SweepResult` (for aggregation)."""
        return SweepResult(spec=spec if spec is not None else self.spec,
                           records=list(self.iter_records()),
                           failed_runs=list(self.iter_failed()))

    def seed_from(self, records: Iterable[RunRecord]) -> int:
        """Append the records this store does not already hold; returns the
        count.  This is the legacy→sharded migration primitive: resuming an
        old single-JSON checkpoint into a sharded store seeds the prior
        records once, and re-seeding from the store's own content no-ops.
        """
        present = self.run_ids()
        seeded = 0
        for record in records:
            if record.run_id in present:
                continue
            self.append(record)
            seeded += 1
        return seeded


def open_store(target: Union[str, "RecordStore"],
               spec: Optional[SweepSpec] = None, **kwargs) -> "RecordStore":
    """Resolve a persistence target to a :class:`RecordStore` backend.

    * an existing :class:`RecordStore` passes through unchanged;
    * ``":memory:"`` → :class:`~repro.store.memory.MemoryRecordStore`;
    * a path ending in ``.json`` (or an existing regular file) →
      :class:`~repro.store.legacy.LegacyJSONRecordStore`, bit-compatible
      with the pre-store checkpoint format;
    * anything else names a directory →
      :class:`~repro.store.sharded.ShardedRecordStore` (created if missing).

    ``kwargs`` forward to the sharded backend (``records_per_shard``,
    ``fsync_interval``, ``auto_compact_shards``).
    """
    if isinstance(target, RecordStore):
        return target
    from .legacy import LegacyJSONRecordStore
    from .memory import MemoryRecordStore
    from .sharded import ShardedRecordStore
    path = os.fspath(target)
    if path == ":memory:":
        return MemoryRecordStore(spec=spec)
    if path.endswith(".json") or os.path.isfile(path):
        return LegacyJSONRecordStore(path, spec=spec)
    return ShardedRecordStore(path, spec=spec, **kwargs)
