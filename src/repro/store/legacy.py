"""The legacy single-JSON record store: bit-compatible with pre-store files.

Before :mod:`repro.store`, a sweep's checkpoint was one atomic JSON blob
written by :meth:`~repro.sweep.records.SweepResult.save` — sha256 content
digest, temp-file + fsync + ``os.replace``, ``.bak`` rotation.  This adapter
keeps that format (and its fault-injection hook) available behind the
:class:`~repro.store.base.RecordStore` contract: every :meth:`flush` rewrites
the whole blob through the very same ``SweepResult.save`` code path, so files
it produces are byte-for-byte what the old runner wrote and every existing
checkpoint keeps loading.

The cost profile is the old one too — O(total records) per flush — which is
the point: this backend exists for compatibility and as the benchmark
baseline the sharded store is measured against, not for new deployments.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, Optional, Set

from ..sweep.records import FailedRun, RunRecord, SweepResult
from ..sweep.spec import SweepSpec
from .base import RecordStore, StoreError

__all__ = ["LegacyJSONRecordStore"]


class LegacyJSONRecordStore(RecordStore):
    """Whole-blob JSON persistence behind the record-store contract.

    The store keeps an in-memory :class:`SweepResult` mirror and serializes
    it on every flush.  It starts *empty* — matching the old runner, which
    overwrote ``save_path`` with the merged result rather than appending —
    so resuming callers must :meth:`seed_from` the prior records explicitly
    (the runner does).  ``load_existing=True`` instead adopts the file's
    current content, for standalone read-modify-write use.
    """

    kind = "legacy"

    def __init__(self, path: str, spec: Optional[SweepSpec] = None,
                 load_existing: bool = False) -> None:
        self.path = path
        self.spec = spec
        self._result = SweepResult(spec=spec)
        self._sealed = False
        self._flushes = 0
        self._dirty = False
        if load_existing and (os.path.exists(path)
                              or os.path.exists(f"{path}.bak")):
            loaded = SweepResult.load_resumable(path)
            self._result = SweepResult(spec=spec or loaded.spec,
                                       records=list(loaded.records),
                                       failed_runs=list(loaded.failed_runs))
            if spec is None:
                self.spec = loaded.spec

    def append(self, record: RunRecord) -> None:
        if self._sealed:
            raise StoreError("store is sealed; the sweep is complete")
        self._result.add(record)
        self._dirty = True

    def append_failed(self, failed: FailedRun) -> None:
        if self._sealed:
            raise StoreError("store is sealed; the sweep is complete")
        self._result.failed_runs.append(failed)
        self._dirty = True

    def flush(self) -> None:
        """Rewrite the whole blob (the historical checkpoint save, exactly)."""
        self._result.save(self.path)
        self._flushes += 1
        self._dirty = False

    def seal(self) -> None:
        # Flush only unsaved appends: the runner's end-of-pass flush already
        # wrote the final state, and an extra save would rotate `.bak` again.
        if self._dirty:
            self.flush()
        self._sealed = True

    @property
    def sealed(self) -> bool:
        return self._sealed

    def iter_records(self) -> Iterator[RunRecord]:
        by_id = {record.run_id: record for record in self._result.records}
        yield from sorted(by_id.values(),
                          key=lambda r: (r.point_index, r.seed_index))

    def iter_failed(self) -> Iterator[FailedRun]:
        recorded = {record.run_id for record in self._result.records}
        by_id = {failed.run_id: failed
                 for failed in self._result.failed_runs
                 if failed.run_id not in recorded}
        yield from sorted(by_id.values(),
                          key=lambda f: (f.point_index, f.seed_index))

    def run_ids(self) -> Set[str]:
        return {record.run_id for record in self._result.records}

    def stats(self) -> Dict:
        try:
            size = os.path.getsize(self.path)
        except OSError:
            size = 0
        return {"kind": self.kind, "records": len(self.run_ids()),
                "failed": sum(1 for _ in self.iter_failed()),
                "sealed": self._sealed, "flushes": self._flushes,
                "size_bytes": size}
