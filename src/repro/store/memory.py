"""The in-memory record store: plain lists, no durability.

The reference implementation of the :class:`~repro.store.base.RecordStore`
contract — what the other backends must behave like once fsyncs and recovery
are stripped away — and the backend for unit tests and dry runs where writing
anything to disk is unwanted.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from ..sweep.records import FailedRun, RunRecord
from ..sweep.spec import SweepSpec
from .base import RecordStore, StoreError

__all__ = ["MemoryRecordStore"]


class MemoryRecordStore(RecordStore):
    """Records and failures in lists; ``flush`` is a no-op."""

    kind = "memory"

    def __init__(self, spec: Optional[SweepSpec] = None) -> None:
        self.spec = spec
        self._records: List[RunRecord] = []
        self._failed: List[FailedRun] = []
        self._sealed = False
        self._flushes = 0

    def append(self, record: RunRecord) -> None:
        if self._sealed:
            raise StoreError("store is sealed; the sweep is complete")
        self._records.append(record)

    def append_failed(self, failed: FailedRun) -> None:
        if self._sealed:
            raise StoreError("store is sealed; the sweep is complete")
        self._failed.append(failed)

    def flush(self) -> None:
        self._flushes += 1

    def seal(self) -> None:
        self._sealed = True

    @property
    def sealed(self) -> bool:
        return self._sealed

    def iter_records(self) -> Iterator[RunRecord]:
        # Last-wins dedup, then canonical order — the shared read contract.
        by_id = {record.run_id: record for record in self._records}
        yield from sorted(by_id.values(),
                          key=lambda r: (r.point_index, r.seed_index))

    def iter_failed(self) -> Iterator[FailedRun]:
        recorded = {record.run_id for record in self._records}
        by_id = {failed.run_id: failed for failed in self._failed
                 if failed.run_id not in recorded}
        yield from sorted(by_id.values(),
                          key=lambda f: (f.point_index, f.seed_index))

    def run_ids(self) -> Set[str]:
        return {record.run_id for record in self._records}

    def stats(self) -> Dict:
        return {"kind": self.kind, "records": len(set(self.run_ids())),
                "failed": sum(1 for _ in self.iter_failed()),
                "sealed": self._sealed, "flushes": self._flushes}
