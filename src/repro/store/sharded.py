"""The sharded record store: append-only JSONL shards with self-healing.

The default durable backend of :mod:`repro.store`.  One sweep's records live
in a directory::

    <store>/
      MANIFEST.json            index + spec + seal flag (fsync-then-replace)
      shards/
        shard-000001.jsonl     append-only, per-line sha256
        shard-000002.jsonl     ...
        shard-000002.jsonl.corrupt   quarantined original (post-mortem)

Each shard line is one appended outcome::

    {"seq": 17, "kind": "record", "data": {<RunRecord JSON>}, "sha256": ..}

``sha256`` is the digest of the line's canonical JSON with the digest field
removed — the same convention as the service journal and sweep checkpoints —
so any bit damage is detectable.  ``seq`` is a store-global append counter:
later lines supersede earlier ones with the same ``run_id`` (and a
``record`` supersedes a ``failed`` entry), which makes duplicate appends and
retried runs harmless by construction.

Durability: appends buffer in the OS; :meth:`flush` fsyncs the current shard
(the acknowledgement point — the runner flushes at checkpoint boundaries)
and rewrites the manifest under the journal's fsync-then-replace discipline.
``fsync_interval=n`` additionally fsyncs every ``n`` appends.  Cost per
flush is O(appends since the last flush) + O(shard count) — flat in total
record count, unlike the legacy whole-blob rewrite.

Recovery (every writable open): each shard is digest-scanned.  A damaged
*final* line is a torn write — truncated back to the last good line, like
the journal's torn tail.  Damage with intact lines after it is disk
corruption: the original shard is quarantined to ``<shard>.corrupt`` and the
intact lines rewritten in place.  Unlike the journal, recovery keeps the
digest-verified lines *after* the damage too — journal events are ordered
(everything after a broken line is untrustworthy) but sweep records are
independent and self-identifying, so dropping good records would be waste.
A missing or corrupt manifest is rebuilt from the shards — the shards, not
the manifest, are the source of truth.

Compaction merges the closed shards (never the one being appended), dropping
superseded lines; it runs on demand (:meth:`compact`), from the audit CLI,
or in a background thread once ``auto_compact_shards`` closed shards pile up.

Disk exhaustion: an append that hits ``ENOSPC`` truncates any partial line
back to the last clean boundary and defers the outcome to an in-memory
backlog (``disk_full_errors`` counts the hits, :meth:`disk_degraded` reports
the mode); every later append and every :meth:`flush` retries the backlog in
FIFO order, so durability resumes by itself when space returns.  A manifest
rewrite that hits ``ENOSPC`` is skipped outright — the shards, not the
manifest, are the source of truth, and a stale manifest already self-heals
on the next open.  Records lost with a crashed backlog were never
acknowledged by a flush, which keeps them inside the store's existing
re-run-is-harmless contract.
"""

from __future__ import annotations

import errno
import hashlib
import json
import logging
import os
import threading
import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import (Deque, Dict, Iterator, List, Optional, Sequence, Set,
                    Tuple, Union)

from ..sweep import faults
from ..sweep.records import FailedRun, RunRecord
from ..sweep.spec import SweepSpec
from .base import RecordStore, StoreError

__all__ = ["ShardedRecordStore", "StoreScanReport", "scan_store"]

logger = logging.getLogger("repro.store")

MANIFEST_NAME = "MANIFEST.json"
_SHARD_PREFIX = "shard-"
_SHARD_SUFFIX = ".jsonl"
_LINE_KINDS = ("record", "failed")


def _digest(payload: Dict, exclude: str) -> str:
    canonical = json.dumps(
        {key: value for key, value in payload.items() if key != exclude},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def _render_line(seq: int, kind: str, data: Dict) -> bytes:
    payload = {"seq": seq, "kind": kind, "data": data}
    payload["sha256"] = _digest(payload, "sha256")
    # The digest canonicalizes (sorted keys) on its own, so the stored line
    # keeps `data`'s insertion order — a record round-trips key-for-key
    # identical to what the runner appended, like the legacy blob.
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode()


def _parse_line(raw: bytes):
    """(``(seq, kind, data)``, None) for an intact line, (None, reason) else."""
    try:
        text = raw.decode()
        if not text.endswith("\n"):
            return None, "torn tail (no newline)"
        payload = json.loads(text)
        if payload.get("sha256") != _digest(payload, "sha256"):
            return None, "line digest mismatch"
        kind = payload.get("kind")
        if kind not in _LINE_KINDS:
            return None, f"unknown line kind {kind!r}"
        return (int(payload["seq"]), kind, payload["data"]), None
    except (ValueError, KeyError, TypeError, UnicodeDecodeError) as error:
        return None, f"unparseable line ({error})"


def _fsync_dir(directory: str) -> None:
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:                           # non-POSIX / odd filesystem
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def _atomic_write(path: str, data: bytes) -> None:
    """tmp + fsync + ``os.replace`` + dir fsync — the repo's durable write."""
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    _fsync_dir(os.path.dirname(os.path.abspath(path)))


@dataclass
class _ShardScan:
    """One shard file's digest-scan outcome."""

    path: str
    entries: List[Tuple[int, str, Dict]] = field(default_factory=list)
    damage: Optional[str] = None      #: first damage reason, None when clean
    good_prefix: int = 0              #: byte end of the last good line before damage
    bad_lines: int = 0
    intact_after_damage: int = 0

    @property
    def tail_only(self) -> bool:
        """Damage confined to a single final line — a crash artifact."""
        return (self.damage is not None and self.bad_lines == 1
                and self.intact_after_damage == 0)


def _scan_shard(path: str) -> _ShardScan:
    scan = _ShardScan(path=path)
    offset = 0
    with open(path, "rb") as handle:
        for raw in handle:
            end = offset + len(raw)
            parsed, problem = _parse_line(raw)
            if parsed is None:
                scan.bad_lines += 1
                if scan.damage is None:
                    scan.damage = problem
            else:
                scan.entries.append(parsed)
                if scan.damage is None:
                    scan.good_prefix = end
                else:
                    scan.intact_after_damage += 1
            offset = end
    return scan


def _spec_dict(spec: Union[SweepSpec, Dict, None]) -> Optional[Dict]:
    if spec is None:
        return None
    if isinstance(spec, SweepSpec):
        return spec.to_json_dict()
    return dict(spec)


def _canonical(payload: Optional[Dict]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class ShardedRecordStore(RecordStore):
    """Append-only sharded persistence (see module docstring).

    ``records_per_shard`` bounds a shard before the writer rolls to a new
    one; ``fsync_interval`` (None = only :meth:`flush`/:meth:`seal` fsync)
    trades durability lag for throughput; ``auto_compact_shards`` (0 = off)
    starts a background compaction once that many closed shards accumulate.

    Thread-safe: appends, flushes and compaction serialize on one lock.
    Opening is the recovery path — a store directory that went through a
    ``kill -9``, a torn write, a flipped byte or a deleted manifest comes
    back usable (with the damage counted in :meth:`stats` and quarantined
    files left for post-mortem).
    """

    kind = "sharded"

    def __init__(self, directory: str,
                 spec: Union[SweepSpec, Dict, None] = None,
                 records_per_shard: int = 4096,
                 fsync_interval: Optional[int] = None,
                 auto_compact_shards: int = 0) -> None:
        if records_per_shard < 1:
            raise ValueError("records_per_shard must be a positive line count")
        if fsync_interval is not None and fsync_interval < 1:
            raise ValueError("fsync_interval must be a positive append count "
                             "(or None to fsync only on flush)")
        self.directory = os.path.abspath(os.fspath(directory))
        self.shards_dir = os.path.join(self.directory, "shards")
        self.manifest_path = os.path.join(self.directory, MANIFEST_NAME)
        self.records_per_shard = records_per_shard
        self.fsync_interval = fsync_interval
        self.auto_compact_shards = auto_compact_shards
        self._lock = threading.RLock()
        self._handle = None
        self._pending = 0
        self._sealed = False
        self._seq = 0
        self._current: Optional[str] = None    # current shard file name
        self._shard_lines: Dict[str, int] = {}
        self._record_seq: Dict[str, int] = {}  # run_id -> winning record seq
        self._failed_seq: Dict[str, int] = {}  # run_id -> winning failed seq
        self._compactor: Optional[threading.Thread] = None
        #: outcomes deferred by ENOSPC: (seq, kind, data, run_id), FIFO.
        self._backlog: Deque[Tuple[int, str, Dict, str]] = deque()
        self._counters = {
            "appended_records": 0, "appended_failed": 0, "flushes": 0,
            "fsyncs": 0, "torn_tail_dropped": 0, "corrupt_lines_dropped": 0,
            "shards_quarantined": 0, "manifest_rebuilds": 0, "compactions": 0,
            "disk_full_errors": 0,
        }
        os.makedirs(self.shards_dir, exist_ok=True)
        self._recover(_spec_dict(spec))

    # ------------------------------------------------------------------ #
    # recovery (open)
    # ------------------------------------------------------------------ #
    def _recover(self, given_spec: Optional[Dict]) -> None:
        manifest, manifest_problem = self._read_manifest()
        shard_names = self._list_shards()
        for name in shard_names:
            entries = self._recover_shard(name)
            self._shard_lines[name] = len(entries)
            for seq, kind, data in entries:
                self._register(seq, kind, data)
                self._seq = max(self._seq, seq)
        if manifest is not None:
            self._seq = max(self._seq, int(manifest.get("next_seq", 0)))
            self._sealed = bool(manifest.get("sealed", False))
        stored_spec = manifest.get("spec") if manifest else None
        if given_spec is not None and stored_spec is not None \
                and _canonical(given_spec) != _canonical(stored_spec):
            raise StoreError(
                f"store {self.directory!r} belongs to a different sweep "
                f"(spec {stored_spec.get('name')!r}); refusing to mix — "
                "point the runner at a fresh directory")
        self._spec_dict = given_spec if given_spec is not None else stored_spec
        self.spec = SweepSpec.from_json_dict(self._spec_dict) \
            if self._spec_dict else None
        if manifest_problem is not None and shard_names:
            # A store with shards but no (usable) index: self-heal from the
            # shards and make the loss visible in stats.
            self._counters["manifest_rebuilds"] += 1
            logger.warning(
                "record store %s: manifest %s; rebuilt from %d shard(s)",
                self.directory, manifest_problem, len(shard_names))
        if shard_names and self._shard_lines.get(
                shard_names[-1], 0) < self.records_per_shard:
            self._current = shard_names[-1]
        else:
            self._current = self._next_shard_name()
            self._shard_lines.setdefault(self._current, 0)
        self._write_manifest()

    def _recover_shard(self, name: str) -> List[Tuple[int, str, Dict]]:
        path = os.path.join(self.shards_dir, name)
        scan = _scan_shard(path)
        if scan.damage is None:
            return scan.entries
        if scan.tail_only:
            # A crash mid-append: truncate back to the last good line.
            self._counters["torn_tail_dropped"] += 1
            with open(path, "r+b") as handle:
                handle.truncate(scan.good_prefix)
                handle.flush()
                os.fsync(handle.fileno())
            logger.warning(
                "record store %s: shard %s had a torn tail (%s); truncated "
                "to %d byte(s), %d line(s) kept", self.directory, name,
                scan.damage, scan.good_prefix, len(scan.entries))
            return scan.entries
        # Mid-shard corruption: quarantine the original, keep every
        # digest-verified line (records are independent — see module doc).
        corrupt_path = f"{path}.corrupt"
        self._counters["shards_quarantined"] += 1
        self._counters["corrupt_lines_dropped"] += scan.bad_lines
        warnings.warn(
            f"record shard {path!r} is corrupt beyond its tail "
            f"({scan.damage}; {scan.bad_lines} bad line(s)); quarantining "
            f"the original to {corrupt_path!r} and keeping the "
            f"{len(scan.entries)} intact line(s)", RuntimeWarning,
            stacklevel=4)
        logger.error(
            "record store %s: shard %s mid-file corruption (%s); original "
            "quarantined to %s, %d line(s) recovered", self.directory, name,
            scan.damage, corrupt_path, len(scan.entries))
        os.replace(path, corrupt_path)
        _atomic_write(path, b"".join(_render_line(seq, kind, data)
                                     for seq, kind, data in scan.entries))
        return scan.entries

    def _register(self, seq: int, kind: str, data: Dict) -> None:
        run_id = data.get("run_id")
        if run_id is None:
            return
        winners = self._record_seq if kind == "record" else self._failed_seq
        if seq >= winners.get(run_id, -1):
            winners[run_id] = seq

    # ------------------------------------------------------------------ #
    # manifest
    # ------------------------------------------------------------------ #
    def _read_manifest(self):
        """(payload, None) when usable; (None, problem) when missing/bad."""
        if not os.path.exists(self.manifest_path):
            return None, "missing"
        try:
            with open(self.manifest_path) as handle:
                payload = json.load(handle)
            if payload.get("version") != 1:
                return None, f"unsupported version {payload.get('version')!r}"
            integrity = payload.get("integrity")
            if integrity is not None and \
                    integrity.get("digest") != _digest(payload, "integrity"):
                return None, "digest mismatch"
            return payload, None
        except (OSError, ValueError) as error:
            return None, f"unreadable ({error})"

    def _write_manifest(self) -> None:
        live_failed = sum(1 for run_id in self._failed_seq
                          if run_id not in self._record_seq)
        payload = {
            "version": 1,
            "format": "sharded-record-store",
            "spec": self._spec_dict,
            "sealed": self._sealed,
            "next_seq": self._seq,
            "records_per_shard": self.records_per_shard,
            "shards": [{"name": name, "lines": self._shard_lines[name]}
                       for name in sorted(self._shard_lines)],
            "counters": {"records": len(self._record_seq),
                         "failed": live_failed},
        }
        payload["integrity"] = {"algorithm": "sha256",
                                "digest": _digest(payload, "integrity")}
        try:
            faults.disk_full_fault(self.manifest_path, "manifest")
            _atomic_write(self.manifest_path,
                          json.dumps(payload, indent=2).encode())
        except OSError as error:
            if error.errno != errno.ENOSPC:
                raise
            # A stale manifest is already survivable (it rebuilds from the
            # shards on the next open), so a full disk just skips the write.
            self._counters["disk_full_errors"] += 1
            logger.warning(
                "record store %s: disk full writing manifest; leaving the "
                "stale one (shards are the source of truth)", self.directory)
            try:
                os.unlink(f"{self.manifest_path}.tmp")
            except OSError:
                pass
            return
        # Chaos sites: lose the manifest we just wrote (self-heal must cover
        # it), or kill the process right after the rewrite.
        faults.manifest_fault(self.manifest_path)
        faults.service_fault("recordstore:manifest")

    # ------------------------------------------------------------------ #
    # shard bookkeeping
    # ------------------------------------------------------------------ #
    def _list_shards(self) -> List[str]:
        try:
            names = os.listdir(self.shards_dir)
        except FileNotFoundError:
            return []
        return sorted(name for name in names
                      if name.startswith(_SHARD_PREFIX)
                      and name.endswith(_SHARD_SUFFIX))

    def _next_shard_name(self) -> str:
        highest = 0
        for name in self._shard_lines:
            try:
                highest = max(highest,
                              int(name[len(_SHARD_PREFIX):-len(_SHARD_SUFFIX)]))
            except ValueError:
                continue
        return f"{_SHARD_PREFIX}{highest + 1:06d}{_SHARD_SUFFIX}"

    def _current_path(self) -> str:
        return os.path.join(self.shards_dir, self._current)

    def _shard_handle(self):
        if self._handle is None or self._handle.closed:
            self._handle = open(self._current_path(), "ab")
        return self._handle

    def _fsync_current(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.flush()
            if self._pending:
                os.fsync(self._handle.fileno())
                self._counters["fsyncs"] += 1
                self._pending = 0

    def _roll(self) -> None:
        """Close the full shard and start the next (manifest records it)."""
        self._fsync_current()
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._current = self._next_shard_name()
        self._shard_lines[self._current] = 0
        self._write_manifest()
        faults.service_fault("recordstore:roll")
        self._maybe_auto_compact()

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def append(self, record: RunRecord) -> None:
        self._append_line("record", record.to_json_dict(), record.run_id)
        self._counters["appended_records"] += 1

    def append_failed(self, failed: FailedRun) -> None:
        self._append_line("failed", failed.to_json_dict(), failed.run_id)
        self._counters["appended_failed"] += 1

    def _append_line(self, kind: str, data: Dict, run_id: str) -> None:
        with self._lock:
            if self._sealed:
                raise StoreError(
                    f"store {self.directory!r} is sealed; the sweep is "
                    "complete and rejects new outcomes")
            # Kill-before-write site: the record was never acknowledged, so
            # losing it entirely is within contract.
            faults.service_fault(f"recordstore:append:{run_id}")
            self._seq += 1
            seq = self._seq
            self._register(seq, kind, data)
            self._drain_backlog_locked()
            if self._backlog:
                # Still out of space: keep FIFO order behind the backlog.
                self._backlog.append((seq, kind, data, run_id))
                return
            try:
                self._write_entry(seq, kind, data, run_id)
            except OSError as error:
                if error.errno != errno.ENOSPC:
                    raise
                self._counters["disk_full_errors"] += 1
                self._backlog.append((seq, kind, data, run_id))
                logger.warning(
                    "record store %s: disk full appending %s %s; deferring "
                    "(%d outcome(s) backlogged)", self.directory, kind,
                    run_id, len(self._backlog))

    def _write_entry(self, seq: int, kind: str, data: Dict,
                     run_id: str) -> None:
        """One durable shard-line write; no partial line survives a failure."""
        path = self._current_path()
        faults.disk_full_fault(path, f"shard:{run_id}")
        line = _render_line(seq, kind, data)
        start = os.path.getsize(path) if os.path.exists(path) else 0
        handle = self._shard_handle()
        try:
            handle.write(line)
            handle.flush()
        except OSError:
            self._truncate_back(path, start)
            raise
        # Torn-write site: between the write and any fsync, like the
        # journal's.  Tears the line and kills the process.
        faults.shard_fault(path, len(line), f"{kind}:{run_id}")
        self._pending += 1
        self._shard_lines[self._current] += 1
        if self.fsync_interval is not None \
                and self._pending >= self.fsync_interval:
            self._fsync_current()
        if self._shard_lines[self._current] >= self.records_per_shard:
            self._roll()

    def _truncate_back(self, path: str, offset: int) -> None:
        """Best-effort drop of a partial line (truncation releases space)."""
        try:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
            if os.path.exists(path) and os.path.getsize(path) > offset:
                with open(path, "r+b") as handle:
                    handle.truncate(offset)
                    handle.flush()
                    os.fsync(handle.fileno())
        except OSError:                       # pragma: no cover - best effort
            pass

    def _drain_backlog_locked(self) -> None:
        while self._backlog:
            seq, kind, data, run_id = self._backlog[0]
            try:
                self._write_entry(seq, kind, data, run_id)
            except OSError as error:
                if error.errno != errno.ENOSPC:
                    raise
                self._counters["disk_full_errors"] += 1
                return
            self._backlog.popleft()

    def disk_degraded(self) -> bool:
        """True while ENOSPC-deferred outcomes are waiting for disk space."""
        with self._lock:
            return bool(self._backlog)

    def flush(self) -> None:
        """Acknowledge everything appended so far (fsync + manifest).

        On a full disk the flush degrades instead of raising: the backlog is
        retried, and when lines are still deferred the manifest rewrite is
        skipped — an acknowledgement it cannot honestly give.
        """
        with self._lock:
            try:
                self._drain_backlog_locked()
                self._fsync_current()
            except OSError as error:
                if error.errno != errno.ENOSPC:
                    raise
                self._counters["disk_full_errors"] += 1
                return
            if self._backlog:
                return
            # Kill-after-fsync site: flushed records must survive this.
            faults.service_fault("recordstore:flush")
            self._write_manifest()
            self._counters["flushes"] += 1
            if os.path.exists(self._current_path()):
                # Latent-corruption site: flips a byte *after* durability,
                # so the next open must quarantine, not lose the flush.
                faults.shard_corrupt_fault(self._current_path())
            self._maybe_auto_compact()

    def seal(self) -> None:
        with self._lock:
            self._drain_backlog_locked()
            if self._backlog:
                raise StoreError(
                    f"store {self.directory!r} cannot seal: {len(self._backlog)}"
                    " outcome(s) are still deferred by a full disk")
            self._fsync_current()
            self._sealed = True
            self._write_manifest()

    @property
    def sealed(self) -> bool:
        return self._sealed

    def close(self) -> None:
        with self._lock:
            try:
                self._drain_backlog_locked()
            except OSError:                   # pragma: no cover - best effort
                pass
            if self._handle is not None:
                self._handle.close()
                self._handle = None
        compactor = self._compactor
        if compactor is not None and compactor.is_alive():
            compactor.join(timeout=5.0)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def _collect(self) -> Tuple[Dict[str, Tuple[int, Dict]],
                                Dict[str, Tuple[int, Dict]]]:
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                self._handle.flush()
            names = self._list_shards()
        records: Dict[str, Tuple[int, Dict]] = {}
        failed: Dict[str, Tuple[int, Dict]] = {}
        for name in names:
            try:
                scan = _scan_shard(os.path.join(self.shards_dir, name))
            except FileNotFoundError:     # compacted away mid-read
                continue
            for seq, kind, data in scan.entries:
                run_id = data.get("run_id")
                winners = records if kind == "record" else failed
                previous = winners.get(run_id)
                if previous is None or seq >= previous[0]:
                    winners[run_id] = (seq, data)
        for run_id in records:
            failed.pop(run_id, None)
        return records, failed

    def iter_records(self) -> Iterator[RunRecord]:
        records, _ = self._collect()
        parsed = [RunRecord.from_json_dict(data)
                  for _, data in records.values()]
        yield from sorted(parsed, key=lambda r: (r.point_index, r.seed_index))

    def iter_failed(self) -> Iterator[FailedRun]:
        _, failed = self._collect()
        parsed = [FailedRun.from_json_dict(data)
                  for _, data in failed.values()]
        yield from sorted(parsed, key=lambda f: (f.point_index, f.seed_index))

    def run_ids(self) -> Set[str]:
        with self._lock:
            return set(self._record_seq)

    def stats(self) -> Dict:
        with self._lock:
            size = 0
            for name in self._list_shards():
                try:
                    size += os.path.getsize(os.path.join(self.shards_dir,
                                                         name))
                except OSError:
                    pass
            live_failed = sum(1 for run_id in self._failed_seq
                              if run_id not in self._record_seq)
            stats = {"kind": self.kind, "records": len(self._record_seq),
                     "failed": live_failed, "sealed": self._sealed,
                     "shards": len(self._shard_lines), "size_bytes": size,
                     "backlog": len(self._backlog)}
            stats.update(self._counters)
            return stats

    # ------------------------------------------------------------------ #
    # compaction
    # ------------------------------------------------------------------ #
    def _maybe_auto_compact(self) -> None:
        if self.auto_compact_shards <= 0:
            return
        closed = [name for name in self._shard_lines if name != self._current]
        if len(closed) < self.auto_compact_shards:
            return
        if self._compactor is not None and self._compactor.is_alive():
            return
        self._compactor = threading.Thread(
            target=self._compact_quietly, name="record-store-compactor",
            daemon=True)
        self._compactor.start()

    def _compact_quietly(self) -> None:
        try:
            self.compact()
        except Exception:                     # pragma: no cover - defensive
            logger.exception("record store %s: background compaction failed",
                             self.directory)

    def compact(self) -> int:
        """Merge the closed shards, dropping superseded lines.

        The current shard is never touched, so compaction can run while a
        sweep appends.  Returns the number of dropped lines.  Crash-safe by
        ordering: the merged file replaces the lowest-numbered closed shard
        *atomically* first, then the absorbed shards unlink — a crash in
        between leaves duplicate lines, which the ``seq`` dedup makes
        harmless on the next read/open.
        """
        with self._lock:
            closed = [name for name in sorted(self._shard_lines)
                      if name != self._current]
            if not closed:
                return 0
            survivors: List[Tuple[int, str, Dict]] = []
            total = 0
            for name in closed:
                path = os.path.join(self.shards_dir, name)
                try:
                    scan = _scan_shard(path)
                except FileNotFoundError:
                    continue
                for seq, kind, data in scan.entries:
                    total += 1
                    run_id = data.get("run_id")
                    if kind == "record":
                        if self._record_seq.get(run_id) == seq:
                            survivors.append((seq, kind, data))
                    elif run_id not in self._record_seq \
                            and self._failed_seq.get(run_id) == seq:
                        survivors.append((seq, kind, data))
            survivors.sort(key=lambda entry: entry[0])
            dropped = total - len(survivors)
            if dropped == 0 and len(closed) == 1:
                return 0                      # nothing to merge or drop
            target = closed[0]
            target_path = os.path.join(self.shards_dir, target)
            if survivors:
                _atomic_write(target_path,
                              b"".join(_render_line(seq, kind, data)
                                       for seq, kind, data in survivors))
                self._shard_lines[target] = len(survivors)
            else:
                try:
                    os.unlink(target_path)
                except FileNotFoundError:
                    pass
                self._shard_lines.pop(target, None)
            for name in closed[1:]:
                try:
                    os.unlink(os.path.join(self.shards_dir, name))
                except FileNotFoundError:
                    pass
                self._shard_lines.pop(name, None)
            self._counters["compactions"] += 1
            self._write_manifest()
            logger.info(
                "record store %s: compacted %d shard(s) -> %d line(s) "
                "(%d dropped)", self.directory, len(closed), len(survivors),
                dropped)
            return dropped


# ---------------------------------------------------------------------- #
# read-only scanning (audit CLI, service paging)
# ---------------------------------------------------------------------- #
@dataclass
class StoreScanReport:
    """A non-mutating integrity scan of a store directory.

    Produced by :func:`scan_store` — nothing on disk changes, so it is safe
    against a live store (the service's records endpoint uses it) and is the
    "diagnose" half of the audit doctor (open-for-write is the "repair"
    half).
    """

    directory: str
    manifest_present: bool = False
    manifest_valid: bool = False
    manifest_problem: Optional[str] = None
    sealed: bool = False
    shards: List[Dict] = field(default_factory=list)
    records: List[RunRecord] = field(default_factory=list)
    failed: List[FailedRun] = field(default_factory=list)
    superseded_lines: int = 0     #: lines a later seq/record superseded
    quarantined_files: int = 0    #: `.corrupt` files present (past damage)
    problems: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.problems

    def to_json_dict(self) -> Dict:
        return {
            "directory": self.directory,
            "clean": self.clean,
            "manifest": {"present": self.manifest_present,
                         "valid": self.manifest_valid,
                         "problem": self.manifest_problem},
            "sealed": self.sealed,
            "shards": self.shards,
            "records": len(self.records),
            "failed": len(self.failed),
            "superseded_lines": self.superseded_lines,
            "quarantined_files": self.quarantined_files,
            "problems": self.problems,
        }


def scan_store(directory: str) -> StoreScanReport:
    """Digest-verify every line of a store directory without touching it."""
    directory = os.path.abspath(os.fspath(directory))
    report = StoreScanReport(directory=directory)
    shards_dir = os.path.join(directory, "shards")
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    if os.path.exists(manifest_path):
        report.manifest_present = True
        try:
            with open(manifest_path) as handle:
                payload = json.load(handle)
            integrity = payload.get("integrity")
            if payload.get("version") != 1:
                report.manifest_problem = "unsupported version"
            elif integrity is not None and \
                    integrity.get("digest") != _digest(payload, "integrity"):
                report.manifest_problem = "digest mismatch"
            else:
                report.manifest_valid = True
                report.sealed = bool(payload.get("sealed", False))
        except (OSError, ValueError) as error:
            report.manifest_problem = f"unreadable ({error})"
    else:
        report.manifest_problem = "missing"
    manifest_lines: Dict[str, int] = {}
    if report.manifest_valid:
        try:
            for entry in payload.get("shards", ()):
                manifest_lines[entry["name"]] = int(entry["lines"])
        except (KeyError, TypeError, ValueError):
            report.manifest_valid = False
            report.manifest_problem = "malformed shard index"

    try:
        names = sorted(name for name in os.listdir(shards_dir)
                       if name.endswith(_SHARD_SUFFIX)
                       and name.startswith(_SHARD_PREFIX))
        report.quarantined_files = sum(
            1 for name in os.listdir(shards_dir) if name.endswith(".corrupt"))
    except FileNotFoundError:
        names = []
    records: Dict[str, Tuple[int, Dict]] = {}
    failed: Dict[str, Tuple[int, Dict]] = {}
    total_lines = 0
    for name in names:
        scan = _scan_shard(os.path.join(shards_dir, name))
        lines = len(scan.entries)
        total_lines += lines + scan.bad_lines
        shard_report = {"name": name, "lines": lines,
                        "bad_lines": scan.bad_lines,
                        "torn_tail": bool(scan.damage) and scan.tail_only,
                        "mid_shard_damage": bool(scan.damage)
                        and not scan.tail_only}
        report.shards.append(shard_report)
        if scan.damage is not None:
            kind = "torn tail" if scan.tail_only else "mid-shard corruption"
            report.problems.append(
                f"{name}: {kind} ({scan.damage}; {scan.bad_lines} bad "
                f"line(s))")
        if report.manifest_valid and name in manifest_lines \
                and manifest_lines[name] != lines:
            report.problems.append(
                f"{name}: manifest says {manifest_lines[name]} line(s), "
                f"shard holds {lines}")
        for seq, kind, data in scan.entries:
            run_id = data.get("run_id")
            winners = records if kind == "record" else failed
            previous = winners.get(run_id)
            if previous is None or seq >= previous[0]:
                winners[run_id] = (seq, data)
    if report.manifest_valid:
        for name in manifest_lines:
            if name not in set(names):
                report.problems.append(
                    f"{name}: listed in the manifest but missing on disk")
    if not report.manifest_valid and names:
        report.problems.append(f"manifest {report.manifest_problem}")
    for run_id in records:
        failed.pop(run_id, None)
    report.records = sorted(
        (RunRecord.from_json_dict(data) for _, data in records.values()),
        key=lambda r: (r.point_index, r.seed_index))
    report.failed = sorted(
        (FailedRun.from_json_dict(data) for _, data in failed.values()),
        key=lambda f: (f.point_index, f.seed_index))
    report.superseded_lines = total_lines - sum(
        s["bad_lines"] for s in report.shards) - len(records) - len(failed)
    return report
