"""Parallel multi-seed parameter sweeps over the cycle-level runtime.

The paper's figures are sweeps over independent simulations: Fig. 18 sweeps
the Algorithm-2 beta window, Sec. 6.6 sweeps a workload/controller portfolio,
Figs. 19/20 sweep ablation steps.  This package makes those first-class:

* :class:`~repro.sweep.spec.SweepSpec` — a declarative cartesian grid
  (workloads x controllers x modes x betas x stress knobs) with a seed
  ensemble, expanded into picklable :class:`~repro.sweep.spec.RunSpec`s with
  ``SeedSequence``-derived per-run seeds;
* :class:`~repro.sweep.runner.SweepRunner` — executes runs through a pluggable
  executor (:class:`~repro.sweep.runner.SerialExecutor` or the chunked
  :class:`~repro.sweep.runner.PoolExecutor`); workers rebuild workloads from
  specs (:mod:`repro.sweep.builders`) so nothing heavyweight crosses the pipe;
* :class:`~repro.sweep.records.SweepResult` — per-point mean/std and bootstrap
  confidence intervals over the seed ensemble, JSON persistence, and
  resume-from-partial that aggregates identically to a fresh run.

Serial and pool execution are bit-for-bit equivalent for the same spec and
master seed; ``tests/test_sweep.py`` enforces the contract.

Fault tolerance: executors armed with a
:class:`~repro.sweep.spec.RetryPolicy` (and, for the pool, a per-run
``run_timeout``) retry transient failures, survive hung runs and dead
workers by rebuilding the fleet, and quarantine runs that exhaust their
budget into :attr:`SweepResult.failed_runs` — see
:mod:`repro.sweep.runner` and the deterministic chaos harness in
:mod:`repro.sweep.faults`.
"""

from .builders import (
    build_compiled_workload,
    clear_workload_cache,
    register_workload_builder,
)
from .faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    arm_faults,
    disarm_faults,
    injected_faults,
)
from .records import (
    METRIC_NAMES,
    FailedRun,
    MetricStats,
    PointSummary,
    RunRecord,
    SweepResult,
    bound_traceback,
)
from .runner import (
    ExecutorStats,
    PoolExecutor,
    SerialExecutor,
    SweepProgress,
    SweepRunner,
    execute_ensemble,
    execute_run,
    execute_work,
    run_sweeps,
)
from .spec import (
    EnsembleSpec,
    RetryPolicy,
    RunSpec,
    SweepSpec,
    WorkloadSpec,
    batch_key,
    ensemble_seed,
    group_into_ensembles,
    run_seed,
)

__all__ = [
    "SweepSpec", "RunSpec", "WorkloadSpec", "run_seed", "ensemble_seed",
    "EnsembleSpec", "batch_key", "group_into_ensembles",
    "SweepRunner", "SerialExecutor", "PoolExecutor", "execute_run", "run_sweeps",
    "execute_ensemble", "execute_work", "ExecutorStats", "SweepProgress",
    "SweepResult", "RunRecord", "FailedRun", "MetricStats", "PointSummary",
    "METRIC_NAMES", "RetryPolicy", "bound_traceback",
    "register_workload_builder", "build_compiled_workload", "clear_workload_cache",
    "FaultSpec", "FaultPlan", "InjectedFault",
    "arm_faults", "disarm_faults", "injected_faults",
]
