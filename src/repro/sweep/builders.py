"""Worker-side construction of compiled workloads from :class:`WorkloadSpec`s.

Sweep workers never receive a compiled workload over the pipe — a chip image
holds numpy weight matrices for every loaded macro and pickling it per run
would dwarf the simulation itself.  Instead each worker process reconstructs
the workload from its (tiny, picklable) :class:`~repro.sweep.spec.WorkloadSpec`
through a registered *builder* function and memoizes it in a per-process cache,
so a worker pays the construction cost once per distinct workload no matter how
many grid points share it.  Construction is deterministic (every builder seeds
its RNGs from the spec), which is half of the sweep determinism contract; the
other half is the seed derivation in :mod:`repro.sweep.spec`.

Two builders ship by default:

* ``"model"`` — the full paper flow: QAT (optionally LHR-regularized) on a
  model-zoo network, profile extraction, WDS + task mapping, chip load.  This
  is what the benchmark harnesses sweep.
* ``"synthetic"`` — random Laplace-code conv/linear/attention operators
  compiled directly, no training.  Milliseconds per build; used by the tier-1
  sweep tests and the examples.

Custom builders can be registered with :func:`register_workload_builder`; they
must be module-level functions (picklable by reference) taking a
:class:`WorkloadSpec` and returning a
:class:`~repro.sim.compiler.CompiledWorkload`.  Registration is per-process:
``fork``-started pool workers inherit the parent's registry, but
``spawn``-started workers only see builders registered at import time of a
module they import too.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..pim.config import small_chip_config
from ..pim.dataflow import Operator
from ..sim.compiler import CompiledWorkload, CompilerConfig, compile_workload
from ..workloads.profiles import WorkloadProfile, build_workload_profile
from .spec import WorkloadSpec, workload_fingerprint

__all__ = [
    "register_workload_builder",
    "build_compiled_workload",
    "clear_workload_cache",
]

_BUILDERS: Dict[str, Callable[[WorkloadSpec], CompiledWorkload]] = {}

#: Per-process memo of built workloads.  With the default ``fork`` start
#: method, pool workers inherit the parent's already-built entries for free.
_CACHE: Dict[WorkloadSpec, CompiledWorkload] = {}


def register_workload_builder(name: str,
                              builder: Callable[[WorkloadSpec], CompiledWorkload],
                              overwrite: bool = False) -> None:
    """Register a builder under ``WorkloadSpec.builder == name``."""
    if name in _BUILDERS and not overwrite:
        raise ValueError(f"builder {name!r} is already registered")
    _BUILDERS[name] = builder


def build_compiled_workload(spec: WorkloadSpec) -> CompiledWorkload:
    """Build (or fetch from the per-process cache) the workload for ``spec``."""
    cached = _CACHE.get(spec)
    if cached is not None:
        return cached
    try:
        builder = _BUILDERS[spec.builder]
    except KeyError:
        raise KeyError(f"unknown workload builder {spec.builder!r}; "
                       f"registered: {sorted(_BUILDERS)}") from None
    compiled = builder(spec)
    # Tag the image with the spec's deterministic fingerprint: the simulation
    # engine keys its process-level per-(group, level) physics cache
    # (repro.sim.level_cache) on it, so every run of any rebuild of this spec
    # — across betas, controllers and modes — shares the same entries.
    compiled.cache_key = workload_fingerprint(spec)
    _CACHE[spec] = compiled
    return compiled


def clear_workload_cache() -> None:
    """Drop the per-process workload memo (tests and memory-bounded sweeps)."""
    _CACHE.clear()


# ---------------------------------------------------------------------- #
# built-in builders
# ---------------------------------------------------------------------- #
def _chip_and_config(spec: WorkloadSpec):
    chip = small_chip_config(groups=spec.groups,
                             macros_per_group=spec.macros_per_group,
                             banks=spec.banks, rows=spec.rows)
    config = CompilerConfig(bits=spec.bits, wds_delta=spec.wds_delta,
                            mapping_strategy=spec.mapping, mode=spec.mode,
                            max_tasks_per_operator=spec.max_tasks_per_operator,
                            seed=spec.compile_seed)
    return chip, config


def build_model_workload(spec: WorkloadSpec) -> CompiledWorkload:
    """QAT-train ``spec.model`` and compile it onto the spec's chip geometry.

    This mirrors the cached flow of ``benchmarks/common.py`` (same QAT
    hyper-parameters, same profile construction) so sweeps over the benchmark
    workloads reproduce the single-run harness numbers exactly.
    """
    from ..models import get_model_spec
    from ..quant import QATConfig, run_qat

    model_spec = get_model_spec(spec.model)
    qat = run_qat(model_spec, QATConfig(
        bits=spec.bits, epochs=spec.qat_epochs,
        learning_rate=spec.qat_learning_rate,
        lhr_lambda=2.0 if spec.lhr else 0.0, seed=spec.compile_seed))
    profile = build_workload_profile(
        qat.model, name=spec.model, family=model_spec.family,
        codes_by_layer=qat.weight_codes(), bits=spec.bits,
        attention_seq_len=spec.attention_seq_len, seed=spec.compile_seed)
    chip, config = _chip_and_config(spec)
    return compile_workload(profile, chip, config=config)


def build_synthetic_workload(spec: WorkloadSpec) -> CompiledWorkload:
    """Random mixed-operator workload: fast, deterministic, training-free.

    Operators cycle through conv / linear / qk_t kinds with Laplace-distributed
    codes of scale ``spec.code_spread`` sized to the spec's macro geometry, so
    the compiled image exercises both weight-stationary and input-determined
    groups without any QAT cost.
    """
    rng_seed = spec.compile_seed
    qmax = (1 << (spec.bits - 1)) - 1
    kinds = ("conv", "linear", "qk_t")
    operator_rows = spec.operator_rows or spec.rows
    operators = []
    for i in range(spec.n_operators):
        rng = np.random.default_rng(rng_seed + 31 * i)
        codes = np.clip(
            np.round(rng.laplace(0.0, spec.code_spread,
                                 size=(operator_rows, spec.banks))),
            -qmax - 1, qmax).astype(np.int64)
        kind = kinds[i % len(kinds)]
        operators.append(Operator(name=f"syn{i}.{kind}", kind=kind,
                                  codes=codes, bits=spec.bits))
    profile = WorkloadProfile(name=spec.name, family="mixed",
                              operators=operators)
    chip, config = _chip_and_config(spec)
    return compile_workload(profile, chip, config=config)


register_workload_builder("model", build_model_workload)
register_workload_builder("synthetic", build_synthetic_workload)
