"""Deterministic fault injection for the sweep and store stack.

The fault-tolerance layer (supervised executors, checkpoint integrity, store
checksums) is only trustworthy if its failure paths are *exercised* — so this
module provides the chaos harness that drives them: a registry of injectable
faults, armed explicitly (programmatically or via the ``REPRO_FAULTS``
environment variable) and **never active by default**.  Every injection site
is a cheap no-op when nothing is armed.

Fault kinds
-----------
Run faults fire inside :func:`~repro.sweep.runner.execute_run`, in whichever
process executes the run:

* ``"raise"`` — raise :class:`InjectedFault` (an ordinary exception — the
  retry/quarantine path);
* ``"kill"`` — ``os._exit(KILL_EXIT_CODE)`` — an abrupt worker death.
  ``multiprocessing.Pool`` silently respawns the worker but the in-flight
  chunk is lost forever, which is exactly the condition the supervised
  executor's deadline watchdog exists to catch;
* ``"hang"`` — sleep past any reasonable deadline (a wedged run).

File faults fire after a write completes, damaging it the way a disk or an
interrupted process would:

* ``"checkpoint_truncate"`` / ``"checkpoint_corrupt"`` — truncate or
  byte-flip a just-saved sweep checkpoint (driven from
  :meth:`~repro.sweep.records.SweepResult.save`);
* ``"store_flip"`` — flip one byte in a just-published
  :class:`~repro.sim.shared_store.SharedPhysicsStore` ``.bin`` entry.

Record-store faults damage a :class:`~repro.store.ShardedRecordStore` the
three ways an append-only shard directory can rot:

* ``"shard_torn"`` — tear the shard line just appended (truncate it mid-line)
  **and** kill the process, exactly like ``"journal_torn"``: torn writes are
  crash artifacts, so the kill is part of the fault.  Targets look like
  ``"<shard path>#record:<run_id>"`` (or ``#failed:<run_id>``);
* ``"shard_corrupt"`` — flip one mid-file byte of the current shard after a
  flush, *without* killing: latent disk damage the store must quarantine on
  its next open, not crash on;
* ``"manifest_lost"`` — unlink the store manifest right after it was
  rewritten: the store must self-heal by rebuilding it from the shards.

Service faults fire inside the sweep daemon (:mod:`repro.service`), modelling
a crash of the *long-running process itself*:

* ``"daemon_kill"`` — ``os._exit(KILL_EXIT_CODE)`` at a named service site
  (targets look like ``"registry:done:j000001"`` or ``"drain"`` — see
  :func:`service_fault`'s call sites), i.e. a ``kill -9`` of the daemon
  between a journal append and the work it describes;
* ``"journal_torn"`` — tear the journal line just appended (truncate it
  mid-line) **and** kill the process: a torn write is what a crash leaves
  behind, so the two are inseparable — a daemon that kept running after one
  would corrupt its own journal mid-file, which real torn writes cannot do.
  Targets look like ``"<path>#<event>:<job_id>"``, so ``match`` can select
  the journal event to tear;
* ``"disk_full"`` — raise ``OSError(ENOSPC)`` at a durability write site
  *before* the write happens (:func:`disk_full_fault` — journal appends,
  record-store shard appends, manifest rewrites, shared-store publishes).
  ``times`` bounds how many writes fail, after which "space returns": the
  degraded-mode recovery paths must then drain their backlogs;
* ``"lease_stolen"`` — rewrite the state-dir lease file with a foreign
  owner right after a heartbeat renewal (:func:`lease_fault`), modelling an
  operator or split-brain peer stealing the lease out from under a live
  daemon.  The holder must notice on its next heartbeat and fence itself.

Determinism contract
--------------------
Whether a run fault fires is a pure function of ``(plan salt, fault, run_id,
attempt)`` — independent of execution order, executor choice and scheduling —
so chaos tests are reproducible and serial/pool comparisons remain
meaningful.  ``times`` bounds firing *per attempt number*: a fault with
``times=1`` fires on a run's first attempt and lets every retry through,
which is how transient failures are modelled (the statelessness matters —
a killed worker takes its memory with it, so nothing observable may depend
on in-process fire counters).  File faults are counter-gated per process
(fire on the first ``times`` matching writes).

Arming
------
Programmatic::

    with injected_faults(FaultSpec(kind="kill", match="p0001")):
        SweepRunner(spec, PoolExecutor(run_timeout=2.0, ...)).run()

``fork``-started pool workers inherit the armed plan; ``spawn`` workers do
not — use the environment form for those::

    REPRO_FAULTS='[{"kind": "raise", "match": "p0002", "times": 1}]'

The environment plan is parsed lazily on first use in each process and a
programmatic plan always takes precedence.  :func:`disarm_faults` disarms
both in the calling process.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "KILL_EXIT_CODE",
    "active_plan",
    "arm_faults",
    "checkpoint_fault",
    "current_attempt",
    "describe_run_faults",
    "disarm_faults",
    "disk_full_fault",
    "injected_faults",
    "journal_fault",
    "lease_fault",
    "manifest_fault",
    "maybe_fail_run",
    "service_fault",
    "set_current_attempt",
    "shard_corrupt_fault",
    "shard_fault",
    "store_fault",
]

#: Exit status of an injected worker kill — distinctive in pool post-mortems.
KILL_EXIT_CODE = 23

_RUN_KINDS = ("raise", "kill", "hang")
_CHECKPOINT_KINDS = ("checkpoint_truncate", "checkpoint_corrupt")
_SERVICE_KINDS = ("daemon_kill",)
_STORE_KINDS = ("shard_torn", "shard_corrupt", "manifest_lost")
_DEGRADED_KINDS = ("disk_full", "lease_stolen")
_FILE_KINDS = _CHECKPOINT_KINDS + ("store_flip", "journal_torn") \
    + _STORE_KINDS + _SERVICE_KINDS + _DEGRADED_KINDS
_ENV_VAR = "REPRO_FAULTS"


class InjectedFault(RuntimeError):
    """The exception raised by ``"raise"``-kind injections."""


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault.

    ``match`` filters targets by substring (a ``run_id`` for run faults, a
    file path for file faults; empty matches everything).  ``probability``
    thins the matched set deterministically (hash of the target, not RNG
    state).  ``times`` bounds firing: run faults fire only while the run's
    attempt number is ``<= times`` (so retries past it succeed — a transient
    fault); file faults fire on the first ``times`` matching writes per
    process.  ``hang_seconds`` is the ``"hang"`` kind's sleep.
    """

    kind: str
    match: str = ""
    probability: float = 1.0
    times: int = 1
    hang_seconds: float = 300.0

    def __post_init__(self) -> None:
        if self.kind not in _RUN_KINDS + _FILE_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{_RUN_KINDS + _FILE_KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.times < 1:
            raise ValueError("times must be a positive fire budget")


class FaultPlan:
    """An armed set of :class:`FaultSpec`s plus the determinism salt."""

    def __init__(self, faults: Iterable[FaultSpec], salt: int = 0) -> None:
        self.faults: Tuple[FaultSpec, ...] = tuple(faults)
        self.salt = int(salt)
        #: per-fault fire counts of the (process-local) file faults.
        self._file_fired: Dict[int, int] = {}

    def _selects(self, fault: FaultSpec, target: str) -> bool:
        """Deterministic match: substring filter + target-hash thinning."""
        if fault.match and fault.match not in target:
            return False
        if fault.probability >= 1.0:
            return True
        if fault.probability <= 0.0:
            return False
        # A cryptographic hash, not CRC32: CRC's GF(2)-linearity makes a
        # salt change XOR every target's digest by the same constant, which
        # leaves threshold decisions largely (at p=0.5: entirely) unchanged.
        digest = hashlib.sha256(
            f"{self.salt}|{fault.kind}|{fault.match}|{target}".encode())
        return int.from_bytes(digest.digest()[:8], "big") / 2**64 \
            < fault.probability

    def run_faults(self, run_id: str, attempt: int) -> List[FaultSpec]:
        """The run faults that fire for ``run_id`` at this attempt number."""
        return [fault for fault in self.faults
                if fault.kind in _RUN_KINDS and attempt <= fault.times
                and self._selects(fault, run_id)]

    def fire_file_faults(self, kinds: Sequence[str],
                         target: str) -> List[FaultSpec]:
        """Counter-gated file faults firing for ``target`` (and charge them)."""
        fired: List[FaultSpec] = []
        for index, fault in enumerate(self.faults):
            if fault.kind not in kinds or not self._selects(fault, target):
                continue
            if self._file_fired.get(index, 0) >= fault.times:
                continue
            self._file_fired[index] = self._file_fired.get(index, 0) + 1
            fired.append(fault)
        return fired

    def to_json(self) -> str:
        """The ``REPRO_FAULTS`` form of this plan (for spawned workers)."""
        return json.dumps({
            "salt": self.salt,
            "faults": [{"kind": f.kind, "match": f.match,
                        "probability": f.probability, "times": f.times,
                        "hang_seconds": f.hang_seconds}
                       for f in self.faults]})


_UNSET = object()
_plan: Optional[FaultPlan] = None
_env_plan: object = _UNSET
#: Attempt number of the run currently executing in this process — set by the
#: executors' retry wrapper so ``times``-bounded run faults can distinguish a
#: first attempt from a retry without any cross-process state.
_attempt = 1


def _parse_env(raw: str) -> FaultPlan:
    data = json.loads(raw)
    if isinstance(data, list):
        data = {"faults": data}
    return FaultPlan((FaultSpec(**fault) for fault in data.get("faults", ())),
                     salt=int(data.get("salt", 0)))


def active_plan() -> Optional[FaultPlan]:
    """The armed plan, if any (programmatic first, then ``REPRO_FAULTS``)."""
    global _env_plan
    if _plan is not None:
        return _plan
    if _env_plan is _UNSET:
        raw = os.environ.get(_ENV_VAR)
        _env_plan = _parse_env(raw) if raw else None
    return _env_plan  # type: ignore[return-value]


def arm_faults(*faults: FaultSpec, salt: int = 0) -> FaultPlan:
    """Arm a fault plan in this process (and its future ``fork`` children)."""
    global _plan
    _plan = FaultPlan(faults, salt=salt)
    return _plan


def disarm_faults() -> None:
    """Disarm every fault in this process (programmatic and environment)."""
    global _plan, _env_plan
    _plan = None
    _env_plan = None


@contextmanager
def injected_faults(*faults: FaultSpec, salt: int = 0):
    """Context manager: arm ``faults`` for the block, restore afterwards."""
    global _plan
    previous = _plan
    _plan = FaultPlan(faults, salt=salt)
    try:
        yield _plan
    finally:
        _plan = previous


def set_current_attempt(attempt: int) -> None:
    """Record the attempt number of the run about to execute (see module doc)."""
    global _attempt
    _attempt = max(1, int(attempt))


def current_attempt() -> int:
    return _attempt


# ---------------------------------------------------------------------- #
# injection sites
# ---------------------------------------------------------------------- #
def maybe_fail_run(run_id: str) -> None:
    """Run-fault injection site (called by ``execute_run``); no-op unarmed."""
    plan = active_plan()
    if plan is None:
        return
    for fault in plan.run_faults(run_id, _attempt):
        if fault.kind == "raise":
            raise InjectedFault(
                f"injected failure in {run_id} (attempt {_attempt})")
        if fault.kind == "hang":
            time.sleep(fault.hang_seconds)
        elif fault.kind == "kill":
            os._exit(KILL_EXIT_CODE)


def describe_run_faults(run_id: str, attempts: int) -> str:
    """Which armed run faults fired for ``run_id`` over ``attempts`` tries.

    Because firing is a pure function of ``(salt, fault, run_id, attempt)``,
    this is computable from *any* process holding the plan — including the
    parent of a worker that the fault just killed.  The result is a compact
    attribution string like ``"kill@1,kill@2"`` (kind @ attempt number),
    empty when no plan is armed or nothing fired: exactly what a
    :class:`~repro.sweep.records.FailedRun` wants to carry so a chaos
    failure is explicable from the record alone.
    """
    plan = active_plan()
    if plan is None:
        return ""
    fired = []
    for attempt in range(1, max(1, int(attempts)) + 1):
        for fault in plan.run_faults(run_id, attempt):
            fired.append(f"{fault.kind}@{attempt}")
    return ",".join(fired)


def _flip_byte(path: str) -> None:
    """Invert one mid-file byte — content damage that keeps the size intact."""
    size = os.path.getsize(path)
    if size == 0:
        return
    with open(path, "r+b") as handle:
        handle.seek(size // 2)
        byte = handle.read(1)
        handle.seek(size // 2)
        handle.write(bytes([byte[0] ^ 0xFF]))


def checkpoint_fault(path: str) -> None:
    """Checkpoint-fault injection site (called after a checkpoint save)."""
    plan = active_plan()
    if plan is None:
        return
    for fault in plan.fire_file_faults(_CHECKPOINT_KINDS, path):
        if fault.kind == "checkpoint_truncate":
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(size // 2)
        else:
            _flip_byte(path)


def store_fault(path: str) -> None:
    """Store-fault injection site (called after a ``.bin`` entry publishes)."""
    plan = active_plan()
    if plan is None:
        return
    if plan.fire_file_faults(("store_flip",), path):
        _flip_byte(path)


def service_fault(site: str) -> None:
    """Daemon-crash injection site (called at named points in the service).

    ``site`` is the match target — e.g. ``"registry:done:j000001"`` right
    after the journal append of a job's ``done`` transition, or ``"drain"``
    as a graceful shutdown starts draining.  Counter-gated per process like
    the file faults (moot for a kill, meaningful if more service kinds grow).
    """
    plan = active_plan()
    if plan is None:
        return
    for fault in plan.fire_file_faults(_SERVICE_KINDS, site):
        if fault.kind == "daemon_kill":
            os._exit(KILL_EXIT_CODE)


def journal_fault(path: str, line_length: int, event_tag: str = "") -> None:
    """Journal torn-write site (called between a line's write and its fsync).

    The match target is ``f"{path}#{event_tag}"`` so a plan can tear the
    append of one specific journal event.  Firing truncates the just-written
    line roughly in half — the prefix a crashed ``write(2)`` can leave
    behind — and then kills the process (see the module docstring: a torn
    write without a crash would be self-inflicted mid-file corruption).
    """
    plan = active_plan()
    if plan is None:
        return
    if plan.fire_file_faults(("journal_torn",), f"{path}#{event_tag}"):
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(max(size - line_length // 2 - 1, 0))
        os._exit(KILL_EXIT_CODE)


def shard_fault(path: str, line_length: int, tag: str = "") -> None:
    """Record-shard torn-write site (between a line's write and its fsync).

    The :class:`~repro.store.ShardedRecordStore` analogue of
    :func:`journal_fault`, with the same rationale: a torn write is what a
    crash leaves behind, so firing truncates the just-appended shard line
    roughly in half and kills the process.  The match target is
    ``f"{path}#{tag}"`` where ``tag`` is ``"record:<run_id>"`` or
    ``"failed:<run_id>"``, so a plan can tear the append of one specific
    record.
    """
    plan = active_plan()
    if plan is None:
        return
    if plan.fire_file_faults(("shard_torn",), f"{path}#{tag}"):
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(max(size - line_length // 2 - 1, 0))
        os._exit(KILL_EXIT_CODE)


def shard_corrupt_fault(path: str) -> None:
    """Latent shard-corruption site (called after a shard flush lands).

    Unlike ``shard_torn`` this models *disk* damage, not a crash: one
    mid-file byte of the flushed shard is flipped and the process keeps
    running.  The store's next open must detect the digest mismatch and
    quarantine the shard (keeping its intact lines) rather than crash.
    """
    plan = active_plan()
    if plan is None:
        return
    if plan.fire_file_faults(("shard_corrupt",), path):
        _flip_byte(path)


def disk_full_fault(path: str, tag: str = "") -> None:
    """Disk-exhaustion site (called *before* a durability write).

    The match target is ``f"{path}#{tag}"`` — tags name the write class
    (``"journal:<event>"``, ``"shard:<run_id>"``, ``"manifest"``,
    ``"store"``), so a plan can exhaust one subsystem's disk and not
    another's.  Firing raises ``OSError(ENOSPC)`` exactly as a full
    filesystem would; ``times`` bounds how many writes fail before space
    "returns", after which the caller's backlog-drain path must replay
    everything it deferred.
    """
    plan = active_plan()
    if plan is None:
        return
    if plan.fire_file_faults(("disk_full",), f"{path}#{tag}"):
        raise OSError(errno.ENOSPC,
                      f"No space left on device (injected at {tag or path})",
                      path)


def lease_fault(path: str) -> None:
    """Lease-theft site (called right after a heartbeat renewal lands).

    Rewrites the lease file with a foreign owner and a fresh heartbeat —
    the observable state an operator ``--force`` takeover or split-brain
    peer leaves behind.  The legitimate holder must detect the foreign
    owner on its next heartbeat read and fence itself (stop writing,
    degrade, drain) rather than fight for the file.  The payload matches
    :mod:`repro.service.lease`'s schema.
    """
    plan = active_plan()
    if plan is None:
        return
    if plan.fire_file_faults(("lease_stolen",), path):
        payload = json.dumps({"owner": "injected:thief:0", "pid": 0,
                              "host": "injected-thief",
                              "heartbeat_ts": time.time()})
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
            handle.flush()
            os.fsync(handle.fileno())


def manifest_fault(path: str) -> None:
    """Manifest-loss site (called after a store manifest rewrite lands).

    Unlinks the freshly written manifest — the failure mode where the
    directory survives but its index does not.  The store must self-heal by
    rebuilding the manifest from the shard files on its next open (the
    shards, not the manifest, are the source of truth).
    """
    plan = active_plan()
    if plan is None:
        return
    if plan.fire_file_faults(("manifest_lost",), path):
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass
