"""Sweep results: per-run records, per-point aggregates, JSON persistence.

A sweep produces one :class:`RunRecord` per simulation — the scalar metrics of
a :class:`~repro.sim.results.SimulationResult`, not its traces, so records stay
a few hundred bytes and pickle/JSON-serialize trivially.  A
:class:`SweepResult` collects the records of one sweep and aggregates each grid
point's seed ensemble into mean / standard deviation / bootstrap confidence
intervals.

Aggregation is *order-free*: records are sorted by ``(point_index,
seed_index)`` before any statistics, and the bootstrap resampler is seeded from
``(master_seed, point_index)`` only.  A resumed sweep (half the records loaded
from a partial JSON file, half run fresh) therefore aggregates bit-for-bit the
same as an uninterrupted one.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .spec import RunSpec, SweepSpec

__all__ = ["RunRecord", "MetricStats", "PointSummary", "SweepResult",
           "METRIC_NAMES"]

#: Scalar metrics extracted from every simulation, in record order.
METRIC_NAMES = (
    "worst_ir_drop",
    "mean_ir_drop",
    "average_macro_power_mw",
    "effective_tops",
    "total_failures",
    "total_stall_cycles",
    "total_energy",
    "energy_efficiency_tops_per_watt",
)


@dataclass(frozen=True)
class RunRecord:
    """The scalar outcome of one simulation run."""

    run_id: str
    point_index: int
    seed_index: int
    seed: int
    point_key: Tuple[Tuple[str, object], ...]
    metrics: Dict[str, float]

    @classmethod
    def from_simulation(cls, run: RunSpec, result) -> "RunRecord":
        """Summarize a :class:`~repro.sim.results.SimulationResult`."""
        metrics = {name: float(getattr(result, name)) for name in METRIC_NAMES}
        return cls(run_id=run.run_id, point_index=run.point_index,
                   seed_index=run.seed_index, seed=run.seed,
                   point_key=run.point_key, metrics=metrics)

    def to_json_dict(self) -> Dict:
        return {
            "run_id": self.run_id,
            "point_index": self.point_index,
            "seed_index": self.seed_index,
            "seed": self.seed,
            "point_key": [[axis, value] for axis, value in self.point_key],
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_json_dict(cls, data: Dict) -> "RunRecord":
        return cls(run_id=data["run_id"], point_index=int(data["point_index"]),
                   seed_index=int(data["seed_index"]), seed=int(data["seed"]),
                   point_key=tuple((axis, value)
                                   for axis, value in data["point_key"]),
                   metrics={k: float(v) for k, v in data["metrics"].items()})


@dataclass(frozen=True)
class MetricStats:
    """Seed-ensemble statistics of one metric at one grid point."""

    mean: float
    std: float              #: sample standard deviation (ddof=1; 0 when n == 1)
    ci_low: float           #: bootstrap 95 % CI lower bound over seed means
    ci_high: float
    n: int


@dataclass(frozen=True)
class PointSummary:
    """One grid point's aggregated ensemble."""

    point_index: int
    point_key: Tuple[Tuple[str, object], ...]
    n_seeds: int
    stats: Dict[str, MetricStats]

    @property
    def axes(self) -> Dict[str, object]:
        return dict(self.point_key)

    def matches(self, **axes) -> bool:
        mine = self.axes
        return all(mine.get(axis) == value for axis, value in axes.items())


def _bootstrap_ci(values: np.ndarray, rng: np.random.Generator,
                  resamples: int, confidence: float) -> Tuple[float, float]:
    """Percentile bootstrap CI of the mean of ``values``."""
    if values.size <= 1:
        v = float(values[0]) if values.size else 0.0
        return v, v
    draws = rng.integers(0, values.size, size=(resamples, values.size))
    means = values[draws].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return float(low), float(high)


@dataclass
class SweepResult:
    """All records of one sweep plus aggregation and persistence."""

    spec: Optional[SweepSpec] = None
    records: List[RunRecord] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # record management
    # ------------------------------------------------------------------ #
    def add(self, record: RunRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[RunRecord]) -> None:
        self.records.extend(records)

    @property
    def run_ids(self) -> List[str]:
        return [r.run_id for r in self.records]

    def sorted_records(self) -> List[RunRecord]:
        """Records in canonical ``(point_index, seed_index)`` order."""
        return sorted(self.records, key=lambda r: (r.point_index, r.seed_index))

    @property
    def master_seed(self) -> int:
        return self.spec.master_seed if self.spec is not None else 0

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def aggregate(self, bootstrap_resamples: int = 200,
                  confidence: float = 0.95) -> List[PointSummary]:
        """Per-point mean/std and bootstrap CIs over the seed ensemble.

        The bootstrap resampler for point ``p`` is seeded from
        ``SeedSequence(master_seed, spawn_key=(p, 0xB007))``, so the intervals
        are reproducible across executors and across fresh-vs-resumed runs.
        """
        by_point: Dict[int, List[RunRecord]] = {}
        for record in self.sorted_records():
            by_point.setdefault(record.point_index, []).append(record)

        summaries: List[PointSummary] = []
        for point_index in sorted(by_point):
            records = by_point[point_index]
            rng = np.random.default_rng(np.random.SeedSequence(
                self.master_seed, spawn_key=(point_index, 0xB007)))
            stats: Dict[str, MetricStats] = {}
            for name in METRIC_NAMES:
                values = np.array([r.metrics[name] for r in records])
                ci_low, ci_high = _bootstrap_ci(values, rng,
                                                bootstrap_resamples, confidence)
                std = float(values.std(ddof=1)) if values.size > 1 else 0.0
                stats[name] = MetricStats(mean=float(values.mean()), std=std,
                                          ci_low=ci_low, ci_high=ci_high,
                                          n=int(values.size))
            summaries.append(PointSummary(
                point_index=point_index, point_key=records[0].point_key,
                n_seeds=len(records), stats=stats))
        return summaries

    def select(self, summaries: Optional[Sequence[PointSummary]] = None,
               **axes) -> List[PointSummary]:
        """Summaries whose point key matches every given ``axis=value``."""
        if summaries is None:
            summaries = self.aggregate()
        return [s for s in summaries if s.matches(**axes)]

    def point(self, **axes) -> PointSummary:
        """The unique summary matching ``axes`` (raises otherwise)."""
        matched = self.select(**axes)
        if len(matched) != 1:
            raise KeyError(f"{len(matched)} grid points match {axes!r}")
        return matched[0]

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str) -> None:
        """Write records (and the spec when known) to a JSON file.

        The write goes through a temp file + ``os.replace`` so an interrupted
        sweep never leaves a truncated result behind — the file either holds
        the previous checkpoint or the new one, both resumable.
        """
        payload = {
            "version": 1,
            "spec": self.spec.to_json_dict() if self.spec is not None else None,
            "records": [r.to_json_dict() for r in self.sorted_records()],
        }
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        os.replace(tmp_path, path)

    @classmethod
    def load(cls, path: str) -> "SweepResult":
        with open(path) as handle:
            payload = json.load(handle)
        if payload.get("version") != 1:
            raise ValueError(f"unsupported sweep-result version in {path!r}")
        spec = SweepSpec.from_json_dict(payload["spec"]) \
            if payload.get("spec") else None
        records = [RunRecord.from_json_dict(r) for r in payload["records"]]
        return cls(spec=spec, records=records)
