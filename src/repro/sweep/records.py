"""Sweep results: per-run records, per-point aggregates, JSON persistence.

A sweep produces one :class:`RunRecord` per simulation — the scalar metrics of
a :class:`~repro.sim.results.SimulationResult`, not its traces, so records stay
a few hundred bytes and pickle/JSON-serialize trivially.  A
:class:`SweepResult` collects the records of one sweep and aggregates each grid
point's seed ensemble into mean / standard deviation / bootstrap confidence
intervals.

Aggregation is *order-free*: records are sorted by ``(point_index,
seed_index)`` before any statistics, and the bootstrap resampler is seeded from
``(master_seed, point_index)`` only.  A resumed sweep (half the records loaded
from a partial JSON file, half run fresh) therefore aggregates bit-for-bit the
same as an uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from . import faults
from .spec import RunSpec, SweepSpec

__all__ = ["RunRecord", "FailedRun", "MetricStats", "PointSummary",
           "SweepResult", "METRIC_NAMES", "bound_traceback"]

logger = logging.getLogger("repro.sweep")

#: Scalar metrics extracted from every simulation, in record order.
METRIC_NAMES = (
    "worst_ir_drop",
    "mean_ir_drop",
    "average_macro_power_mw",
    "effective_tops",
    "total_failures",
    "total_stall_cycles",
    "total_energy",
    "energy_efficiency_tops_per_watt",
)


@dataclass(frozen=True)
class RunRecord:
    """The scalar outcome of one simulation run."""

    run_id: str
    point_index: int
    seed_index: int
    seed: int
    point_key: Tuple[Tuple[str, object], ...]
    metrics: Dict[str, float]

    @classmethod
    def from_simulation(cls, run: RunSpec, result) -> "RunRecord":
        """Summarize a :class:`~repro.sim.results.SimulationResult`."""
        metrics = {name: float(getattr(result, name)) for name in METRIC_NAMES}
        return cls(run_id=run.run_id, point_index=run.point_index,
                   seed_index=run.seed_index, seed=run.seed,
                   point_key=run.point_key, metrics=metrics)

    def to_json_dict(self) -> Dict:
        return {
            "run_id": self.run_id,
            "point_index": self.point_index,
            "seed_index": self.seed_index,
            "seed": self.seed,
            "point_key": [[axis, value] for axis, value in self.point_key],
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_json_dict(cls, data: Dict) -> "RunRecord":
        return cls(run_id=data["run_id"], point_index=int(data["point_index"]),
                   seed_index=int(data["seed_index"]), seed=int(data["seed"]),
                   point_key=tuple((axis, value)
                                   for axis, value in data["point_key"]),
                   metrics={k: float(v) for k, v in data["metrics"].items()})


#: Bounds on the traceback tail a :class:`FailedRun` carries.
TRACEBACK_TAIL_LINES = 20
TRACEBACK_TAIL_CHARS = 4000


def bound_traceback(text: str, max_lines: int = TRACEBACK_TAIL_LINES,
                    max_chars: int = TRACEBACK_TAIL_CHARS) -> str:
    """The *tail* of a traceback, bounded for persistence.

    The last frames are the diagnostic ones (the raise site and its callers),
    so the tail is kept and the head dropped.  Bounded twice — by line count
    and by characters — so one pathological frame (a giant repr in a message)
    cannot bloat every checkpoint that carries the failure.
    """
    text = (text or "").rstrip()
    if not text:
        return ""
    lines = text.splitlines()
    if len(lines) > max_lines:
        kept = lines[-max_lines:]
        kept.insert(0, f"... ({len(lines) - max_lines} leading lines dropped)")
        text = "\n".join(kept)
    if len(text) > max_chars:
        text = "... (truncated)\n" + text[-max_chars:]
    return text


@dataclass(frozen=True)
class FailedRun:
    """A run quarantined after exhausting its retry budget.

    Carried in :attr:`SweepResult.failed_runs` (and through checkpoints) so a
    sweep with permanent failures still completes, reports *which* runs are
    missing, and aggregates over the records it does have — instead of dying
    on the first bad run.  ``error`` is the final attempt's failure rendered
    as text (exception repr, or a timeout/worker-death description);
    ``traceback`` is the final attempt's bounded traceback tail (empty when
    none was capturable — e.g. the worker process died).  ``fault`` is the
    injected-fault attribution when a chaos plan is armed (e.g.
    ``"kill@1,kill@2"`` — see :func:`repro.sweep.faults.describe_run_faults`),
    empty in normal operation: a chaos-test failure is explicable from the
    quarantined record alone.
    """

    run_id: str
    point_index: int
    seed_index: int
    error: str
    attempts: int
    traceback: str = ""
    fault: str = ""

    @classmethod
    def from_run(cls, run: RunSpec, error: str, attempts: int,
                 traceback: str = "", fault: str = "") -> "FailedRun":
        return cls(run_id=run.run_id, point_index=run.point_index,
                   seed_index=run.seed_index, error=error, attempts=attempts,
                   traceback=bound_traceback(traceback), fault=fault)

    def to_json_dict(self) -> Dict:
        return {"run_id": self.run_id, "point_index": self.point_index,
                "seed_index": self.seed_index, "error": self.error,
                "attempts": self.attempts, "traceback": self.traceback,
                "fault": self.fault}

    @classmethod
    def from_json_dict(cls, data: Dict) -> "FailedRun":
        # `.get` keeps pre-traceback / pre-fault checkpoints loading unchanged.
        return cls(run_id=data["run_id"], point_index=int(data["point_index"]),
                   seed_index=int(data["seed_index"]), error=data["error"],
                   attempts=int(data["attempts"]),
                   traceback=data.get("traceback", ""),
                   fault=data.get("fault", ""))


@dataclass(frozen=True)
class MetricStats:
    """Seed-ensemble statistics of one metric at one grid point."""

    mean: float
    std: float              #: sample standard deviation (ddof=1; 0 when n == 1)
    ci_low: float           #: bootstrap 95 % CI lower bound over seed means
    ci_high: float
    n: int


@dataclass(frozen=True)
class PointSummary:
    """One grid point's aggregated ensemble."""

    point_index: int
    point_key: Tuple[Tuple[str, object], ...]
    n_seeds: int
    stats: Dict[str, MetricStats]

    @property
    def axes(self) -> Dict[str, object]:
        return dict(self.point_key)

    def matches(self, **axes) -> bool:
        mine = self.axes
        return all(mine.get(axis) == value for axis, value in axes.items())


def _bootstrap_ci(values: np.ndarray, rng: np.random.Generator,
                  resamples: int, confidence: float) -> Tuple[float, float]:
    """Percentile bootstrap CI of the mean of ``values``."""
    if values.size <= 1:
        v = float(values[0]) if values.size else 0.0
        return v, v
    draws = rng.integers(0, values.size, size=(resamples, values.size))
    means = values[draws].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return float(low), float(high)


def _payload_digest(payload: Dict) -> str:
    """Content digest of a checkpoint payload (excluding the digest itself).

    Canonical JSON (sorted keys, no whitespace) keeps the digest stable
    across save/load round-trips: ``repr``-exact float serialization means
    re-serializing a parsed payload reproduces the original bytes.
    """
    canonical = json.dumps(
        {key: value for key, value in payload.items() if key != "integrity"},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class SweepResult:
    """All records of one sweep plus aggregation and persistence."""

    spec: Optional[SweepSpec] = None
    records: List[RunRecord] = field(default_factory=list)
    #: runs quarantined after exhausting their retry budget (see
    #: :class:`FailedRun`); persisted through checkpoints, excluded from
    #: aggregation, surfaced by the runner's logs.
    failed_runs: List[FailedRun] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # record management
    # ------------------------------------------------------------------ #
    def add(self, record: RunRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[RunRecord]) -> None:
        self.records.extend(records)

    @property
    def run_ids(self) -> List[str]:
        return [r.run_id for r in self.records]

    def sorted_records(self) -> List[RunRecord]:
        """Records in canonical ``(point_index, seed_index)`` order."""
        return sorted(self.records, key=lambda r: (r.point_index, r.seed_index))

    @property
    def master_seed(self) -> int:
        return self.spec.master_seed if self.spec is not None else 0

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def aggregate(self, bootstrap_resamples: int = 200,
                  confidence: float = 0.95) -> List[PointSummary]:
        """Per-point mean/std and bootstrap CIs over the seed ensemble.

        The bootstrap resampler for point ``p`` is seeded from
        ``SeedSequence(master_seed, spawn_key=(p, 0xB007))``, so the intervals
        are reproducible across executors and across fresh-vs-resumed runs.
        """
        by_point: Dict[int, List[RunRecord]] = {}
        for record in self.sorted_records():
            by_point.setdefault(record.point_index, []).append(record)

        summaries: List[PointSummary] = []
        for point_index in sorted(by_point):
            records = by_point[point_index]
            rng = np.random.default_rng(np.random.SeedSequence(
                self.master_seed, spawn_key=(point_index, 0xB007)))
            stats: Dict[str, MetricStats] = {}
            for name in METRIC_NAMES:
                values = np.array([r.metrics[name] for r in records])
                ci_low, ci_high = _bootstrap_ci(values, rng,
                                                bootstrap_resamples, confidence)
                std = float(values.std(ddof=1)) if values.size > 1 else 0.0
                stats[name] = MetricStats(mean=float(values.mean()), std=std,
                                          ci_low=ci_low, ci_high=ci_high,
                                          n=int(values.size))
            summaries.append(PointSummary(
                point_index=point_index, point_key=records[0].point_key,
                n_seeds=len(records), stats=stats))
        return summaries

    def summary_payload(self, bootstrap_resamples: int = 200,
                        include_records: bool = True) -> Dict:
        """JSON-safe digest of the sweep: aggregates plus (optionally) records.

        The sweep service's result endpoint serves this — a client gets the
        per-point mean/std/CI table without re-deriving it, and can skip the
        (much larger) record list with ``include_records=False``.  Everything
        is plain lists/dicts/floats, so ``json.dumps`` works directly.
        """
        payload: Dict = {
            "n_records": len(self.records),
            "n_failed": len(self.failed_runs),
            "failed_runs": [f.to_json_dict() for f in self.failed_runs],
            "points": [
                {
                    "point_index": s.point_index,
                    "point_key": [[axis, value] for axis, value in s.point_key],
                    "n_seeds": s.n_seeds,
                    "metrics": {
                        name: {"mean": st.mean, "std": st.std,
                               "ci_low": st.ci_low, "ci_high": st.ci_high,
                               "n": st.n}
                        for name, st in s.stats.items()
                    },
                }
                for s in self.aggregate(bootstrap_resamples=bootstrap_resamples)
            ],
        }
        if include_records:
            payload["records"] = [r.to_json_dict()
                                  for r in self.sorted_records()]
        return payload

    def select(self, summaries: Optional[Sequence[PointSummary]] = None,
               **axes) -> List[PointSummary]:
        """Summaries whose point key matches every given ``axis=value``."""
        if summaries is None:
            summaries = self.aggregate()
        return [s for s in summaries if s.matches(**axes)]

    def point(self, **axes) -> PointSummary:
        """The unique summary matching ``axes`` (raises otherwise)."""
        matched = self.select(**axes)
        if len(matched) != 1:
            raise KeyError(f"{len(matched)} grid points match {axes!r}")
        return matched[0]

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save(self, path: str) -> None:
        """Write records (and the spec when known) to a JSON file, durably.

        The write goes through a temp file + ``os.replace`` so an interrupted
        sweep never leaves a truncated result behind, and the temp file (and,
        on POSIX, its directory) is fsynced before the replace so a power
        loss cannot produce an empty "checkpoint" either.  The payload
        carries a sha256 content digest that :meth:`load` verifies, and the
        previous checkpoint is rotated to ``<path>.bak`` so one corrupted
        save still leaves a resumable last-good file behind.
        """
        payload = {
            "version": 1,
            "spec": self.spec.to_json_dict() if self.spec is not None else None,
            "records": [r.to_json_dict() for r in self.sorted_records()],
            "failed_runs": [f.to_json_dict() for f in self.failed_runs],
        }
        payload["integrity"] = {"algorithm": "sha256",
                                "digest": _payload_digest(payload)}
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.flush()
            os.fsync(handle.fileno())
        if os.path.exists(path):
            os.replace(path, f"{path}.bak")
        os.replace(tmp_path, path)
        directory = os.path.dirname(os.path.abspath(path))
        try:
            dir_fd = os.open(directory, os.O_RDONLY)
        except OSError:                       # non-POSIX / odd filesystem
            dir_fd = None
        if dir_fd is not None:
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        faults.checkpoint_fault(path)

    @classmethod
    def load(cls, path: str, verify: bool = True) -> "SweepResult":
        """Load a checkpoint, verifying its content digest when present.

        Raises ``ValueError`` for truncated/corrupt/digest-mismatched files
        (``json.JSONDecodeError`` is a ``ValueError``) and ``OSError`` for
        unreadable ones.  Pre-integrity checkpoints (no ``integrity`` key)
        still load — there is nothing to verify against.
        """
        with open(path) as handle:
            payload = json.load(handle)
        if payload.get("version") != 1:
            raise ValueError(f"unsupported sweep-result version in {path!r}")
        integrity = payload.get("integrity")
        if verify and integrity is not None:
            digest = _payload_digest(payload)
            if digest != integrity.get("digest"):
                raise ValueError(
                    f"checkpoint digest mismatch in {path!r}: file is "
                    f"corrupt (stored {integrity.get('digest')!r}, "
                    f"computed {digest!r})")
        spec = SweepSpec.from_json_dict(payload["spec"]) \
            if payload.get("spec") else None
        records = [RunRecord.from_json_dict(r) for r in payload["records"]]
        failed = [FailedRun.from_json_dict(f)
                  for f in payload.get("failed_runs", ())]
        return cls(spec=spec, records=records, failed_runs=failed)

    @classmethod
    def load_resumable(cls, path: str) -> "SweepResult":
        """Load ``path`` for resuming, degrading gracefully on damage.

        ``path`` may also be a sharded record-store *directory* (see
        :mod:`repro.store`): opening it runs the store's recovery — torn
        tails truncated, corrupt shards quarantined, manifest rebuilt — and
        returns whatever survives, which is the store's own degraded-mode
        chain.

        For a single-JSON checkpoint the fallback chain is: the checkpoint
        itself → its rolling ``<path>.bak`` → an empty result (clean start),
        warning at each step down.  Only when the path names nothing at all
        does this raise ``FileNotFoundError`` — that is a caller error (a
        bad path), not a damaged checkpoint.
        """
        if os.path.isdir(path):
            from ..store.sharded import ShardedRecordStore  # noqa: cyclic
            store = ShardedRecordStore(path)
            try:
                return store.to_result()
            finally:
                store.close()
        backup = f"{path}.bak"
        if not os.path.exists(path) and not os.path.exists(backup):
            raise FileNotFoundError(path)
        try:
            return cls.load(path)
        except FileNotFoundError:
            primary_error: Exception = FileNotFoundError(path)
        except (OSError, ValueError) as error:
            primary_error = error
        warnings.warn(
            f"checkpoint {path!r} is unreadable or corrupt "
            f"({primary_error}); falling back to {backup!r}",
            RuntimeWarning, stacklevel=2)
        logger.warning("checkpoint %s corrupt (%s); trying backup %s",
                       path, primary_error, backup)
        try:
            return cls.load(backup)
        except (OSError, ValueError) as error:
            warnings.warn(
                f"backup checkpoint {backup!r} is also unusable ({error}); "
                "resuming from a clean start",
                RuntimeWarning, stacklevel=2)
            logger.warning("backup checkpoint %s unusable (%s); clean start",
                           backup, error)
            return cls()
