"""Sweep execution: serial and multiprocess executors plus the runner.

The runner turns a :class:`~repro.sweep.spec.SweepSpec` into
:class:`~repro.sweep.records.RunRecord`s through a pluggable *executor*:

* :class:`SerialExecutor` — in-process loop; zero overhead, the baseline;
* :class:`PoolExecutor` — ``multiprocessing.Pool`` with chunked dispatch.
  Runs are embarrassingly parallel (independent simulations), so the pool
  simply maps the picklable :class:`RunSpec`s over worker processes; each
  worker rebuilds (and memoizes) compiled workloads from their specs — see
  :mod:`repro.sweep.builders`.

Because every run's seed is a pure function of ``(master_seed, point_index,
seed_index)`` and workload construction is deterministic, both executors
produce *bit-identical* records for the same spec; ``tests/test_sweep.py``
enforces this.

Resume: pass ``resume_from`` (a JSON path or loaded
:class:`~repro.sweep.records.SweepResult`) and the runner re-executes only
runs whose records are missing, then merges.  Aggregates of a resumed sweep
equal a fresh run's exactly (see :mod:`repro.sweep.records`).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
from math import ceil
from typing import Callable, Dict, List, Optional, Sequence, Union

from .builders import build_compiled_workload
from .records import RunRecord, SweepResult
from .spec import RunSpec, SweepSpec

__all__ = ["SerialExecutor", "PoolExecutor", "SweepRunner", "execute_run",
           "run_sweeps"]


def execute_run(run: RunSpec) -> RunRecord:
    """Simulate one run and summarize it (the unit of executor work).

    Module-level so :mod:`multiprocessing` can pickle it by reference; builds
    the compiled workload through the per-process cache.
    """
    from ..sim.runtime import PIMRuntime
    compiled = build_compiled_workload(run.workload)
    result = PIMRuntime(compiled, run.runtime_config()).run()
    return RunRecord.from_simulation(run, result)


class SerialExecutor:
    """Run every simulation in the calling process, in spec order."""

    def map(self, fn: Callable[[RunSpec], RunRecord],
            runs: Sequence[RunSpec]) -> List[RunRecord]:
        return [fn(run) for run in runs]


def _apply_chunk(args) -> List[RunRecord]:
    """Worker-side chunk evaluation (top-level so it pickles by reference)."""
    fn, chunk = args
    return [fn(run) for run in chunk]


class PoolExecutor:
    """Chunked ``multiprocessing.Pool`` dispatch over worker processes.

    ``processes`` defaults to the machine's CPU count; ``chunksize`` defaults
    to ``ceil(n_runs / (4 * processes))`` so each worker receives a handful of
    chunks (amortizing IPC without starving the tail).  Chunks are
    *workload-aligned* — a chunk never spans two distinct
    :class:`~repro.sweep.spec.WorkloadSpec`s — so a worker only constructs the
    workloads of the chunks it actually processes: distinct workloads build in
    parallel across workers, with duplicate builds bounded by the number of
    chunks per workload.

    ``prebuild=True`` instead constructs each distinct workload once in the
    parent before the pool starts (serially, but with zero duplicate builds);
    forked workers then inherit every compiled image via the per-process
    cache.  Prefer it when a single expensive workload dominates the sweep.

    ``start_method`` defaults to the platform default — ``fork`` on Linux.
    With ``spawn``, workers import :mod:`repro.sweep.builders` fresh: the
    built-in ``"model"``/``"synthetic"`` builders are available, but a custom
    builder registered from a script is not — register it at import time of a
    module the workers also import, or stick with ``fork``.
    """

    def __init__(self, processes: Optional[int] = None,
                 chunksize: Optional[int] = None,
                 start_method: Optional[str] = None,
                 prebuild: bool = False) -> None:
        if processes is not None and processes <= 0:
            raise ValueError("processes must be positive")
        self.processes = processes
        self.chunksize = chunksize
        self.start_method = start_method
        self.prebuild = prebuild

    def map(self, fn: Callable[[RunSpec], RunRecord],
            runs: Sequence[RunSpec]) -> List[RunRecord]:
        runs = list(runs)
        if not runs:
            return []
        processes = self.processes or (os.cpu_count() or 1)
        processes = min(processes, len(runs))
        chunksize = self.chunksize or max(1, ceil(len(runs) / (4 * processes)))

        # Workload-aligned chunking (expand() emits each workload's runs
        # contiguously, so this groups without reordering results).
        chunks: List[List[RunSpec]] = []
        for _, group in itertools.groupby(runs, key=lambda run: run.workload):
            group = list(group)
            for start in range(0, len(group), chunksize):
                chunks.append(group[start:start + chunksize])

        context = multiprocessing.get_context(self.start_method)
        if self.prebuild and context.get_start_method() == "fork":
            # Warm the parent cache so forked workers inherit every image.
            for workload in dict.fromkeys(run.workload for run in runs):
                build_compiled_workload(workload)
        with context.Pool(processes=processes) as pool:
            nested = pool.map(_apply_chunk, [(fn, chunk) for chunk in chunks],
                              chunksize=1)
        return [record for chunk_records in nested for record in chunk_records]


Executor = Union[SerialExecutor, PoolExecutor]


class SweepRunner:
    """Expands a :class:`SweepSpec` and drives an executor over its runs."""

    def __init__(self, spec: SweepSpec, executor: Optional[Executor] = None) -> None:
        self.spec = spec
        self.executor = executor or SerialExecutor()

    def run(self, resume_from: Union[None, str, SweepResult] = None,
            save_path: Optional[str] = None) -> SweepResult:
        """Execute all (remaining) runs and return the merged result.

        ``resume_from`` supplies records of a previous partial execution (a
        JSON path or an in-memory result); records whose ``run_id`` belongs to
        this spec are kept and their runs skipped.  A resumed record whose
        stored seed or grid point disagrees with this spec's derivation (a
        different ``master_seed``, or an edited grid reusing the same sweep
        name) raises rather than silently mixing ensembles.
        ``save_path`` persists the merged result as JSON afterwards.
        """
        runs = self.spec.expand()
        by_id = {run.run_id: run for run in runs}

        prior: List[RunRecord] = []
        if resume_from is not None:
            loaded = SweepResult.load(resume_from) \
                if isinstance(resume_from, str) else resume_from
            for record in loaded.records:
                expected = by_id.get(record.run_id)
                if expected is None:
                    continue
                if record.seed != expected.seed:
                    raise ValueError(
                        f"resumed record {record.run_id!r} was produced with "
                        f"seed {record.seed}, but this spec derives "
                        f"{expected.seed} — refusing to mix ensembles")
                if record.point_key != expected.point_key:
                    raise ValueError(
                        f"resumed record {record.run_id!r} was produced at "
                        f"grid point {dict(record.point_key)}, but this spec "
                        f"places it at {dict(expected.point_key)} — the grid "
                        f"changed; refusing to mix sweeps")
                prior.append(record)

        done = {record.run_id for record in prior}
        pending = [run for run in runs if run.run_id not in done]
        fresh = self.executor.map(execute_run, pending)

        result = SweepResult(spec=self.spec, records=prior + list(fresh))
        result.records = result.sorted_records()
        if save_path is not None:
            result.save(save_path)
        return result


def run_sweeps(specs: Sequence[SweepSpec],
               executor: Optional[Executor] = None) -> Dict[str, SweepResult]:
    """Execute several sweeps through one executor pass, keyed by spec name.

    Paper harnesses often need *coupled* grids (e.g. the Sec. 6.6 headline
    pairs the baseline compile with the DVFS controller and the AIM compile
    with the booster), which a single cartesian product cannot express.  This
    helper expands every spec, executes the union of runs in one ``map`` so a
    pool executor parallelizes across sweeps, and splits the records back per
    spec.  Spec names must be unique (they prefix the run ids).
    """
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"sweep names must be unique, got {names}")
    executor = executor or SerialExecutor()

    all_runs: List[RunSpec] = []
    owner: List[str] = []
    for spec in specs:
        expanded = spec.expand()
        all_runs.extend(expanded)
        owner.extend([spec.name] * len(expanded))

    records = executor.map(execute_run, all_runs)
    results = {spec.name: SweepResult(spec=spec) for spec in specs}
    for name, record in zip(owner, records):
        results[name].add(record)
    for result in results.values():
        result.records = result.sorted_records()
    return results
